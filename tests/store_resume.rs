//! Store-backed collection end to end: crash mid-collection, resume
//! without re-spending quota, and export equivalence with the legacy
//! in-memory dataset.

use ytaudit::core::dataset::ChannelInfo;
use ytaudit::core::testutil::test_client;
use ytaudit::core::{AuditDataset, Collector, CollectorConfig, CollectorSink, TopicCommit};
use ytaudit::sched::{InProcessFactory, RunOutcome, Scheduler, SchedulerConfig};
use ytaudit::store::{CollectionMeta, DatasetSelection, Store, TempDir};
use ytaudit::types::{ChannelId, Error, Result, Timestamp, Topic};

const SCALE: f64 = 0.1;

fn config() -> CollectorConfig {
    CollectorConfig {
        fetch_comments: true,
        ..CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
    }
}

/// A sink that forwards to a [`Store`] but "crashes" (errors) instead of
/// performing the N+1-th pair commit — simulating a process death with N
/// pairs durably banked and one pair's work in flight.
struct FailAfter {
    store: Store,
    commits_left: usize,
}

impl CollectorSink for FailAfter {
    fn begin(&mut self, config: &CollectorConfig) -> Result<()> {
        self.store.begin(config)
    }

    fn is_committed(&self, topic: Topic, snapshot: usize) -> bool {
        self.store.is_committed(topic, snapshot)
    }

    fn is_complete(&self) -> bool {
        self.store.is_complete()
    }

    fn known_channel_ids(&self) -> Result<Vec<ChannelId>> {
        CollectorSink::known_channel_ids(&self.store)
    }

    fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> Result<()> {
        if self.commits_left == 0 {
            return Err(Error::Io("injected crash before commit".into()));
        }
        self.commits_left -= 1;
        self.store.commit_topic_snapshot(commit)
    }

    fn finish(&mut self, channels: &[ChannelInfo], quota_final_delta: u64) -> Result<()> {
        self.store.finish(channels, quota_final_delta)
    }
}

#[test]
fn interrupted_collection_resumes_without_reissuing_committed_calls() {
    let dir = TempDir::new("resume-e2e");
    let path = dir.file("audit.yts");
    let cfg = config();

    // Reference: one full legacy in-memory collection.
    let (full_client, _sf) = test_client(SCALE);
    let legacy = Collector::new(&full_client, cfg.clone()).run().unwrap();
    let full_units = full_client.budget().units_spent();
    assert_eq!(legacy.quota_units_spent, full_units);

    // Interrupted run: dies at the 4th of 4 pair commits, so three pairs
    // are durably banked and the in-flight pair's work is lost.
    let (client1, _s1) = test_client(SCALE);
    let mut sink = FailAfter {
        store: Store::create(&path).unwrap(),
        commits_left: 3,
    };
    let err = Collector::new(&client1, cfg.clone())
        .run_with_sink(&mut sink)
        .unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err:?}");
    drop(sink);

    // Resume with a fresh client (fresh quota budget): the three banked
    // pairs are skipped, so the resumed spend is exactly the full spend
    // minus what the banked pairs cost. Platform determinism makes the
    // equality exact — any re-issued call for a committed pair would
    // break it.
    let (client2, _s2) = test_client(SCALE);
    let mut store = Store::open(&path).unwrap();
    assert_eq!(store.committed_pairs(), 3);
    let banked = store.quota_units_total();
    assert!(banked > 0);
    Collector::new(&client2, cfg.clone())
        .run_with_sink(&mut store)
        .unwrap();
    assert!(store.complete());
    let resumed_units = client2.budget().units_spent();
    assert_eq!(resumed_units, full_units - banked);
    assert_eq!(store.quota_units_total(), full_units);

    // Export equivalence: the store materializes the exact dataset the
    // uninterrupted in-memory run produced, and it JSON-round-trips.
    let exported = store.load_dataset().unwrap();
    assert_eq!(exported, legacy);
    assert_eq!(
        AuditDataset::from_json(&exported.to_json().unwrap()).unwrap(),
        exported
    );

    // A filtered load agrees on the parts it includes.
    let slim = store
        .load_dataset_filtered(DatasetSelection::search_only())
        .unwrap();
    assert_eq!(slim.snapshots.len(), legacy.snapshots.len());
    for (got, want) in slim.snapshots.iter().zip(&legacy.snapshots) {
        assert_eq!(got.topics, want.topics);
    }
    assert!(slim.video_meta.is_empty());

    // Resuming a complete store is free: the collector sees
    // `is_complete` and issues zero API calls.
    let (client3, _s3) = test_client(SCALE);
    Collector::new(&client3, cfg)
        .run_with_sink(&mut store)
        .unwrap();
    assert_eq!(client3.budget().units_spent(), 0);
    assert_eq!(client3.budget().calls_made(), 0);
}

#[test]
fn parallel_crash_banks_a_plan_order_prefix_and_resumes_exactly() {
    let dir = TempDir::new("resume-parallel");
    let path = dir.file("audit.yts");
    let cfg = config();

    // Reference: one full legacy in-memory collection.
    let (full_client, _sf) = test_client(SCALE);
    let legacy = Collector::new(&full_client, cfg.clone()).run().unwrap();
    let full_units = full_client.budget().units_spent();

    // Interrupted parallel run: four workers race ahead, but the reorder
    // buffer delivers commits in plan order, so the two pairs that get
    // through before the injected sink failure are exactly the first two
    // plan pairs — never an out-of-order subset.
    let (_c1, service1) = test_client(SCALE);
    let factory1 = InProcessFactory::new(service1);
    let scheduler = Scheduler::new(
        &factory1,
        cfg.clone(),
        SchedulerConfig::new(4, "research-key"),
    );
    let mut sink = FailAfter {
        store: Store::create(&path).unwrap(),
        commits_left: 2,
    };
    let report = scheduler.run(&mut sink).unwrap();
    assert!(
        matches!(
            &report.outcome,
            RunOutcome::Drained {
                error: Some(Error::Io(_))
            }
        ),
        "{:?}",
        report.outcome
    );
    assert_eq!(report.pairs_committed, 2);
    drop(sink);

    // Reopen: the banked pairs form the plan-order (snapshot-major)
    // prefix of the collection plan.
    let mut store = Store::open(&path).unwrap();
    assert_eq!(store.committed_pairs(), 2);
    assert!(store.has_commit(Topic::Higgs, 0));
    assert!(store.has_commit(Topic::Blm, 0));
    assert!(!store.has_commit(Topic::Higgs, 1));
    assert!(!store.has_commit(Topic::Blm, 1));
    let banked = store.quota_units_total();
    assert!(banked > 0);

    // Resume with a fresh scheduler at a *different* worker count: the
    // banked pairs are skipped without re-issuing their API calls, and
    // the completed store holds the exact legacy dataset.
    let (_c2, service2) = test_client(SCALE);
    let factory2 = InProcessFactory::new(service2);
    let scheduler = Scheduler::new(&factory2, cfg, SchedulerConfig::new(2, "research-key"));
    let report = scheduler.run(&mut store).unwrap();
    assert!(report.completed(), "{:?}", report.outcome);
    assert!(store.complete());
    assert_eq!(report.quota_units, full_units - banked);
    assert_eq!(store.quota_units_total(), full_units);
    assert_eq!(store.load_dataset().unwrap(), legacy);
}

#[test]
fn resuming_with_a_different_plan_is_rejected() {
    let dir = TempDir::new("resume-plan");
    let path = dir.file("audit.yts");
    {
        let mut store = Store::create(&path).unwrap();
        store
            .begin_collection(CollectionMeta::of_config(&config()))
            .unwrap();
    }
    // Same store, different plan: the sink refuses before any API call.
    let (client, _s) = test_client(0.05);
    let mut store = Store::open(&path).unwrap();
    let different = CollectorConfig {
        fetch_comments: false,
        ..config()
    };
    let err = Collector::new(&client, different)
        .run_with_sink(&mut store)
        .unwrap_err();
    assert!(matches!(err, Error::InvalidInput(_)), "{err:?}");
    assert_eq!(client.budget().units_spent(), 0);

    // The original plan still resumes fine (and collects for real).
    let mut store = Store::open(&path).unwrap();
    Collector::new(&client, config())
        .run_with_sink(&mut store)
        .unwrap();
    assert!(store.complete());
}

#[test]
fn verify_reports_damage_in_a_collected_store() {
    let dir = TempDir::new("verify-e2e");
    let path = dir.file("audit.yts");
    {
        // A tiny synthetic collection, committed through the public API.
        let mut store = Store::create(&path).unwrap();
        let meta = CollectionMeta {
            topics: vec![Topic::Higgs],
            dates: vec![Timestamp::from_ymd(2025, 2, 9).unwrap()],
            hourly_bins: true,
            fetch_metadata: false,
            fetch_channels: false,
            fetch_comments: false,
            shard: None,
            platform: ytaudit::types::PlatformKind::Youtube,
        };
        store.begin_collection(meta.clone()).unwrap();
        let data = ytaudit::core::dataset::TopicSnapshot {
            hours: vec![ytaudit::core::dataset::HourlyResult {
                hour: 0,
                video_ids: vec![ytaudit::types::VideoId::new("dQw4w9WgXcQ")],
                total_results: 40_000,
            }],
            meta_returned: Vec::new(),
        };
        store
            .commit_snapshot(&TopicCommit {
                topic: Topic::Higgs,
                snapshot: 0,
                date: meta.dates[0],
                data: &data,
                comments: None,
                videos: &[],
                quota_delta: 672,
            })
            .unwrap();
        store.finish_collection(&[], 0).unwrap();
    }
    assert!(Store::verify_path(&path).unwrap().ok());

    // Flip one bit in the middle of the file: verify reports it and a
    // fresh open refuses the file.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let report = Store::verify_path(&path).unwrap();
    assert!(!report.ok(), "{report:?}");
}
