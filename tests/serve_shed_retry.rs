//! Load shedding must be invisible in the data: a collection whose
//! requests are intermittently shed with 429 (and retried by the client)
//! produces a snapshot store byte-identical to an unshedded run. The
//! simulated service is a pure function of (seed, request time), retries
//! re-issue the identical request, and the store holds no wall-clock
//! state — so any byte difference means a shed leaked into the dataset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use ytaudit::api::service::error_response;
use ytaudit::api::{route, ApiService};
use ytaudit::client::{HttpTransport, YouTubeClient};
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::net::evloop::EvloopServer;
use ytaudit::net::resilience::{Backoff, RetryPolicy};
use ytaudit::net::server::ServerConfig;
use ytaudit::net::{Request, Response, StatusCode};
use ytaudit::platform::{Platform, SimClock};
use ytaudit::store::{Store, TempDir};
use ytaudit::types::{ApiErrorReason, Error, Topic};

const SCALE: f64 = 0.1;

fn service() -> Arc<ApiService> {
    let service = Arc::new(ApiService::new(
        Arc::new(Platform::small(SCALE)),
        SimClock::at_audit_start(),
    ));
    service.quota().register("key", u64::MAX / 2);
    service
}

fn config() -> CollectorConfig {
    CollectorConfig {
        fetch_comments: false,
        ..CollectorConfig::quick(vec![Topic::Higgs], 2)
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        backoff: Backoff {
            base: Duration::from_millis(1),
            factor: 1.0,
            max: Duration::from_millis(2),
            jitter: 0.0,
            seed: 1,
        },
    }
}

/// Collects through `server_base` into a fresh store file and returns
/// the raw store bytes plus the quota units the client spent.
fn collect_through(base_url: String, path: &std::path::Path) -> (Vec<u8>, u64) {
    let client =
        YouTubeClient::new(Box::new(HttpTransport::new(base_url)), "key").with_retry(fast_retry());
    let mut store = Store::create(path).expect("create store");
    Collector::new(&client, config())
        .run_with_sink(&mut store)
        .expect("collection");
    assert!(store.complete());
    let units = client.budget().units_spent();
    drop(store);
    (std::fs::read(path).expect("read store"), units)
}

#[test]
fn shed_and_retried_collection_is_byte_identical() {
    // Reference: an unshedded run through the event-loop server.
    let dir = TempDir::new("shed-retry");
    let clean_svc = service();
    let clean = EvloopServer::bind(
        "127.0.0.1:0",
        Arc::new(move |req: &Request| route(&clean_svc, req)),
        ServerConfig::default(),
    )
    .expect("bind clean server");
    let clean_path = dir.file("clean.yts");
    let (clean_bytes, clean_units) = collect_through(clean.base_url(), &clean_path);
    clean.shutdown();

    // Shedding run: every third API request is answered 429 and must be
    // retried. Deterministic by construction (a plain counter), so the
    // run is guaranteed to exercise the shed path.
    let shed_svc = service();
    let sheds = Arc::new(AtomicU64::new(0));
    let sheds_in_handler = Arc::clone(&sheds);
    let counter = Arc::new(AtomicU64::new(0));
    let handler = Arc::new(move |req: &Request| {
        if req.path.starts_with("/youtube/v3/") && counter.fetch_add(1, Ordering::SeqCst) % 3 == 2 {
            sheds_in_handler.fetch_add(1, Ordering::SeqCst);
            let (code, body) = error_response(&Error::api(
                ApiErrorReason::RateLimited,
                "Synthetic shed; retry shortly.",
            ));
            return Response::json(StatusCode(code), body.into_bytes())
                .with_header("retry-after", "1");
        }
        route(&shed_svc, req)
    });
    let shedding =
        EvloopServer::bind("127.0.0.1:0", handler, ServerConfig::default()).expect("bind");
    let shed_path = dir.file("shed.yts");
    let (shed_bytes, shed_units) = collect_through(shedding.base_url(), &shed_path);
    shedding.shutdown();

    // The run really was shed — repeatedly — and retried through it.
    assert!(sheds.load(Ordering::SeqCst) > 10, "shed path not exercised");
    // Quota bookkeeping is per logical call, not per attempt, so the
    // shed run spends exactly what the clean run spent…
    assert_eq!(shed_units, clean_units);
    // …and the stores are byte-for-byte identical.
    assert_eq!(clean_bytes.len(), shed_bytes.len());
    assert!(clean_bytes == shed_bytes, "store bytes diverged");
}
