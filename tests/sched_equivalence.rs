//! Scheduler ≡ sequential equivalence, end to end: for a fixed corpus
//! seed, the concurrent scheduler produces the *identical* dataset —
//! down to the bytes of a `--store` file — for any worker count.

use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig, MemorySink};
use ytaudit::sched::{InProcessFactory, Scheduler, SchedulerConfig};
use ytaudit::store::{Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";

fn config() -> CollectorConfig {
    CollectorConfig {
        fetch_comments: true,
        ..CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
    }
}

#[test]
fn scheduler_dataset_is_identical_to_sequential_for_any_worker_count() {
    let (client, _service) = test_client(SCALE);
    let sequential = Collector::new(&client, config()).run().unwrap();
    let sequential_units = client.budget().units_spent();

    for workers in [1, 8] {
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let scheduler = Scheduler::new(&factory, config(), SchedulerConfig::new(workers, KEY));
        let mut sink = MemorySink::new();
        let report = scheduler.run(&mut sink).unwrap();
        assert!(
            report.completed(),
            "workers={workers}: {:?}",
            report.outcome
        );
        assert_eq!(sink.into_dataset(), sequential, "workers={workers}");
        assert_eq!(report.quota_units, sequential_units, "workers={workers}");
    }
}

#[test]
fn scheduler_store_files_are_byte_identical_to_the_sequential_store() {
    let dir = TempDir::new("sched-equiv");

    // Sequential reference, committed through a store sink.
    let seq_path = dir.file("sequential.yts");
    {
        let (client, _service) = test_client(SCALE);
        let mut store = Store::create(&seq_path).unwrap();
        Collector::new(&client, config())
            .run_with_sink(&mut store)
            .unwrap();
        assert!(store.complete());
    }
    let seq_bytes = std::fs::read(&seq_path).unwrap();

    for workers in [1, 8] {
        let path = dir.file(&format!("workers{workers}.yts"));
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let scheduler = Scheduler::new(&factory, config(), SchedulerConfig::new(workers, KEY));
        let mut store = Store::create(&path).unwrap();
        let report = scheduler.run(&mut store).unwrap();
        assert!(
            report.completed(),
            "workers={workers}: {:?}",
            report.outcome
        );
        assert!(store.complete());
        drop(store);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            seq_bytes,
            "store bytes diverge at workers={workers}"
        );
    }
}
