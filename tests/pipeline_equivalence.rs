//! Pipelined collection ≡ sequential collection, end to end over HTTP:
//! `collect --in-flight N` must produce a `.yts` store that is
//! byte-identical to the depth-1 (plain keep-alive) run and to the
//! in-process sequential collector, for every depth the CLI would
//! accept — pipelining is a transport optimisation and must never show
//! up in the dataset.

use std::sync::Arc;
use ytaudit::api::{serve, ApiService};
use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::platform::{Platform, SimClock};
use ytaudit::sched::{HttpFactory, Scheduler, SchedulerConfig, TransportFactory};
use ytaudit::store::{Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";
const WORKERS: usize = 3;

fn config() -> CollectorConfig {
    CollectorConfig {
        fetch_comments: false,
        ..CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
    }
}

fn service() -> Arc<ApiService> {
    let service = Arc::new(ApiService::new(
        Arc::new(Platform::small(SCALE)),
        SimClock::at_audit_start(),
    ));
    service.quota().register(KEY, u64::MAX / 2);
    service
}

#[test]
fn pipelined_stores_are_byte_identical_for_depths_one_through_eight() {
    let dir = TempDir::new("pipeline-equiv");

    // The in-process sequential reference, committed through a store
    // sink — the same anchor the scheduler-equivalence suite uses.
    let seq_path = dir.file("sequential.yts");
    {
        let (client, _service) = test_client(SCALE);
        let mut store = Store::create(&seq_path).unwrap();
        Collector::new(&client, config())
            .run_with_sink(&mut store)
            .unwrap();
        assert!(store.complete());
    }
    let seq_bytes = std::fs::read(&seq_path).unwrap();

    for depth in [1usize, 2, 4, 8] {
        let svc = service();
        let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
        let factory = HttpFactory::new(server.base_url()).with_max_in_flight(depth);
        let scheduler = Scheduler::new(&factory, config(), SchedulerConfig::new(WORKERS, KEY));
        let path = dir.file(&format!("depth{depth}.yts"));
        let mut store = Store::create(&path).unwrap();
        let report = scheduler.run(&mut store).unwrap();
        assert!(report.completed(), "depth={depth}: {:?}", report.outcome);
        assert!(store.complete());
        drop(store);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            seq_bytes,
            "store bytes diverge at --in-flight {depth}"
        );

        // The depth bound is respected, and depths above one actually
        // pipelined (the hourly search waves are far wider than 8).
        let totals = factory.connection_stats();
        assert!(
            totals.pipeline_depth <= depth as u64,
            "depth={depth}: hwm {}",
            totals.pipeline_depth
        );
        if depth > 1 {
            assert!(
                totals.pipeline_depth >= 2,
                "depth={depth} never pipelined (hwm {})",
                totals.pipeline_depth
            );
        }
        assert_eq!(
            report.metrics.pipeline_depth, totals.pipeline_depth,
            "metrics must carry the factory's depth high-water mark"
        );
        server.shutdown();
    }
}
