//! The platform seam, end to end: the audit harness — collector,
//! scheduler, store, analyzer — runs unchanged against the TikTok-shaped
//! backend, records which platform a store was collected from in its
//! Begin manifest, and refuses every cross-platform operation with a
//! typed error instead of quietly mixing incomparable samples.
//!
//! The TikTok simulator's economics are deliberately alien to YouTube's
//! (per-request daily budget, date-windowed cursor queries, hidden
//! window caps and dropped tail pages), so a green run here means the
//! methodology layer truly depends only on the `core::Platform` trait.

use std::sync::Arc;
use ytaudit::core::{Analyzer, Collector, CollectorConfig, CollectorSink};
use ytaudit::platform::{Platform as CorpusPlatform, SimClock};
use ytaudit::sched::{InProcessFactory, Scheduler, SchedulerConfig, TikTokFactory};
use ytaudit::store::{follow_analyze, FollowOptions, Store, StoreError, TempDir};
use ytaudit::tiktok::testutil::{test_service, test_tiktok_client, TEST_KEY};
use ytaudit::tiktok::{QuirkConfig, TikTokClient, TikTokService, TikTokTransport};
use ytaudit::types::{Error, PlatformKind, Topic};

const SCALE: f64 = 0.08;

fn tiktok_config() -> CollectorConfig {
    CollectorConfig {
        platform: PlatformKind::Tiktok,
        fetch_comments: true,
        ..CollectorConfig::quick(vec![Topic::Higgs, Topic::Blm], 2)
    }
}

#[test]
fn tiktok_collection_completes_and_records_its_platform_in_the_manifest() {
    let dir = TempDir::new("platform-matrix-e2e");
    let path = dir.file("tiktok.yts");
    let (client, _service) = test_tiktok_client(SCALE);
    {
        let mut store = Store::create(&path).unwrap();
        Collector::new(&client, tiktok_config())
            .run_with_sink(&mut store)
            .unwrap();
        assert!(store.complete());
    }

    // The platform survives the on-disk round trip through the Begin
    // manifest, and the collection actually sampled something.
    let mut store = Store::open(&path).unwrap();
    let meta = store.collection_meta().unwrap().clone();
    assert_eq!(meta.platform, PlatformKind::Tiktok);
    let dataset = store.load_dataset().unwrap();
    assert_eq!(dataset.snapshots.len(), 2);
    for snapshot in &dataset.snapshots {
        for topic in &meta.topics {
            assert!(
                snapshot.topics[topic].total_returned() > 0,
                "{topic:?} returned nothing"
            );
        }
    }

    // Both analysis entry points accept the store and agree byte for
    // byte — the analyzer never learns which backend fed it.
    let outcome = follow_analyze(
        &path,
        &FollowOptions {
            follow: false,
            ..FollowOptions::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(
        outcome.report.to_json(),
        Analyzer::analyze_dataset(&dataset).to_json()
    );
}

#[test]
fn tiktok_scheduler_store_is_byte_identical_to_sequential() {
    let dir = TempDir::new("platform-matrix-sched");

    let seq_path = dir.file("sequential.yts");
    {
        let (client, _service) = test_tiktok_client(SCALE);
        let mut store = Store::create(&seq_path).unwrap();
        Collector::new(&client, tiktok_config())
            .run_with_sink(&mut store)
            .unwrap();
        assert!(store.complete());
    }
    let seq_bytes = std::fs::read(&seq_path).unwrap();

    // The hidden quirks are keyed on (query, day, cursor) — never on
    // request order — so any worker count lands on the same bytes.
    for workers in [1, 4] {
        let path = dir.file(&format!("workers{workers}.yts"));
        let factory = TikTokFactory::new(test_service(SCALE));
        let scheduler = Scheduler::new(
            &factory,
            tiktok_config(),
            SchedulerConfig::new(workers, TEST_KEY),
        );
        let mut store = Store::create(&path).unwrap();
        let report = scheduler.run(&mut store).unwrap();
        assert!(
            report.completed(),
            "workers={workers}: {:?}",
            report.outcome
        );
        assert!(store.complete());
        drop(store);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            seq_bytes,
            "store bytes diverge at workers={workers}"
        );
    }
}

#[test]
fn cross_platform_operations_are_rejected_with_typed_errors() {
    let dir = TempDir::new("platform-matrix-mixed");

    // A YouTube-planned store cannot be resumed by a TikTok collection:
    // the sink refuses at begin, before any API call is issued.
    let yt_path = dir.file("youtube.yts");
    {
        let mut store = Store::create(&yt_path).unwrap();
        let yt_cfg = CollectorConfig {
            platform: PlatformKind::Youtube,
            ..tiktok_config()
        };
        CollectorSink::begin(&mut store, &yt_cfg).unwrap();
    }
    let (client, _service) = test_tiktok_client(SCALE);
    let mut store = Store::open(&yt_path).unwrap();
    let err = Collector::new(&client, tiktok_config())
        .run_with_sink(&mut store)
        .unwrap_err();
    assert!(matches!(err, Error::InvalidInput(_)), "{err:?}");
    assert!(err.to_string().contains("platform mismatch"), "{err}");

    // A scheduler whose transport factory serves one platform refuses a
    // plan that names the other, before touching the sink.
    let (_client, yt_service) = ytaudit::core::testutil::test_client(SCALE);
    let factory = InProcessFactory::new(yt_service);
    let scheduler = Scheduler::new(
        &factory,
        tiktok_config(),
        SchedulerConfig::new(2, "research-key"),
    );
    let sched_path = dir.file("sched.yts");
    let mut sink = Store::create(&sched_path).unwrap();
    let err = scheduler.run(&mut sink).unwrap_err();
    assert!(matches!(err, Error::InvalidInput(_)), "{err:?}");
    assert!(
        sink.collection_meta().is_none(),
        "a rejected run must not begin the store"
    );

    // A follow that expects one platform fails typed on a store begun
    // from the other.
    let tk_path = dir.file("tiktok.yts");
    {
        let mut store = Store::create(&tk_path).unwrap();
        CollectorSink::begin(&mut store, &tiktok_config()).unwrap();
    }
    let followed = follow_analyze(
        &tk_path,
        &FollowOptions {
            follow: false,
            expect_platform: Some(PlatformKind::Youtube),
            ..FollowOptions::default()
        },
        |_| {},
    );
    assert!(
        matches!(
            followed,
            Err(StoreError::PlatformMismatch {
                stored: PlatformKind::Tiktok,
                requested: PlatformKind::Youtube,
            })
        ),
        "{followed:?}"
    );
}

#[test]
fn hidden_quirks_bite_deterministically() {
    // Two fresh default services observe the identical sample…
    let (client_a, _sa) = test_tiktok_client(SCALE);
    let first = Collector::new(&client_a, tiktok_config()).run().unwrap();
    let (client_b, _sb) = test_tiktok_client(SCALE);
    let second = Collector::new(&client_b, tiktok_config()).run().unwrap();
    assert_eq!(first, second, "quirks must be deterministic, not random");

    // …while a quirk-free service over the same corpus sees more: the
    // dropped tail pages and empty pages really do cost coverage.
    let service = Arc::new(
        TikTokService::new(
            Arc::new(CorpusPlatform::small(SCALE)),
            SimClock::at_audit_start(),
        )
        .with_quirks(QuirkConfig::none()),
    );
    service
        .ledger()
        .register(TEST_KEY, ytaudit::tiktok::RESEARCH_DAILY_REQUESTS);
    let clean_client = TikTokClient::new(
        Box::new(TikTokTransport::new(Arc::clone(&service))),
        TEST_KEY,
    );
    let clean = Collector::new(&clean_client, tiktok_config())
        .run()
        .unwrap();
    let quirked_total: usize = (0..first.snapshots.len())
        .map(|i| first.id_set(Topic::Higgs, i).len() + first.id_set(Topic::Blm, i).len())
        .sum();
    let clean_total: usize = (0..clean.snapshots.len())
        .map(|i| clean.id_set(Topic::Higgs, i).len() + clean.id_set(Topic::Blm, i).len())
        .sum();
    assert!(
        quirked_total < clean_total,
        "quirks returned {quirked_total} ids vs {clean_total} without them"
    );
}
