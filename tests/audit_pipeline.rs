//! Integration: a reduced audit must recover the paper's qualitative
//! findings end to end — decay ordering, rolling-window attrition with
//! the strict second-order refinement, pool-size ordering, regression
//! signs, and comment-endpoint stability.

use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::types::Topic;

/// One shared medium-sized collection for all assertions in this file
/// (collections dominate test time; analyses are cheap).
fn collect() -> ytaudit::core::AuditDataset {
    let (client, _service) = test_client(0.35);
    let mut config = CollectorConfig::quick(
        vec![Topic::Blm, Topic::Brexit, Topic::Higgs],
        8,
    );
    config.fetch_comments = true;
    Collector::new(&client, config).run().expect("collection succeeds")
}

#[test]
fn reduced_audit_recovers_the_papers_findings() {
    let dataset = collect();

    // --- Figure 1: decay with the right topic ordering. ---
    let fig1 = ytaudit::core::consistency::figure1(&dataset);
    let final_j = |t: Topic| {
        fig1.iter()
            .find(|tc| tc.topic == t)
            .unwrap()
            .final_jaccard_first()
    };
    assert!(final_j(Topic::Higgs) > final_j(Topic::Brexit));
    assert!(final_j(Topic::Brexit) > final_j(Topic::Blm));
    assert!(final_j(Topic::Blm) < 0.85, "BLM must churn: {}", final_j(Topic::Blm));
    assert!(final_j(Topic::Higgs) > 0.85, "Higgs must persist: {}", final_j(Topic::Higgs));
    // Adjacent similarity exceeds first-vs-last similarity (decay is
    // cumulative, not a level shift).
    for tc in &fig1 {
        assert!(
            tc.mean_jaccard_prev() >= tc.final_jaccard_first(),
            "{}",
            tc.topic
        );
    }
    // Drop-ins occur for every topic — deletions cannot explain churn.
    for tc in &fig1 {
        let gains: usize = tc.points.iter().map(|p| p.dropped_in).sum();
        assert!(gains > 0, "{} must gain videos over snapshots", tc.topic);
    }

    // --- Figure 3: rolling window, including the second-order
    // refinement (8 snapshots give enough mixed-history transitions). ---
    let fig3 = ytaudit::core::attrition::figure3(&dataset).expect("transitions observed");
    assert!(fig3.p_stay_present() > 0.8, "P(P|PP) = {}", fig3.p_stay_present());
    assert!(fig3.p_stay_absent() > 0.55, "P(A|AA) = {}", fig3.p_stay_absent());
    assert!(
        fig3.transitions[0][0] > fig3.transitions[2][0],
        "P(P|PP) {} must exceed P(P|AP) {}",
        fig3.transitions[0][0],
        fig3.transitions[2][0]
    );

    // --- Table 2: no ceiling effect. ---
    for row in ytaudit::core::randomization::table2(&dataset) {
        assert!(row.max < 50, "{}: per-hour max {}", row.topic, row.max);
        assert!(row.mean < 2.0, "{}: per-hour mean {}", row.topic, row.mean);
    }

    // --- Table 4: pool ordering and cap behaviour. ---
    let t4 = ytaudit::core::poolsize::table4(&dataset);
    let pool = |t: Topic| t4.iter().find(|r| r.topic == t).unwrap().clone();
    assert!(pool(Topic::Higgs).mean < pool(Topic::Brexit).mean);
    assert!(pool(Topic::Brexit).mean < pool(Topic::Blm).mean);
    assert_eq!(pool(Topic::Blm).max, 1_000_000, "BLM pins the cap");
    assert!(pool(Topic::Higgs).max < 100_000);

    // --- Tables 3/6/7: the sign pattern. ---
    let data = ytaudit::core::regression::build_regression_data(&dataset).expect("builds");
    let t3 = ytaudit::core::regression::table3(&data).expect("fits");
    let t6 = ytaudit::core::regression::table6(&data).expect("fits");
    for (label, coeff_of) in [
        ("t3", &t3.names.iter().cloned().zip(t3.coefficients.iter().cloned()).collect::<Vec<_>>()),
        (
            "t6",
            &t6.names
                .iter()
                .cloned()
                .zip(t6.coefficients.iter().cloned())
                .collect::<Vec<_>>(),
        ),
    ] {
        let get = |name: &str| {
            coeff_of
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or_else(|| panic!("{label}: missing {name}"))
        };
        assert!(get("higgs (topic)") > 0.5, "{label}: higgs {}", get("higgs (topic)"));
        assert!(get("brexit (topic)") > 0.0, "{label}: brexit {}", get("brexit (topic)"));
        assert!(get("duration") < 0.0, "{label}: duration {}", get("duration"));
    }
    assert!(t3.lr_p < 1e-6, "the model beats the null decisively");
    assert!(t3.pseudo_r2 < 0.5, "most variance stays unexplained (randomization)");

    // --- Table 5: comment endpoints are stable on shared videos. ---
    let t5 = ytaudit::core::comments::table5(&dataset);
    for row in &t5 {
        if let Some(tl_shared) = row.top_level_shared {
            assert!(tl_shared > 0.9, "{}: TL,S = {tl_shared}", row.topic);
        }
        if row.topic == Topic::Higgs {
            assert!(row.nested_shared.is_none(), "Higgs nested must be N/A");
        }
    }

    // --- Figure 4: ID-based metadata is near-complete. ---
    for ft in ytaudit::core::idcheck::figure4(&dataset) {
        for p in ft.vs_previous.iter().chain(&ft.vs_first) {
            assert!(p.coverage_current > 90.0, "{}: {:?}", ft.topic, p);
            assert!(p.jaccard_common > 0.9, "{}: {:?}", ft.topic, p);
        }
    }

    // --- Dataset round-trips through its JSON cache format. ---
    let json = dataset.to_json().expect("serializes");
    let back = ytaudit::core::AuditDataset::from_json(&json).expect("parses");
    assert_eq!(back, dataset);
}
