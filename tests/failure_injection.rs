//! Failure-injection integration tests: the collection pipeline must
//! survive transient backend errors, surface quota exhaustion cleanly,
//! tolerate the API's metadata misses — over real sockets — and the
//! snapshot store must survive truncation at any byte offset.

use std::sync::Arc;
use ytaudit::api::service::FaultConfig;
use ytaudit::api::{serve, ApiService};
use ytaudit::client::{HttpTransport, SearchQuery, YouTubeClient};
use ytaudit::core::testutil::test_client_with_faults;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::net::resilience::{Backoff, RetryPolicy};
use ytaudit::platform::{Platform, SimClock};
use ytaudit::types::{ApiErrorReason, Timestamp, Topic};

fn faulty_service(scale: f64, faults: FaultConfig, quota: u64) -> Arc<ApiService> {
    let service = Arc::new(
        ApiService::new(Arc::new(Platform::small(scale)), SimClock::at_audit_start())
            .with_faults(faults),
    );
    service.quota().register("key", quota);
    service
}

/// A retry policy with negligible backoff so fault tests stay fast.
fn fast_retries(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        backoff: Backoff {
            base: std::time::Duration::from_millis(1),
            max: std::time::Duration::from_millis(5),
            ..Backoff::default()
        },
    }
}

#[test]
fn collection_survives_a_flaky_backend_over_http() {
    // 20% failure with a 10-attempt budget: per-call exhaustion chance is
    // 0.2¹⁰ = 10⁻⁷, so ~1 400 calls still succeed with overwhelming
    // probability — while the server actually serves hundreds of 500s.
    let svc = faulty_service(
        0.1,
        FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.20,
        },
        u64::MAX / 2,
    );
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let client = YouTubeClient::new(Box::new(HttpTransport::new(server.base_url())), "key")
        .with_retry(fast_retries(10));
    let config = CollectorConfig {
        fetch_comments: false,
        fetch_channels: false,
        ..CollectorConfig::quick(vec![Topic::Higgs], 2)
    };
    let dataset = Collector::new(&client, config)
        .run()
        .expect("retries absorb the transient failures");
    assert_eq!(dataset.len(), 2);
    assert!(dataset.snapshots[0].topics[&Topic::Higgs].total_returned() > 10);
    server.shutdown();
}

#[test]
fn quota_exhaustion_mid_collection_surfaces_the_api_reason() {
    // Budget for ~50 searches; the hourly collection needs 672.
    let svc = faulty_service(
        0.1,
        FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.0,
        },
        5_000,
    );
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let client = YouTubeClient::new(Box::new(HttpTransport::new(server.base_url())), "key");
    let config = CollectorConfig {
        fetch_comments: false,
        fetch_channels: false,
        fetch_metadata: false,
        ..CollectorConfig::quick(vec![Topic::Higgs], 1)
    };
    let err = Collector::new(&client, config)
        .run()
        .expect_err("quota must run out");
    assert_eq!(err.api_reason(), Some(ApiErrorReason::QuotaExceeded));
    // And no retry storm: exactly budget/100 + 1 search calls were made.
    assert_eq!(client.budget().calls_made(), 51);
    server.shutdown();
}

#[test]
fn metadata_misses_reduce_coverage_but_not_systematically() {
    let (client, _service) = test_client_with_faults(
        0.25,
        FaultConfig {
            metadata_miss_rate: 0.10, // exaggerated for the test
            backend_error_rate: 0.0,
        },
    );
    let config = CollectorConfig {
        fetch_comments: false,
        ..CollectorConfig::quick(vec![Topic::Grammys], 3)
    };
    let dataset = Collector::new(&client, config).run().expect("collection");
    let mut total_searched = 0usize;
    let mut total_with_meta = 0usize;
    for snapshot in &dataset.snapshots {
        let ts = &snapshot.topics[&Topic::Grammys];
        total_searched += ts.id_set().len();
        total_with_meta += ts.meta_returned.len();
    }
    let coverage = total_with_meta as f64 / total_searched as f64;
    assert!(coverage > 0.80, "coverage {coverage}");
    assert!(coverage < 0.99, "misses must actually occur: {coverage}");
    // Non-systematic: a video missed at one snapshot shows up at another,
    // so the merged metadata map covers (nearly) everything ever seen.
    let all_seen: std::collections::HashSet<_> = (0..dataset.len())
        .flat_map(|i| dataset.id_set(Topic::Grammys, i).into_iter())
        .collect();
    let merged = dataset
        .video_meta
        .keys()
        .filter(|id| all_seen.contains(*id))
        .count();
    assert!(
        merged as f64 / all_seen.len() as f64 > 0.95,
        "misses are per-request, not per-video: {merged}/{}",
        all_seen.len()
    );
}

#[test]
fn deleted_video_mid_audit_shows_up_as_attrition_not_error() {
    let (client, service) = test_client_with_faults(
        0.3,
        FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.0,
        },
    );
    // Find a deleted video inside the audit period that search would
    // plausibly return; assert Videos.list simply omits it after the
    // deletion instant.
    let platform = service.platform();
    let deleted = platform
        .corpus()
        .topics
        .iter()
        .flat_map(|t| &t.videos)
        .find(|v| v.deleted_at.is_some())
        .expect("deletions exist")
        .clone();
    let when = deleted.deleted_at.unwrap();
    client.set_sim_time(Some(when + (-3600)));
    let before = client.videos(std::slice::from_ref(&deleted.id)).expect("ok");
    assert_eq!(before.len(), 1);
    client.set_sim_time(Some(when + 3600));
    let after = client.videos(std::slice::from_ref(&deleted.id)).expect("ok");
    assert!(after.is_empty(), "deleted videos are omitted, not errors");
}

/// Property sweep: a store file truncated at *any* byte offset must
/// either reopen cleanly with exactly the fully-committed pairs intact
/// (any cut past the 8-byte magic) or fail the open (a cut inside the
/// magic). No dependency on a property-testing crate: the offsets are
/// every commit boundary ±1 plus a deterministic pseudo-random scatter.
#[test]
fn store_truncated_at_arbitrary_offset_keeps_every_committed_pair() {
    use ytaudit::core::dataset::{HourlyResult, TopicSnapshot};
    use ytaudit::core::TopicCommit;
    use ytaudit::store::{CollectionMeta, Store, TempDir};
    use ytaudit::types::VideoId;

    let dir = TempDir::new("truncation-sweep");
    let path = dir.file("audit.yts");
    let meta = CollectionMeta {
        topics: vec![Topic::Higgs, Topic::Blm],
        dates: (0..3)
            .map(|i| Timestamp::from_ymd(2025, 2, 9).unwrap().add_days(5 * i))
            .collect(),
        hourly_bins: true,
        fetch_metadata: false,
        fetch_channels: false,
        fetch_comments: false,
        shard: None,
        platform: ytaudit::types::PlatformKind::Youtube,
    };
    let pair_data = |seed: u32| TopicSnapshot {
        hours: (0..3)
            .map(|h| HourlyResult {
                hour: h,
                video_ids: (0..4)
                    .map(|v| VideoId::new(format!("vid-{:04}", seed * 2 + h * 4 + v)))
                    .collect(),
                total_results: 40_000 + u64::from(seed),
            })
            .collect(),
        meta_returned: Vec::new(),
    };

    // Commit all six pairs, recording the file length after each commit
    // (each length is a durability boundary: cuts at or past it must
    // preserve that commit).
    let mut commit_lens: Vec<u64> = Vec::new();
    {
        let mut store = Store::create(&path).unwrap();
        store.begin_collection(meta.clone()).unwrap();
        let mut seed = 0;
        for (idx, &date) in meta.dates.iter().enumerate() {
            for &topic in &meta.topics {
                store
                    .commit_snapshot(&TopicCommit {
                        topic,
                        snapshot: idx,
                        date,
                        data: &pair_data(seed),
                        comments: None,
                        videos: &[],
                        quota_delta: 680,
                    })
                    .unwrap();
                commit_lens.push(store.stats().log_len);
                seed += 1;
            }
        }
        store.finish_collection(&[], 7).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let file_len = bytes.len() as u64;
    assert_eq!(commit_lens.len(), 6);

    // Offsets: every commit boundary ±1, the file ends, and an LCG
    // scatter across the whole file.
    let mut cuts: Vec<u64> = vec![0, 1, 7, 8, 9, file_len - 1, file_len];
    for &len in &commit_lens {
        cuts.extend([len - 1, len, len + 1]);
    }
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..40 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        cuts.push(x % (file_len + 1));
    }

    for cut in cuts {
        let cut_path = dir.file(&format!("cut-{cut}.yts"));
        std::fs::write(&cut_path, &bytes[..cut as usize]).unwrap();
        let expected = commit_lens.iter().filter(|&&l| l <= cut).count();
        match Store::open(&cut_path) {
            Ok(mut reopened) => {
                assert!(cut >= 8, "cut {cut}: opened inside the magic");
                assert_eq!(
                    reopened.committed_pairs(),
                    expected,
                    "cut at byte {cut} of {file_len}"
                );
                let finish_delta = if cut == file_len { 7 } else { 0 };
                assert_eq!(
                    reopened.quota_units_total(),
                    680 * expected as u64 + finish_delta
                );
                if expected > 0 {
                    // Every surviving commit loads back intact.
                    let dataset = reopened.load_dataset().unwrap();
                    let pairs: usize =
                        dataset.snapshots.iter().map(|s| s.topics.len()).sum();
                    assert_eq!(pairs, expected, "cut at byte {cut}");
                }
            }
            Err(e) => {
                assert!(cut < 8, "cut {cut}: open must recover, got {e}");
            }
        }
    }
}

#[test]
fn malformed_wire_bytes_do_not_kill_the_server() {
    let svc = faulty_service(
        0.05,
        FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.0,
        },
        u64::MAX / 2,
    );
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    // Throw garbage at the socket…
    for garbage in [
        &b"\x00\x01\x02\x03\x04"[..],
        b"GET GET GET\r\n\r\n",
        b"POST /youtube/v3/search HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
    ] {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let _ = stream.write_all(garbage);
        drop(stream);
    }
    // …and verify a well-formed request still succeeds afterwards.
    let client = YouTubeClient::new(Box::new(HttpTransport::new(server.base_url())), "key");
    client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
    let page = client
        .search_page(&SearchQuery::for_topic(Topic::Higgs).max_results(5), None)
        .expect("server survives garbage");
    assert!(page.page_info.total_results > 0);
    server.shutdown();
}
