//! Shared synthetic-collection harness for the sharded-store suites.
//!
//! These helpers drive the store layer directly — no API client, no
//! scheduler — with payloads that are a pure function of `(topic,
//! snapshot, seed)`. Because single-sink commit bytes are deterministic
//! on the payloads alone, a reference store built here is byte-identical
//! to what any crash-free collector would have written for the same
//! data, which lets the crash-matrix and property suites check the
//! merge invariant (`merge(shards(plan, N)) == single_sink(plan)`)
//! exhaustively and fast.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]
// Modulo-based payload derivations read better than `is_multiple_of`
// (and the method needs a newer toolchain than rust-version pins).
#![allow(clippy::manual_is_multiple_of)]

use std::path::{Path, PathBuf};
use ytaudit::core::dataset::{
    ChannelInfo, CommentFetchError, CommentRecord, CommentsSnapshot, HourlyResult, TopicSnapshot,
    VideoInfo,
};
use ytaudit::core::shard::{finish_config, shard_configs};
use ytaudit::core::{CollectorConfig, CollectorSink, TopicCommit};
use ytaudit::store::{finish_store_path, shard_store_path, Store};
use ytaudit::types::{ChannelId, Timestamp, Topic, VideoId};

/// Quota units the synthetic channel-fetch phase reports.
pub const FINISH_DELTA: u64 = 9;

/// A quick plan over `topics` with comments on (the widest record
/// variety: blobs, hour blocks, ref blocks, comment tails).
pub fn plan(topics: Vec<Topic>, snapshots: usize) -> CollectorConfig {
    CollectorConfig {
        fetch_comments: true,
        ..CollectorConfig::quick(topics, snapshots)
    }
}

fn vid(n: u64) -> VideoId {
    VideoId::new(format!("vid-{n:08}"))
}

fn video_info(n: u64) -> VideoInfo {
    VideoInfo {
        id: vid(n),
        channel_id: ChannelId::new(format!("ch-{:03}", n % 3)),
        published_at: Timestamp::from_ymd(2025, 1, 20).unwrap(),
        duration_secs: 60 + n % 900,
        is_sd: n % 2 == 0,
        views: n.wrapping_mul(100),
        likes: n.wrapping_mul(3),
        comments: n,
    }
}

fn channel_info(n: u64) -> ChannelInfo {
    ChannelInfo {
        id: ChannelId::new(format!("ch-{n:03}")),
        published_at: Timestamp::from_ymd(2018, 6, 1).unwrap(),
        views: 1_000 * (n + 1),
        subscribers: 10 * (n + 1),
        video_count: n + 1,
    }
}

/// The deterministic payload for one `(topic, snapshot)` pair. Pure in
/// `(topic, snapshot, seed)` — never in shard identity — so shard
/// stores and the single-sink reference hold identical blobs.
/// Overlapping ID ranges across snapshots exercise dedup.
pub fn pair_payload(
    cfg: &CollectorConfig,
    topic: Topic,
    snapshot: usize,
    date: Timestamp,
    seed: u64,
) -> (TopicSnapshot, Vec<VideoInfo>, Option<CommentsSnapshot>) {
    let base = seed
        .wrapping_mul(1_000)
        .wrapping_add(topic.index() as u64 * 100 + snapshot as u64);
    let data = TopicSnapshot {
        hours: vec![
            HourlyResult {
                hour: 0,
                video_ids: vec![vid(base), vid(base + 1)],
                total_results: 40_000 + base % 500,
            },
            HourlyResult {
                hour: 7,
                video_ids: vec![vid(base + 1), vid(base + 2)],
                total_results: 41_000,
            },
        ],
        meta_returned: if cfg.fetch_metadata {
            vec![vid(base), vid(base + 1)]
        } else {
            Vec::new()
        },
    };
    let videos: Vec<VideoInfo> = if cfg.fetch_metadata {
        (base..base + 3).map(video_info).collect()
    } else {
        Vec::new()
    };
    let comments = cfg.fetch_comments.then(|| CommentsSnapshot {
        comments: vec![CommentRecord {
            id: format!("c-{}-{snapshot}", topic.key()),
            video_id: vid(base),
            is_reply: snapshot % 2 == 1,
            published_at: date,
        }],
        fetch_errors: if snapshot == 0 && topic.index() == 0 {
            vec![CommentFetchError {
                video_id: vid(base + 2),
                error: "commentThreads.list: video deleted".to_string(),
            }]
        } else {
            Vec::new()
        },
    });
    (data, videos, comments)
}

/// The deterministic quota delta attributed to one pair.
pub fn pair_delta(topic: Topic, snapshot: usize) -> u64 {
    600 + topic.index() as u64 * 10 + snapshot as u64
}

/// The synthetic channel set the finish phase records.
pub fn channels(cfg: &CollectorConfig) -> Vec<ChannelInfo> {
    if cfg.fetch_channels {
        (0..3).map(channel_info).collect()
    } else {
        Vec::new()
    }
}

/// The quota delta the finish phase records.
pub fn finish_delta(cfg: &CollectorConfig) -> u64 {
    if cfg.fetch_channels {
        FINISH_DELTA
    } else {
        0
    }
}

/// Commits one pair through the sink trait, returning the sink's error
/// (crash tests inject faults underneath this call).
pub fn commit_one(
    store: &mut Store,
    cfg: &CollectorConfig,
    topic: Topic,
    snapshot: usize,
    date: Timestamp,
    seed: u64,
) -> ytaudit::types::Result<()> {
    let (data, videos, comments) = pair_payload(cfg, topic, snapshot, date, seed);
    CollectorSink::commit_topic_snapshot(
        store,
        TopicCommit {
            topic,
            snapshot,
            date,
            data: &data,
            comments: comments.as_ref(),
            videos: &videos,
            quota_delta: pair_delta(topic, snapshot),
        },
    )
}

/// Begins `cfg`'s collection and commits every not-yet-committed pair in
/// plan order (snapshot-major) — resume-safe, like the real collector.
pub fn commit_pairs(store: &mut Store, cfg: &CollectorConfig, seed: u64) {
    CollectorSink::begin(store, cfg).unwrap();
    for (snapshot, &date) in cfg.schedule.dates().iter().enumerate() {
        for &topic in &cfg.topics {
            if store.has_commit(topic, snapshot) {
                continue;
            }
            commit_one(store, cfg, topic, snapshot, date, seed).unwrap();
        }
    }
}

/// Builds the single-sink reference store for `cfg` at `path` and
/// returns its bytes — the canonical answer every merge must reproduce.
pub fn build_reference(path: &Path, cfg: &CollectorConfig, seed: u64) -> Vec<u8> {
    let mut store = Store::create(path).unwrap();
    commit_pairs(&mut store, cfg, seed);
    CollectorSink::finish(&mut store, &channels(cfg), finish_delta(cfg)).unwrap();
    assert!(store.complete());
    drop(store);
    std::fs::read(path).unwrap()
}

/// Builds (or resumes) topic shard `index` of a `count`-way split next
/// to `dest`, to completion. Returns its path.
pub fn build_topic_shard(
    dest: &Path,
    parent: &CollectorConfig,
    count: usize,
    index: usize,
    seed: u64,
) -> PathBuf {
    let cfg = shard_configs(parent, count)
        .into_iter()
        .nth(index)
        .expect("shard index in range");
    let path = shard_store_path(dest, index, &cfg.topics);
    let mut store = Store::open_or_create(&path).unwrap();
    commit_pairs(&mut store, &cfg, seed);
    if !store.complete() {
        CollectorSink::finish(&mut store, &[], 0).unwrap();
    }
    assert!(store.complete(), "shard {index} incomplete");
    path
}

/// Builds (or resumes) the finish (channels-only) store of a
/// `count`-way split next to `dest`. Returns its path.
pub fn build_finish_shard(
    dest: &Path,
    parent: &CollectorConfig,
    count: usize,
    _seed: u64,
) -> PathBuf {
    let path = finish_store_path(dest);
    let mut store = Store::open_or_create(&path).unwrap();
    CollectorSink::begin(&mut store, &finish_config(parent, count)).unwrap();
    if !store.complete() {
        CollectorSink::finish(&mut store, &channels(parent), finish_delta(parent)).unwrap();
    }
    assert!(store.complete(), "finish shard incomplete");
    path
}

/// Builds a complete `count`-way shard set for `parent` next to `dest`
/// (the future merged path), mirroring what a crash-free
/// `collect --shards count` run leaves behind. Returns the shard paths.
pub fn build_shards(
    dest: &Path,
    parent: &CollectorConfig,
    count: usize,
    seed: u64,
) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = (0..count)
        .map(|index| build_topic_shard(dest, parent, count, index, seed))
        .collect();
    paths.push(build_finish_shard(dest, parent, count, seed));
    paths
}
