//! The analysis crash matrix: a follow (`analyze --follow --checkpoint`)
//! killed at its checkpoint boundary, and a follow pointed at a store
//! whose own writer died mid-frame, must both resume from the last
//! installed checkpoint and converge on the exact batch report.
//!
//! The kill site is the `stats.pre-checkpoint` faultpoint, which sits
//! between the durable checkpoint tmp and the rename that installs it —
//! the worst spot: work was folded and serialized, but the installed
//! checkpoint still describes the previous poll. The torn-store case
//! physically truncates a frame mid-write (the flushed-page-cache
//! outcome of a writer kill) and checks the follower stalls rather than
//! misreads, then picks up once the collector recovers the store.
//!
//! The faultpoint registry is process-global, so tests serialize on one
//! mutex and disarm on drop (same pattern as `shard_crash_matrix`).

mod shard_harness;

use shard_harness as h;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use ytaudit::core::{Analyzer, CollectorSink};
use ytaudit::platform::faultpoint;
use ytaudit::store::{follow_analyze, FollowOptions, Store, StoreError, TailReader, TempDir};
use ytaudit::types::Topic;

static SERIAL: Mutex<()> = Mutex::new(());

struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faultpoint::reset();
    }
}

fn exclusive() -> FaultGuard {
    let lock = SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultpoint::reset();
    FaultGuard { _lock: lock }
}

fn batch_json(path: &Path) -> String {
    let dataset = Store::open(path).unwrap().load_dataset().unwrap();
    Analyzer::analyze_dataset(&dataset).to_json()
}

fn opts(ckpt: &Path) -> FollowOptions {
    FollowOptions {
        follow: false,
        checkpoint: Some(ckpt.to_path_buf()),
        ..FollowOptions::default()
    }
}

#[test]
fn crash_at_the_checkpoint_boundary_resumes_and_matches_batch() {
    let _guard = exclusive();
    let dir = TempDir::new("analyze-ckpt-crash");
    let path = dir.file("audit.yts");
    let ckpt = dir.file("analyze.ckpt");
    let cfg = h::plan(vec![Topic::Higgs, Topic::Blm], 3);
    let seed = 3;

    // Stage A: the collector has committed half the plan.
    let mut store = Store::create(&path).unwrap();
    CollectorSink::begin(&mut store, &cfg).unwrap();
    let dates = cfg.schedule.dates().to_vec();
    let mut committed = 0;
    'plan: for (snapshot, &date) in dates.iter().enumerate() {
        for &topic in &cfg.topics {
            h::commit_one(&mut store, &cfg, topic, snapshot, date, seed).unwrap();
            committed += 1;
            if committed == 3 {
                break 'plan;
            }
        }
    }

    // A one-shot follow of the incomplete store reports the gap but
    // leaves a checkpoint holding the three folded pairs.
    let early = follow_analyze(&path, &opts(&ckpt), |_| {});
    assert!(matches!(early, Err(StoreError::Plan(_))), "{early:?}");
    assert!(ckpt.exists(), "partial progress must be checkpointed");

    // Stage B: the collection completes.
    h::commit_pairs(&mut store, &cfg, seed);
    CollectorSink::finish(&mut store, &h::channels(&cfg), h::finish_delta(&cfg)).unwrap();
    drop(store);

    // The follow that would finish the analysis dies at the kill
    // boundary: tmp durable, rename never ran.
    faultpoint::arm("stats.pre-checkpoint", 1);
    let crashed = follow_analyze(&path, &opts(&ckpt), |_| {});
    faultpoint::reset();
    match crashed {
        Err(StoreError::Io(e)) => assert!(e.to_string().contains("stats.pre-checkpoint")),
        other => panic!("expected the injected crash, got {other:?}"),
    }

    // Restart: resumes from the stage-A checkpoint (three pairs), folds
    // only the remainder, and lands on the batch report exactly.
    let outcome = follow_analyze(&path, &opts(&ckpt), |_| {}).unwrap();
    assert_eq!(outcome.resumed_from, Some(3));
    assert_eq!(outcome.folded_pairs, 6);
    assert_eq!(outcome.report.to_json(), batch_json(&path));
}

/// Satellite regression: a [`TailReader`] whose store is compacted in
/// place underneath it must fail with a typed error rather than serve
/// frames at pre-compaction offsets — `compact_in_place` renames a
/// rewritten log over the path, so every offset the stale reader holds
/// describes a file that is no longer there. Unix-only because the
/// detection compares `(dev, ino)` of the open handle against the path.
#[cfg(unix)]
#[test]
fn tail_reader_racing_in_place_compaction_errors_instead_of_misreading() {
    let _guard = exclusive();
    let dir = TempDir::new("analyze-compact-race");
    let path = dir.file("audit.yts");
    let cfg = h::plan(vec![Topic::Higgs, Topic::Blm], 3);
    let seed = 7;
    {
        let mut store = Store::create(&path).unwrap();
        h::commit_pairs(&mut store, &cfg, seed);
        CollectorSink::finish(&mut store, &h::channels(&cfg), h::finish_delta(&cfg)).unwrap();
    }

    // The reader drains the live log once…
    let mut reader = TailReader::open(&path).unwrap();
    let mut before = 0usize;
    reader
        .poll(|_| {
            before += 1;
            Ok(())
        })
        .unwrap();
    assert!(before > 0);

    // …then the store is compacted in place (rename over the path).
    Store::open(&path).unwrap().compact_in_place().unwrap();

    // The stale reader must fail typed — never stall forever, never
    // hand out frames read at the old file's offsets.
    let err = reader.poll(|_| Ok(())).unwrap_err();
    assert!(matches!(err, StoreError::Plan(_)), "{err:?}");
    assert!(err.to_string().contains("replaced"), "{err}");

    // A fresh reader on the compacted file serves the full collection.
    let mut fresh = TailReader::open(&path).unwrap();
    let mut after = 0usize;
    fresh
        .poll(|_| {
            after += 1;
            Ok(())
        })
        .unwrap();
    assert_eq!(
        after, before,
        "compaction of a complete store must keep every frame"
    );
}

#[test]
fn torn_store_tail_stalls_the_follow_and_resumes_after_recovery() {
    let _guard = exclusive();
    let dir = TempDir::new("analyze-torn-tail");
    let path = dir.file("audit.yts");
    let ckpt = dir.file("analyze.ckpt");
    let cfg = h::plan(vec![Topic::Higgs, Topic::Blm], 3);
    let seed = 5;

    // The collector dies mid-append on the final pair: five commits are
    // durable, the sixth tore.
    {
        let mut store = Store::create(&path).unwrap();
        CollectorSink::begin(&mut store, &cfg).unwrap();
        let dates = cfg.schedule.dates().to_vec();
        let mut committed = 0;
        'plan: for (snapshot, &date) in dates.iter().enumerate() {
            for &topic in &cfg.topics {
                h::commit_one(&mut store, &cfg, topic, snapshot, date, seed).unwrap();
                committed += 1;
                if committed == 5 {
                    break 'plan;
                }
            }
        }
    }
    let five_len = std::fs::metadata(&path).unwrap().len();
    {
        let mut store = Store::open(&path).unwrap();
        h::commit_pairs(&mut store, &cfg, seed);
        CollectorSink::finish(&mut store, &h::channels(&cfg), h::finish_delta(&cfg)).unwrap();
    }
    // Torn write: only 9 bytes of the sixth pair's first frame landed.
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(five_len + 9).unwrap();
    file.sync_all().unwrap();
    drop(file);

    // The follower stalls at the tear — no error, no misread — and
    // checkpoints the five pairs it could fold.
    let stalled = follow_analyze(&path, &opts(&ckpt), |_| {});
    assert!(matches!(stalled, Err(StoreError::Plan(_))), "{stalled:?}");
    assert!(ckpt.exists());

    // The collector recovers: reopening truncates the torn tail, the
    // missing pair is re-committed, the collection finishes.
    {
        let mut store = Store::open(&path).unwrap();
        h::commit_pairs(&mut store, &cfg, seed);
        CollectorSink::finish(&mut store, &h::channels(&cfg), h::finish_delta(&cfg)).unwrap();
        assert!(store.complete());
    }

    // The restarted follow resumes from the checkpoint and matches the
    // batch analysis of the recovered store bit for bit.
    let outcome = follow_analyze(&path, &opts(&ckpt), |_| {}).unwrap();
    assert_eq!(outcome.resumed_from, Some(5));
    assert_eq!(outcome.folded_pairs, 6);
    assert_eq!(outcome.report.to_json(), batch_json(&path));
}
