//! Sharded collection ≡ single sink, end to end: merging the shard
//! stores of a `collect --shards N` run yields a `.yts` file that is
//! byte-identical to a single-sink collection of the same plan, for any
//! shard count — including degenerate splits with more shards than
//! topics — and any plan shape (seeded property test, no ambient
//! entropy).

// Modulo-based flag derivations read better than `is_multiple_of` here
// (and the method needs a newer toolchain than rust-version pins).
#![allow(clippy::manual_is_multiple_of)]

mod shard_harness;

use shard_harness as h;
use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::sched::{run_sharded, InProcessFactory, QuotaGovernor, SchedulerConfig};
use ytaudit::store::{discover_shard_paths, merge_shards, Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";

/// The fixed property-test seed; CI rotates it via `YTAUDIT_PROP_SEED`
/// (derived from the commit SHA) so fresh plans are explored on every
/// push while any failure stays reproducible from the logged seed.
const DEFAULT_PROP_SEED: u64 = 0x5EED_CAFE_D15C_0DE5;

/// A splitmix64 step — the suite's only entropy source, fully
/// determined by the seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn prop_seed() -> u64 {
    match std::env::var("YTAUDIT_PROP_SEED") {
        // Any string seeds the run: numeric values parse directly,
        // anything else (a commit SHA) is FNV-hashed.
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            raw.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            })
        }),
        Err(_) => DEFAULT_PROP_SEED,
    }
}

#[test]
fn merge_is_byte_identical_for_shard_counts_one_through_eight() {
    let dir = TempDir::new("shard-equiv-counts");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm, Topic::Brexit], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 7);

    // Counts above the topic count produce empty shards, which must
    // merge away without a trace.
    for count in 1..=8usize {
        let dest = dir.file(&format!("merged-{count}.yts"));
        let shard_paths = h::build_shards(&dest, &parent, count, 7);
        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert_eq!(report.pairs_total, 6, "count={count}");
        assert_eq!(report.pairs_merged, 6, "count={count}");
        assert!(!report.resumed, "count={count}");
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            reference,
            "merged bytes diverge from single-sink at count={count}"
        );
    }
}

#[test]
fn merged_store_passes_verification_and_loads_the_same_dataset() {
    let dir = TempDir::new("shard-equiv-verify");
    let parent = h::plan(vec![Topic::Grammys, Topic::Capitol], 2);
    h::build_reference(&dir.file("reference.yts"), &parent, 11);
    let dest = dir.file("merged.yts");
    let shard_paths = h::build_shards(&dest, &parent, 2, 11);
    merge_shards(&dest, &shard_paths).unwrap();

    let report = Store::verify_path(&dest).unwrap();
    assert!(report.ok(), "{report:?}");
    let mut merged = Store::open(&dest).unwrap();
    let mut reference = Store::open(&dir.file("reference.yts")).unwrap();
    assert_eq!(
        merged.load_dataset().unwrap(),
        reference.load_dataset().unwrap()
    );
}

/// Seeded property test over random plan shapes and shard counts:
/// `merge(shards(plan, N)) == single_sink(plan)` for plans varying in
/// topic set, snapshot count, and fetch flags, N in 1..=8.
#[test]
fn property_random_plans_merge_byte_identically() {
    let seed = prop_seed();
    let dir = TempDir::new("shard-equiv-prop");
    let mut state = seed;
    for round in 0..6 {
        let n_topics = 1 + (next(&mut state) % 3) as usize;
        let start = (next(&mut state) % Topic::ALL.len() as u64) as usize;
        let topics: Vec<Topic> = (0..n_topics)
            .map(|i| Topic::ALL[(start + i * 2) % Topic::ALL.len()])
            .collect();
        let snapshots = 1 + (next(&mut state) % 2) as usize;
        let parent = CollectorConfig {
            fetch_metadata: next(&mut state) % 4 != 0,
            fetch_channels: next(&mut state) % 4 != 0,
            fetch_comments: next(&mut state) % 2 == 0,
            ..h::plan(topics, snapshots)
        };
        let count = 1 + (next(&mut state) % 8) as usize;
        let payload_seed = next(&mut state);
        let ctx = format!(
            "seed={seed:#x} round={round}: {:?} × {snapshots}, count={count}, \
             meta={} chan={} comm={}",
            parent.topics, parent.fetch_metadata, parent.fetch_channels, parent.fetch_comments
        );

        let reference = h::build_reference(
            &dir.file(&format!("ref-{round}.yts")),
            &parent,
            payload_seed,
        );
        let dest = dir.file(&format!("merged-{round}.yts"));
        let shard_paths = h::build_shards(&dest, &parent, count, payload_seed);
        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert_eq!(report.pairs_total, parent.topics.len() * snapshots, "{ctx}");
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            reference,
            "merged bytes diverge from single-sink ({ctx})"
        );
    }
}

/// Satellite regression: a shard set whose Begin manifests disagree —
/// on platform, or on any other parent-plan field — must fail `store
/// merge` with a typed [`StoreError`] *before* the `.merging` tmp file
/// is ever created, so a rejected merge leaves the directory exactly as
/// it found it.
#[test]
fn mismatched_shard_manifests_fail_typed_before_any_merge_tmp_exists() {
    use ytaudit::store::StoreError;
    use ytaudit::types::PlatformKind;

    fn assert_no_merge_residue(dir: &TempDir) {
        for entry in std::fs::read_dir(dir.path()).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(
                !name.contains(".merging"),
                "rejected merge left tmp file {name}"
            );
        }
    }

    let dir = TempDir::new("shard-equiv-mixed");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 1);

    // A healthy two-shard YouTube set…
    let yt_paths = h::build_shards(&dir.file("merged.yts"), &parent, 2, 3);

    // …a same-shape set collected from the other platform…
    let tk_parent = CollectorConfig {
        platform: PlatformKind::Tiktok,
        ..parent.clone()
    };
    let tk_paths = h::build_shards(&dir.file("merged-tk.yts"), &tk_parent, 2, 3);

    // …and one whose plan differs in an ordinary field.
    let alt_parent = CollectorConfig {
        fetch_comments: false,
        ..parent.clone()
    };
    let alt_paths = h::build_shards(&dir.file("merged-alt.yts"), &alt_parent, 2, 5);

    // Mixing one TikTok shard into the YouTube set is a platform
    // mismatch, surfaced as the dedicated typed error.
    let out = dir.file("mixed.yts");
    let mixed = vec![
        yt_paths[0].clone(),
        tk_paths[1].clone(),
        yt_paths[2].clone(),
    ];
    let err = merge_shards(&out, &mixed).unwrap_err();
    assert!(
        matches!(err, StoreError::PlatformMismatch { .. }),
        "{err:?}"
    );
    assert!(!out.exists(), "no output may appear for a rejected merge");
    assert_no_merge_residue(&dir);

    // Same platform, different parent plan: the generic typed manifest
    // check fires, with the same nothing-written guarantee.
    let out2 = dir.file("mixed2.yts");
    let mixed2 = vec![
        yt_paths[0].clone(),
        alt_paths[1].clone(),
        yt_paths[2].clone(),
    ];
    let err2 = merge_shards(&out2, &mixed2).unwrap_err();
    assert!(matches!(err2, StoreError::Plan(_)), "{err2:?}");
    assert!(!out2.exists());
    assert_no_merge_residue(&dir);

    // The untouched YouTube set still merges cleanly afterwards.
    let good = dir.file("good.yts");
    merge_shards(&good, &yt_paths).unwrap();
    assert!(good.exists());
}

/// The acceptance check, end to end through the real pipeline: a
/// scheduler-driven `collect --shards N` run plus `store merge` is
/// byte-identical to the sequential single-sink store for
/// N ∈ {1, 2, 4, 8}.
#[test]
fn sharded_collect_plus_merge_matches_the_sequential_store_end_to_end() {
    let dir = TempDir::new("shard-equiv-e2e");
    let config = h::plan(vec![Topic::Higgs, Topic::Blm], 2);

    let seq_path = dir.file("sequential.yts");
    {
        let (client, _service) = test_client(SCALE);
        let mut store = Store::create(&seq_path).unwrap();
        Collector::new(&client, config.clone())
            .run_with_sink(&mut store)
            .unwrap();
        assert!(store.complete());
    }
    let seq_bytes = std::fs::read(&seq_path).unwrap();

    for shards in [1usize, 2, 4, 8] {
        let dest = dir.file(&format!("sharded-{shards}.yts"));
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let report = run_sharded(
            &factory,
            &config,
            &SchedulerConfig::new(2, KEY),
            shards,
            std::sync::Arc::new(QuotaGovernor::unlimited()),
            &dest,
            false,
        )
        .unwrap();
        assert!(report.completed(), "shards={shards}: {report:?}");

        let shard_paths = discover_shard_paths(&dest).unwrap();
        assert_eq!(shard_paths.len(), shards + 1, "shards={shards}");
        merge_shards(&dest, &shard_paths).unwrap();
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            seq_bytes,
            "merged store bytes diverge from sequential at shards={shards}"
        );
    }
}
