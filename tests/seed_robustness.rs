//! Seed robustness: the reproduction's qualitative findings must hold for
//! *any* corpus seed, not just the calibrated default — otherwise the
//! "findings" would be artifacts of one lucky random draw.

use ytaudit::core::testutil::test_client_with_seed;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::types::Topic;

fn audit_with_seed(seed: u64) -> ytaudit::core::AuditDataset {
    let (client, _service) = test_client_with_seed(0.35, seed);
    let config = CollectorConfig {
        fetch_comments: false,
        ..CollectorConfig::quick(vec![Topic::Blm, Topic::Higgs, Topic::WorldCup], 6)
    };
    Collector::new(&client, config).run().expect("collection succeeds")
}

#[test]
fn qualitative_findings_hold_across_seeds() {
    for seed in [11, 0xDEADBEEF] {
        let dataset = audit_with_seed(seed);
        // Figure 1 ordering: Higgs stable, BLM churns.
        let fig1 = ytaudit::core::consistency::figure1(&dataset);
        let final_j = |t: Topic| {
            fig1.iter()
                .find(|tc| tc.topic == t)
                .unwrap()
                .final_jaccard_first()
        };
        assert!(
            final_j(Topic::Higgs) > final_j(Topic::Blm) + 0.1,
            "seed {seed}: higgs {} vs blm {}",
            final_j(Topic::Higgs),
            final_j(Topic::Blm)
        );
        // Drop-ins occur (deletions can't explain churn).
        let gains: usize = fig1
            .iter()
            .find(|tc| tc.topic == Topic::Blm)
            .unwrap()
            .points
            .iter()
            .map(|p| p.dropped_in)
            .sum();
        assert!(gains > 0, "seed {seed}: no drop-ins");
        // Attrition: presence persists.
        let fig3 = ytaudit::core::attrition::figure3(&dataset).expect("transitions");
        assert!(
            fig3.p_stay_present() > 0.7,
            "seed {seed}: P(P|PP) = {}",
            fig3.p_stay_present()
        );
        // Pool ordering: Higgs ≪ BLM; BLM caps.
        let pools = ytaudit::core::poolsize::table4(&dataset);
        let pool = |t: Topic| pools.iter().find(|r| r.topic == t).unwrap().clone();
        assert!(pool(Topic::Higgs).mean * 5 < pool(Topic::Blm).mean, "seed {seed}");
        // Regression. The topic effects are strong and must replicate at
        // any seed. The popularity effects (duration, likes) are *weak by
        // design* (pseudo-R² ≈ 0.08 in the paper) and also mechanically
        // attenuate at reduced corpus scale — with ~2 eligible videos per
        // hour bin the top-k selection rarely gets to express propensity.
        // So at this scale we only require that they are not
        // *significantly wrong-signed*; the full-scale repro binary
        // checks the exact Table 3/6 pattern.
        let data =
            ytaudit::core::regression::build_regression_data(&dataset).expect("builds");
        let fit = ytaudit::core::regression::table6(&data).expect("fits");
        assert!(
            fit.coefficient("higgs (topic)").unwrap() > 0.3,
            "seed {seed}: higgs effect"
        );
        assert!(
            fit.p_value("higgs (topic)").unwrap() < 0.001,
            "seed {seed}: higgs significance"
        );
        let duration = fit.coefficient("duration").unwrap();
        let duration_p = fit.p_value("duration").unwrap();
        assert!(
            duration < 0.0 || duration_p > 0.05,
            "seed {seed}: duration significantly positive ({duration}, p={duration_p})"
        );
    }
}

#[test]
fn different_seeds_produce_different_corpora_with_the_same_structure() {
    let a = audit_with_seed(1);
    let b = audit_with_seed(2);
    // Different content…
    assert_ne!(
        a.id_set(Topic::Higgs, 0),
        b.id_set(Topic::Higgs, 0),
        "seeds must change the corpus"
    );
    // …but the same calibrated scale (within sampling noise).
    let size_a = a.id_set(Topic::Higgs, 0).len() as f64;
    let size_b = b.id_set(Topic::Higgs, 0).len() as f64;
    assert!(
        (size_a - size_b).abs() / size_a.max(size_b) < 0.25,
        "{size_a} vs {size_b}"
    );
}
