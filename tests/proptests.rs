//! Cross-crate property tests: invariants of the simulated API as
//! observed through the public client, for randomized queries and dates.

use proptest::prelude::*;
use std::sync::Arc;
use ytaudit::api::ApiService;
use ytaudit::client::{InProcessTransport, Order, SearchQuery, YouTubeClient};
use ytaudit::platform::{Platform, SimClock};
use ytaudit::types::{Timestamp, Topic};

fn harness() -> (YouTubeClient, Arc<ApiService>) {
    // One shared platform per process would be faster, but proptest cases
    // must be independent; a small corpus keeps this cheap.
    let service = Arc::new(ApiService::new(
        Arc::new(Platform::small(0.08)),
        SimClock::at_audit_start(),
    ));
    service.quota().register("key", u64::MAX / 2);
    let client = YouTubeClient::new(
        Box::new(InProcessTransport::new(Arc::clone(&service))),
        "key",
    );
    (client, service)
}

fn arb_topic() -> impl Strategy<Value = Topic> {
    prop_oneof![
        Just(Topic::Blm),
        Just(Topic::Brexit),
        Just(Topic::Capitol),
        Just(Topic::Grammys),
        Just(Topic::Higgs),
        Just(Topic::WorldCup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any topic, sub-window, and collection date: results are
    /// deterministic, date-descending, unique, within the requested
    /// window, and a subset of what the oracle says is eligible.
    #[test]
    fn search_results_are_sound(
        topic in arb_topic(),
        start_day in 0i64..21,
        span_days in 1i64..7,
        collect_day in 0i64..80,
    ) {
        let (client, service) = harness();
        let after = topic.window_start().add_days(start_day);
        let before = after.add_days(span_days);
        let date = Timestamp::from_ymd(2025, 2, 9).unwrap().add_days(collect_day);
        client.set_sim_time(Some(date));
        let query = SearchQuery::keywords(topic.spec().query)
            .between(after, before)
            .order(Order::Date);
        let first = client.search_all(&query).unwrap();
        let second = client.search_all(&query).unwrap();
        prop_assert_eq!(first.video_ids(), second.video_ids(), "determinism");

        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<Timestamp> = None;
        for item in &first.items {
            prop_assert!(seen.insert(item.id.video_id.clone()), "uniqueness");
            let snippet = item.snippet.as_ref().unwrap();
            let published = Timestamp::parse_rfc3339(&snippet.published_at).unwrap();
            prop_assert!(published >= after && published < before, "window");
            if let Some(p) = prev {
                prop_assert!(published <= p, "date-descending");
            }
            prev = Some(published);
            // Soundness: the oracle knows this video and it matches.
            let video = service
                .platform()
                .video(&ytaudit::types::VideoId::new(item.id.video_id.clone()), date)
                .expect("returned videos exist and are visible");
            prop_assert!(video.matches_tokens(&topic.spec().query_tokens()));
        }
        // The pool estimate respects the documented cap.
        prop_assert!(first.total_results <= 1_000_000);
    }

    /// Narrowing a query (adding an AND term) never increases the
    /// returned set or the pool estimate, at any date.
    #[test]
    fn restriction_is_monotone(topic in arb_topic(), collect_day in 0i64..80) {
        let (client, _service) = harness();
        let date = Timestamp::from_ymd(2025, 2, 9).unwrap().add_days(collect_day);
        client.set_sim_time(Some(date));
        let broad = SearchQuery::for_topic(topic);
        let narrow = SearchQuery::for_topic(topic).and_term(topic.spec().subtopics[0]);
        let b = client.search_all(&broad).unwrap();
        let n = client.search_all(&narrow).unwrap();
        prop_assert!(n.items.len() <= b.items.len());
        prop_assert!(n.total_results <= b.total_results);
    }

    /// Pagination is a prefix operation: walking pages of size s yields
    /// exactly the first min(10·s, |result set|) items of the full walk —
    /// the documented "max 50 per page, max 10 pages" rule means small
    /// pages really do see fewer total results.
    #[test]
    fn pagination_is_a_prefix(topic in arb_topic(), page_size in 1u32..50) {
        let (client, _service) = harness();
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 3, 1).unwrap()));
        let big = client
            .search_all(&SearchQuery::for_topic(topic).max_results(50))
            .unwrap()
            .video_ids();
        let small = client
            .search_all(&SearchQuery::for_topic(topic).max_results(page_size))
            .unwrap()
            .video_ids();
        let reachable = big.len().min(page_size as usize * 10);
        prop_assert_eq!(&small[..], &big[..reachable], "pages walk a stable prefix");
    }

    /// The quota ledger is exact: units spent = searches×100 + id calls.
    #[test]
    fn quota_arithmetic_is_exact(n_searches in 1usize..5, n_video_calls in 0usize..4) {
        let (client, service) = harness();
        client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
        let ids: Vec<_> = service.platform().corpus().topics[0]
            .videos
            .iter()
            .take(3)
            .map(|v| v.id.clone())
            .collect();
        for _ in 0..n_searches {
            client
                .search_page(&SearchQuery::for_topic(Topic::Higgs).max_results(5), None)
                .unwrap();
        }
        for _ in 0..n_video_calls {
            client.videos(&ids).unwrap();
        }
        let expected = n_searches as u64 * 100 + n_video_calls as u64;
        prop_assert_eq!(client.budget().units_spent(), expected);
        prop_assert_eq!(
            service.quota().used_today("key", Timestamp::from_ymd(2025, 2, 9).unwrap()),
            expected
        );
    }
}
