//! The distributed crash matrix: a kill injected at each dist
//! faultpoint — `dist.lease-grant` (coordinator, before the grant is
//! recorded), `dist.pre-ship` (worker, after execution, before the
//! upload), and `dist.pre-accept` (coordinator, after upload
//! validation, before the canonical rename) — must leave the run
//! recoverable, and the recovered run's merged store must stay
//! byte-identical to a crash-free single-sink collection, with no
//! range executed-and-committed twice (quota-ledger check).
//!
//! The scheduler-driven tests exercise real workers end to end; the
//! synthetic test at the bottom drives the same faults over the raw
//! wire with store-layer payloads, so the coordinator-side kill
//! semantics are pinned without an API in the loop.
//!
//! The faultpoint registry is process-global, so every test here
//! serializes on one mutex and disarms on drop — the same discipline
//! as `shard_crash_matrix`.

mod shard_harness;

use shard_harness as h;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::dist::protocol::{
    LeaseRequest, ShipBegin, ShipChunk, ShipCommit, ERROR_HEADER, LEASE_PATH, SHIP_BEGIN_PATH,
    SHIP_CHUNK_PATH, SHIP_COMMIT_PATH,
};
use ytaudit::dist::{
    run_worker, Coordinator, CoordinatorChannel, DistError, DistErrorKind, HttpChannel,
    LeaseGrant, LeaseReply, LocalChannel, ShipReply, WorkerConfig, WorkerReport,
};
use ytaudit::net::{Request, Server, ServerConfig};
use ytaudit::platform::clock::RealClock;
use ytaudit::platform::faultpoint;
use ytaudit::sched::{InProcessFactory, SchedulerConfig};
use ytaudit::store::crc::crc32;
use ytaudit::store::{Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";

/// Folds the CI-rotated property seed (`YTAUDIT_PROP_SEED`, numeric or
/// FNV-hashed commit SHA) into a test's fixed payload seed, matching
/// the shard-equivalence suite's convention.
fn prop_seed(fixed: u64) -> u64 {
    match std::env::var("YTAUDIT_PROP_SEED") {
        Ok(raw) => {
            let rotated = raw.parse().unwrap_or_else(|_| {
                raw.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                })
            });
            rotated ^ fixed
        }
        Err(_) => fixed,
    }
}

static SERIAL: Mutex<()> = Mutex::new(());

struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faultpoint::reset();
    }
}

/// Takes the binary-wide fault lock and guarantees a clean registry on
/// entry and exit (even when the test panics mid-arm).
fn exclusive() -> FaultGuard {
    let lock = SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultpoint::reset();
    FaultGuard { _lock: lock }
}

fn plan() -> CollectorConfig {
    h::plan(vec![Topic::Higgs, Topic::Blm], 2)
}

fn reference(dir: &TempDir, config: &CollectorConfig) -> Vec<u8> {
    let path = dir.file("reference.yts");
    let (client, _service) = test_client(SCALE);
    let mut store = Store::create(&path).unwrap();
    Collector::new(&client, config.clone())
        .run_with_sink(&mut store)
        .unwrap();
    assert!(store.complete());
    drop(store);
    std::fs::read(&path).unwrap()
}

fn coordinator(config: &CollectorConfig, dest: &Path, ttl: Duration) -> Arc<Coordinator> {
    Arc::new(Coordinator::new(config, 2, dest, ttl, Arc::new(RealClock::default())).unwrap())
}

fn worker_cfg(name: &str, workdir: PathBuf) -> WorkerConfig {
    WorkerConfig::new(name, workdir, SchedulerConfig::new(2, KEY))
}

/// Runs one worker to completion against an in-process coordinator.
fn run_one(
    coord: &Arc<Coordinator>,
    factory: &InProcessFactory,
    cfg: &WorkerConfig,
) -> WorkerReport {
    let chan = LocalChannel::new(Arc::clone(coord));
    run_worker(&chan, factory, cfg).unwrap()
}

/// The exactly-once ledger check: byte-identity plus an explicit quota
/// comparison (a range executed-and-committed twice would double its
/// pairs' recorded deltas).
fn assert_converged(dest: &Path, reference_path: &Path, reference_bytes: &[u8], label: &str) {
    assert_eq!(
        std::fs::read(dest).unwrap(),
        reference_bytes,
        "{label}: merged store diverges from single-sink"
    );
    let merged = Store::open(dest).unwrap();
    let single = Store::open(reference_path).unwrap();
    assert_eq!(merged.quota_units_total(), single.quota_units_total(), "{label}");
    assert_eq!(merged.committed_pairs(), single.committed_pairs(), "{label}");
}

/// Coordinator dies while granting a lease (`dist.lease-grant` trips
/// before anything is recorded). Nothing was leased, so the retry is
/// safe by construction: the worker's bounded retry absorbs the fault
/// and the run completes without a duplicate grant or ship.
#[test]
fn kill_at_lease_grant_is_absorbed_by_worker_retry() {
    let _guard = exclusive();
    let dir = TempDir::new("dist-crash-lease-grant");
    let config = plan();
    let reference_bytes = reference(&dir, &config);

    let dest = dir.file("merged.yts");
    let coord = coordinator(&config, &dest, Duration::from_secs(60));
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);

    faultpoint::arm("dist.lease-grant", 1);
    let report = run_one(&coord, &factory, &worker_cfg("retrier", dir.file("work")));
    faultpoint::reset();

    assert_eq!(report.committed, coord.plan().total_ranges());
    assert_eq!(report.duplicates, 0);
    // The failed grant recorded nothing: granted leases == ranges.
    assert_eq!(coord.counters().leases_granted, coord.plan().total_ranges() as u64);

    coord.merge().unwrap();
    assert_converged(&dest, &dir.file("reference.yts"), &reference_bytes, "lease-grant kill");
}

/// Worker dies between executing its range and shipping it
/// (`dist.pre-ship`). The lease runs out, a replacement worker —
/// started on the same workdir, like a restarted process — re-leases
/// the range, resumes the local shard store without re-collecting the
/// committed pairs, and ships it.
#[test]
fn worker_killed_pre_ship_is_replaced_and_the_range_resumed() {
    let _guard = exclusive();
    let dir = TempDir::new("dist-crash-pre-ship");
    let config = plan();
    let reference_bytes = reference(&dir, &config);

    let dest = dir.file("merged.yts");
    // A short ttl so the dead worker's lease is forfeited quickly.
    let coord = coordinator(&config, &dest, Duration::from_secs(1));
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);
    let workdir = dir.file("work");

    faultpoint::arm("dist.pre-ship", 1);
    let chan = LocalChannel::new(Arc::clone(&coord));
    let err = run_worker(&chan, &factory, &worker_cfg("victim", workdir.clone())).unwrap_err();
    faultpoint::reset();
    assert_eq!(err.kind, DistErrorKind::Internal);
    assert!(err.detail.contains("dist.pre-ship"), "{err}");
    // The victim executed its range fully; the local shard survives it.
    assert!(workdir.join("range-0.yts").exists());

    // The replacement waits out the residual ttl on the dead worker's
    // range, gets it re-issued, and finds the work already on disk.
    let report = run_one(&coord, &factory, &worker_cfg("replacement", workdir));
    assert_eq!(report.committed, coord.plan().total_ranges());
    assert_eq!(report.duplicates, 0);
    assert!(coord.counters().leases_reissued >= 1);

    coord.merge().unwrap();
    assert_converged(&dest, &dir.file("reference.yts"), &reference_bytes, "pre-ship kill");
}

/// Coordinator dies after validating an upload but before the rename
/// that installs it (`dist.pre-accept`), taking the worker down with it
/// (retries disabled). A restarted coordinator clears the torn
/// `.receiving` staging file, re-opens the range, and a fresh worker —
/// resuming the victim's workdir — completes the run.
#[test]
fn coordinator_killed_pre_accept_restarts_and_converges() {
    let _guard = exclusive();
    let dir = TempDir::new("dist-crash-pre-accept");
    let config = plan();
    let reference_bytes = reference(&dir, &config);

    let dest = dir.file("merged.yts");
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);
    let workdir = dir.file("work");

    {
        let coord = coordinator(&config, &dest, Duration::from_secs(60));
        faultpoint::arm("dist.pre-accept", 1);
        let mut cfg = worker_cfg("victim", workdir.clone());
        // A dying coordinator does not come back for a retry.
        cfg.max_retries = 0;
        let chan = LocalChannel::new(Arc::clone(&coord));
        let err = run_worker(&chan, &factory, &cfg).unwrap_err();
        faultpoint::reset();
        assert_eq!(err.kind, DistErrorKind::Internal);
        assert!(err.detail.contains("dist.pre-accept"), "{err}");
        assert!(!coord.all_committed());
    }

    // The restarted coordinator recovers from disk: no shard was
    // installed, so every range is open again.
    let coord = coordinator(&config, &dest, Duration::from_secs(60));
    assert_eq!(coord.counters().shards_received, 0);

    let report = run_one(&coord, &factory, &worker_cfg("successor", workdir));
    assert_eq!(report.committed, coord.plan().total_ranges());
    assert_eq!(report.duplicates, 0);

    coord.merge().unwrap();
    assert_converged(&dest, &dir.file("reference.yts"), &reference_bytes, "pre-accept kill");
}

/// The non-fatal flavor of `dist.pre-accept`: the coordinator survives
/// the fault (one transient refusal), the worker's retry re-sends the
/// commit against the still-staged upload, and nothing is shipped or
/// committed twice.
#[test]
fn transient_pre_accept_fault_is_absorbed_by_commit_retry() {
    let _guard = exclusive();
    let dir = TempDir::new("dist-crash-pre-accept-retry");
    let config = plan();
    let reference_bytes = reference(&dir, &config);

    let dest = dir.file("merged.yts");
    let coord = coordinator(&config, &dest, Duration::from_secs(60));
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);

    faultpoint::arm("dist.pre-accept", 1);
    let report = run_one(&coord, &factory, &worker_cfg("retrier", dir.file("work")));
    faultpoint::reset();

    assert_eq!(report.committed, coord.plan().total_ranges());
    assert_eq!(report.duplicates, 0);
    assert_eq!(coord.counters().shards_received, coord.plan().total_ranges() as u64);
    assert_eq!(coord.counters().duplicate_ships, 0);

    coord.merge().unwrap();
    assert_converged(
        &dest,
        &dir.file("reference.yts"),
        &reference_bytes,
        "transient pre-accept",
    );
}

// ---------------------------------------------------------------------
// Synthetic wire-level coverage (no API, no scheduler): the same
// coordinator-side kills driven over a real loopback server with
// store-layer shard payloads from the shared harness.
// ---------------------------------------------------------------------

/// One POST over the dist wire; non-2xx responses become typed errors
/// via [`ERROR_HEADER`], exactly like the real worker's transport.
fn post(chan: &dyn CoordinatorChannel, path: &str, body: Vec<u8>) -> Result<Vec<u8>, DistError> {
    let req = Request::post(path, body).with_header("content-type", "application/octet-stream");
    let resp = chan
        .call(req)
        .map_err(|e| DistError::new(DistErrorKind::Internal, e.to_string()))?;
    if resp.status.is_success() {
        return Ok(resp.body);
    }
    let kind = resp
        .headers
        .get(ERROR_HEADER)
        .and_then(DistErrorKind::from_key)
        .unwrap_or(DistErrorKind::Internal);
    Err(DistError::new(
        kind,
        String::from_utf8_lossy(&resp.body).into_owned(),
    ))
}

fn wire_lease(chan: &dyn CoordinatorChannel, worker: &str) -> LeaseGrant {
    let body = post(
        chan,
        LEASE_PATH,
        LeaseRequest {
            worker: worker.to_string(),
        }
        .encode(),
    )
    .unwrap();
    match LeaseReply::decode(&body).unwrap() {
        LeaseReply::Grant(grant) => grant,
        other => panic!("expected a grant, got {other:?}"),
    }
}

fn wire_upload(chan: &dyn CoordinatorChannel, grant: &LeaseGrant, data: &[u8]) {
    post(
        chan,
        SHIP_BEGIN_PATH,
        ShipBegin {
            range: grant.range,
            token: grant.token,
            total_len: data.len() as u64,
            total_crc: crc32(data),
        }
        .encode(),
    )
    .unwrap();
    let mut offset = 0usize;
    for chunk in data.chunks(16 * 1024) {
        post(
            chan,
            SHIP_CHUNK_PATH,
            ShipChunk {
                range: grant.range,
                token: grant.token,
                offset: offset as u64,
                crc: crc32(chunk),
                bytes: chunk.to_vec(),
            }
            .encode(),
        )
        .unwrap();
        offset += chunk.len();
    }
}

fn wire_commit(
    chan: &dyn CoordinatorChannel,
    grant: &LeaseGrant,
    data: &[u8],
) -> Result<ShipReply, DistError> {
    let body = post(
        chan,
        SHIP_COMMIT_PATH,
        ShipCommit {
            range: grant.range,
            token: grant.token,
            total_len: data.len() as u64,
            total_crc: crc32(data),
        }
        .encode(),
    )?;
    ShipReply::decode(&body)
}

/// Both coordinator-side kills, over the raw wire: a grant that dies
/// before recording retries cleanly, and a commit that dies after
/// validation re-commits the still-staged upload — once.
#[test]
fn synthetic_wire_kills_at_coordinator_faultpoints_recover_exactly_once() {
    let _guard = exclusive();
    let dir = TempDir::new("dist-crash-synthetic");
    let config = plan();
    let seed = prop_seed(11);
    let reference_bytes = h::build_reference(&dir.file("synthetic-reference.yts"), &config, seed);
    let staged = h::build_shards(&dir.file("staging.yts"), &config, 2, seed);
    let shards: Vec<Vec<u8>> = staged.iter().map(|p| std::fs::read(p).unwrap()).collect();

    let dest = dir.file("merged.yts");
    let coord = coordinator(&config, &dest, Duration::from_secs(60));
    let handler: Arc<dyn ytaudit::net::Handler> = Arc::clone(&coord) as _;
    let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
    let chan = HttpChannel::new(&server.base_url()).unwrap();

    // Kill the coordinator mid-grant: the 500 carries the typed error,
    // nothing was recorded, and the re-sent lease is a clean first grant.
    faultpoint::arm("dist.lease-grant", 1);
    let err = post(
        &chan,
        LEASE_PATH,
        LeaseRequest {
            worker: "w".into(),
        }
        .encode(),
    )
    .unwrap_err();
    faultpoint::reset();
    assert_eq!(err.kind, DistErrorKind::Internal);
    assert!(err.detail.contains("dist.lease-grant"), "{err}");
    assert_eq!(coord.counters().leases_granted, 0);

    let g0 = wire_lease(&chan, "w");
    wire_upload(&chan, &g0, &shards[g0.range as usize]);

    // Kill the coordinator mid-accept: the upload was validated but
    // never installed. The staging survives, so re-sending the commit
    // installs it — exactly once.
    faultpoint::arm("dist.pre-accept", 1);
    let err = wire_commit(&chan, &g0, &shards[g0.range as usize]).unwrap_err();
    faultpoint::reset();
    assert_eq!(err.kind, DistErrorKind::Internal);
    assert!(err.detail.contains("dist.pre-accept"), "{err}");
    assert_eq!(coord.counters().shards_received, 0);

    let reply = wire_commit(&chan, &g0, &shards[g0.range as usize]).unwrap();
    assert_eq!(reply, ShipReply::Accepted);
    assert_eq!(coord.counters().shards_received, 1);

    // The rest of the plan ships clean.
    loop {
        let body = post(
            &chan,
            LEASE_PATH,
            LeaseRequest {
                worker: "w".into(),
            }
            .encode(),
        )
        .unwrap();
        match LeaseReply::decode(&body).unwrap() {
            LeaseReply::Done => break,
            LeaseReply::Wait => std::thread::sleep(Duration::from_millis(5)),
            LeaseReply::Grant(g) => {
                wire_upload(&chan, &g, &shards[g.range as usize]);
                assert_eq!(
                    wire_commit(&chan, &g, &shards[g.range as usize]).unwrap(),
                    ShipReply::Accepted
                );
            }
        }
    }
    server.shutdown();

    assert!(coord.all_committed());
    assert_eq!(coord.counters().duplicate_ships, 0);
    assert_eq!(coord.counters().shards_received, coord.plan().total_ranges() as u64);
    coord.merge().unwrap();
    assert_eq!(
        std::fs::read(&dest).unwrap(),
        reference_bytes,
        "synthetic kills: merged store diverges from single-sink"
    );
}
