//! The crash matrix: a kill injected at every phase boundary of a
//! sharded collection — mid-shard-commit, during a shard's finish,
//! pre-merge, at every mid-merge commit, mid-merge-finish, and
//! post-merge-pre-rename — must leave the run resumable, and the
//! resumed run's merged store must stay byte-identical to a crash-free
//! single-sink collection.
//!
//! Faults are injected through `ytaudit_platform::faultpoint`: the
//! armed site returns an error *before* the fsync it guards, so
//! everything already appended is still in the file (the flushed-page-
//! cache outcome of a real kill); the torn-write outcome is modeled by
//! physically truncating the tail afterwards. Both must converge.
//!
//! The faultpoint registry is process-global, so every test here
//! serializes on one mutex and disarms on drop.

mod shard_harness;

use shard_harness as h;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use ytaudit::core::shard::shard_configs;
use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorSink};
use ytaudit::platform::faultpoint;
use ytaudit::sched::{run_sharded, InProcessFactory, QuotaGovernor, SchedulerConfig};
use ytaudit::store::{discover_shard_paths, merge_shards, shard_store_path, Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";

static SERIAL: Mutex<()> = Mutex::new(());

struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faultpoint::reset();
    }
}

/// Takes the binary-wide fault lock and guarantees a clean registry on
/// entry and exit (even when the test panics mid-arm).
fn exclusive() -> FaultGuard {
    let lock = SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultpoint::reset();
    FaultGuard { _lock: lock }
}

/// Models the torn-write outcome of a kill: the last `bytes` bytes of
/// the file never reached the disk.
fn tear(path: &Path, bytes: u64) {
    let len = std::fs::metadata(path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len - bytes).unwrap();
    file.sync_all().unwrap();
}

fn merging_tmp(dest: &Path) -> PathBuf {
    PathBuf::from(format!("{}.merging", dest.display()))
}

#[test]
fn crash_mid_shard_commit_resumes_to_identical_merged_bytes() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-shard-commit");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 3);
    let dest = dir.file("merged.yts");

    // Shard 0 dies on its first commit: the Commit record reached the
    // file, the guarded fsync never ran, the process is gone.
    let cfg0 = shard_configs(&parent, 2).into_iter().next().unwrap();
    let path0 = shard_store_path(&dest, 0, &cfg0.topics);
    {
        let mut store = Store::create(&path0).unwrap();
        CollectorSink::begin(&mut store, &cfg0).unwrap();
        faultpoint::arm("store.commit", 1);
        let mut died = false;
        'plan: for (snapshot, &date) in cfg0.schedule.dates().iter().enumerate() {
            for &topic in &cfg0.topics {
                if h::commit_one(&mut store, &cfg0, topic, snapshot, date, 3).is_err() {
                    died = true;
                    break 'plan;
                }
            }
        }
        assert!(died, "fault point never tripped");
        faultpoint::reset();
    }

    // `collect --shards 2 --resume`: reopen the shard store, skip the
    // pairs already on disk, commit the rest, finish.
    {
        let mut store = Store::open_or_create(&path0).unwrap();
        h::commit_pairs(&mut store, &cfg0, 3);
        CollectorSink::finish(&mut store, &[], 0).unwrap();
        assert!(store.complete());
    }

    let shard_paths = vec![
        path0,
        h::build_topic_shard(&dest, &parent, 2, 1, 3),
        h::build_finish_shard(&dest, &parent, 2, 3),
    ];
    let report = merge_shards(&dest, &shard_paths).unwrap();
    assert_eq!(report.pairs_merged, 4);
    assert_eq!(std::fs::read(&dest).unwrap(), reference);
}

#[test]
fn torn_shard_tail_recovers_and_merges_identically() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-shard-torn");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 4);
    let dest = dir.file("merged.yts");

    let cfg0 = shard_configs(&parent, 2).into_iter().next().unwrap();
    let path0 = shard_store_path(&dest, 0, &cfg0.topics);
    {
        let mut store = Store::create(&path0).unwrap();
        h::commit_pairs(&mut store, &cfg0, 4);
    }
    // The kill landed mid-write: the shard's last frame is torn.
    tear(&path0, 3);
    {
        let mut store = Store::open_or_create(&path0).unwrap();
        assert!(store.recovered_bytes() > 0, "torn tail went unnoticed");
        // Resume re-commits the pair the torn frame lost.
        h::commit_pairs(&mut store, &cfg0, 4);
        CollectorSink::finish(&mut store, &[], 0).unwrap();
        assert!(store.complete());
    }

    let shard_paths = vec![
        path0,
        h::build_topic_shard(&dest, &parent, 2, 1, 4),
        h::build_finish_shard(&dest, &parent, 2, 4),
    ];
    merge_shards(&dest, &shard_paths).unwrap();
    assert_eq!(std::fs::read(&dest).unwrap(), reference);
}

#[test]
fn crash_during_shard_finish_resumes_to_identical_merged_bytes() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-shard-finish");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 9);
    let dest = dir.file("merged.yts");

    let cfg0 = shard_configs(&parent, 2).into_iter().next().unwrap();
    let path0 = shard_store_path(&dest, 0, &cfg0.topics);
    {
        let mut store = Store::create(&path0).unwrap();
        h::commit_pairs(&mut store, &cfg0, 9);
        faultpoint::arm("store.finish", 1);
        CollectorSink::finish(&mut store, &[], 0).unwrap_err();
        faultpoint::reset();
    }
    // The kill also tore the in-flight End frame; rollback discards it
    // and the resumed shard re-finishes.
    tear(&path0, 2);
    {
        let mut store = Store::open_or_create(&path0).unwrap();
        assert!(!store.complete());
        h::commit_pairs(&mut store, &cfg0, 9); // all already on disk
        CollectorSink::finish(&mut store, &[], 0).unwrap();
        assert!(store.complete());
    }

    let shard_paths = vec![
        path0,
        h::build_topic_shard(&dest, &parent, 2, 1, 9),
        h::build_finish_shard(&dest, &parent, 2, 9),
    ];
    merge_shards(&dest, &shard_paths).unwrap();
    assert_eq!(std::fs::read(&dest).unwrap(), reference);
}

/// The heart of the matrix: kill the merge at *every* commit boundary
/// (nth = 1 is effectively pre-merge — nothing but the manifest made it
/// to the tmp) and verify each resumed merge converges to the
/// single-sink bytes.
#[test]
fn merge_crash_at_every_commit_boundary_resumes_byte_identically() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-merge-matrix");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 5);
    let shard_paths = h::build_shards(&dir.file("shards.yts"), &parent, 2, 5);
    let pairs = 4usize;

    for nth in 1..=pairs {
        let dest = dir.file(&format!("merged-{nth}.yts"));
        faultpoint::arm("store.commit", nth as u64);
        let err = merge_shards(&dest, &shard_paths).unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "nth={nth}: {err}"
        );
        assert!(
            !dest.exists(),
            "nth={nth}: dest must not appear before the rename"
        );
        faultpoint::reset();

        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert!(report.resumed, "nth={nth}");
        assert_eq!(report.pairs_total, pairs, "nth={nth}");
        // The crashed commit's record reached the tmp file before the
        // kill, so it survives rollback; resume merges what follows.
        assert_eq!(report.pairs_merged, pairs - nth, "nth={nth}");
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            reference,
            "resumed merge diverges from single-sink at nth={nth}"
        );
    }
}

#[test]
fn merge_crash_with_torn_tmp_tail_rolls_back_and_resumes_byte_identically() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-merge-torn");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 6);
    let shard_paths = h::build_shards(&dir.file("shards.yts"), &parent, 2, 6);

    let dest = dir.file("merged.yts");
    faultpoint::arm("store.commit", 2);
    merge_shards(&dest, &shard_paths).unwrap_err();
    faultpoint::reset();

    // This kill also tore the in-flight Commit frame: the tmp ends
    // mid-record. Rollback must cut back to the last durable commit and
    // the resumed merge must re-commit the lost pair.
    let tmp = merging_tmp(&dest);
    assert!(tmp.exists(), "interrupted merge left no tmp");
    tear(&tmp, 5);

    let report = merge_shards(&dest, &shard_paths).unwrap();
    assert!(report.resumed);
    assert_eq!(report.pairs_merged, 3); // pair 1 survived; 2..4 redone
    assert_eq!(std::fs::read(&dest).unwrap(), reference);
}

#[test]
fn merge_crash_at_phase_boundaries_resumes_byte_identically() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-merge-phases");
    let parent = h::plan(vec![Topic::Higgs, Topic::Blm], 2);
    let reference = h::build_reference(&dir.file("reference.yts"), &parent, 8);
    let shard_paths = h::build_shards(&dir.file("shards.yts"), &parent, 2, 8);

    // Pre-finish: every pair merged, the channel fold never ran.
    {
        let dest = dir.file("merged-pre-finish.yts");
        faultpoint::arm("merge.pre-finish", 1);
        let err = merge_shards(&dest, &shard_paths).unwrap_err();
        assert!(err.to_string().contains("merge.pre-finish"), "{err}");
        faultpoint::reset();
        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert!(report.resumed);
        assert_eq!(report.pairs_merged, 0);
        assert_eq!(std::fs::read(&dest).unwrap(), reference);
    }

    // Mid-finish: the End record reached the tmp, its fsync never ran.
    {
        let dest = dir.file("merged-mid-finish.yts");
        faultpoint::arm("store.finish", 1);
        let err = merge_shards(&dest, &shard_paths).unwrap_err();
        assert!(err.to_string().contains("store.finish"), "{err}");
        faultpoint::reset();
        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert!(report.resumed);
        assert_eq!(std::fs::read(&dest).unwrap(), reference);
    }

    // Mid-finish with a torn End frame: rollback discards it and the
    // resumed merge re-runs the finish fold.
    {
        let dest = dir.file("merged-torn-finish.yts");
        faultpoint::arm("store.finish", 1);
        merge_shards(&dest, &shard_paths).unwrap_err();
        faultpoint::reset();
        tear(&merging_tmp(&dest), 3);
        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert!(report.resumed);
        assert_eq!(std::fs::read(&dest).unwrap(), reference);
    }

    // Post-merge, pre-rename: the tmp is complete and durable; only the
    // rename into place is missing. Resume must publish it untouched.
    {
        let dest = dir.file("merged-pre-rename.yts");
        faultpoint::arm("merge.pre-rename", 1);
        let err = merge_shards(&dest, &shard_paths).unwrap_err();
        assert!(err.to_string().contains("merge.pre-rename"), "{err}");
        faultpoint::reset();
        let tmp = merging_tmp(&dest);
        assert!(tmp.exists() && !dest.exists());
        let report = merge_shards(&dest, &shard_paths).unwrap();
        assert!(report.resumed);
        assert_eq!(report.pairs_merged, 0);
        assert!(!tmp.exists() && dest.exists());
        assert_eq!(std::fs::read(&dest).unwrap(), reference);
    }
}

/// End to end through the real pipeline: a worker of a scheduler-driven
/// sharded run dies mid-commit, the run reports an incomplete drain,
/// `--resume` completes it, and the merge still reproduces the
/// sequential single-sink bytes.
#[test]
fn scheduler_crash_resume_merge_matches_sequential_end_to_end() {
    let _guard = exclusive();
    let dir = TempDir::new("crash-sched-e2e");
    let config = h::plan(vec![Topic::Higgs, Topic::Blm], 2);

    let seq_path = dir.file("sequential.yts");
    {
        let (client, _service) = test_client(SCALE);
        let mut store = Store::create(&seq_path).unwrap();
        Collector::new(&client, config.clone())
            .run_with_sink(&mut store)
            .unwrap();
        assert!(store.complete());
    }
    let seq_bytes = std::fs::read(&seq_path).unwrap();

    let dest = dir.file("sharded.yts");
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);
    let sched = SchedulerConfig::new(2, KEY);

    // One shard's second commit dies; its scheduler drains gracefully
    // and the whole run reports incomplete.
    faultpoint::arm("store.commit", 2);
    let report = run_sharded(
        &factory,
        &config,
        &sched,
        2,
        Arc::new(QuotaGovernor::unlimited()),
        &dest,
        false,
    )
    .unwrap();
    assert!(!report.completed(), "{report:?}");
    faultpoint::reset();

    // `collect --shards 2 --resume` picks the run back up.
    let report = run_sharded(
        &factory,
        &config,
        &sched,
        2,
        Arc::new(QuotaGovernor::unlimited()),
        &dest,
        true,
    )
    .unwrap();
    assert!(report.completed(), "{report:?}");

    let shard_paths = discover_shard_paths(&dest).unwrap();
    merge_shards(&dest, &shard_paths).unwrap();
    assert_eq!(std::fs::read(&dest).unwrap(), seq_bytes);
}
