//! Distributed-collection equivalence: a coordinator plus N workers —
//! in process or over loopback HTTP — must produce a merged store
//! byte-identical to a crash-free single-sink collection of the same
//! plan, for every worker count, with every task executed and
//! committed exactly once (checked through the store's quota ledger:
//! a double-executed pair would double its recorded quota delta).
//!
//! Two layers of coverage:
//!
//! * the scheduler-driven tests run real workers ([`run_worker`])
//!   against an in-process platform, so the reference and the
//!   distributed run observe the same deterministic API and any byte
//!   divergence is the distribution layer's fault;
//! * the synthetic tests drive the same wire protocol (lease → chunked
//!   ship → commit, over a real loopback server) with store-layer
//!   payloads from the shared shard harness, pinning the coordinator's
//!   lease distribution, installation, and merge for every topology
//!   without an API in the loop.

mod shard_harness;

use shard_harness as h;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use ytaudit::core::testutil::test_client;
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::dist::protocol::{
    LeaseRequest, ShipBegin, ShipChunk, ShipCommit, ERROR_HEADER, LEASE_PATH, SHIP_BEGIN_PATH,
    SHIP_CHUNK_PATH, SHIP_COMMIT_PATH,
};
use ytaudit::dist::{
    run_worker, Coordinator, CoordinatorChannel, DistError, DistErrorKind, HttpChannel,
    LeaseGrant, LeaseReply, LocalChannel, ShipReply, WorkerConfig, WorkerReport,
};
use ytaudit::net::{Request, Server, ServerConfig};
use ytaudit::platform::clock::RealClock;
use ytaudit::sched::{InProcessFactory, SchedulerConfig};
use ytaudit::store::crc::crc32;
use ytaudit::store::{Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";
const TTL: Duration = Duration::from_secs(60);
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Folds the CI-rotated property seed (`YTAUDIT_PROP_SEED`, numeric or
/// FNV-hashed commit SHA) into a test's fixed payload seed, matching
/// the shard-equivalence suite's convention: every push explores fresh
/// synthetic payloads while any failure reproduces from the logged
/// seed.
fn prop_seed(fixed: u64) -> u64 {
    match std::env::var("YTAUDIT_PROP_SEED") {
        Ok(raw) => {
            let rotated = raw.parse().unwrap_or_else(|_| {
                raw.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                })
            });
            rotated ^ fixed
        }
        Err(_) => fixed,
    }
}

fn plan() -> CollectorConfig {
    h::plan(vec![Topic::Higgs, Topic::Blm], 2)
}

/// The single-sink ground truth: one sequential collector into one
/// store, no distribution anywhere.
fn reference(dir: &TempDir, config: &CollectorConfig) -> Vec<u8> {
    let path = dir.file("reference.yts");
    let (client, _service) = test_client(SCALE);
    let mut store = Store::create(&path).unwrap();
    Collector::new(&client, config.clone())
        .run_with_sink(&mut store)
        .unwrap();
    assert!(store.complete());
    drop(store);
    std::fs::read(&path).unwrap()
}

fn coordinator(config: &CollectorConfig, dest: &std::path::Path) -> Arc<Coordinator> {
    Arc::new(Coordinator::new(config, 2, dest, TTL, Arc::new(RealClock::default())).unwrap())
}

/// Runs `n` workers to completion over per-worker channels built by
/// `channel`, all sharing one in-process platform.
fn run_workers(
    dir: &TempDir,
    n: usize,
    tag: &str,
    channel: impl Fn() -> Box<dyn CoordinatorChannel> + Sync,
) -> Vec<WorkerReport> {
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let workdir: PathBuf = dir.file(&format!("work-{tag}-{i}"));
                let factory = &factory;
                let channel = &channel;
                scope.spawn(move || {
                    let chan = channel();
                    let cfg = WorkerConfig::new(
                        format!("worker-{i}"),
                        workdir,
                        SchedulerConfig::new(2, KEY),
                    );
                    run_worker(chan.as_ref(), factory, &cfg).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Every range executed and committed exactly once: the workers'
/// committed counts sum to the range total with no duplicates, and the
/// merged store's quota ledger matches the single-sink ledger to the
/// unit (a re-executed pair would inflate it).
fn assert_exactly_once(
    coord: &Coordinator,
    reports: &[WorkerReport],
    merged: &std::path::Path,
    reference_path: &std::path::Path,
) {
    let total = coord.plan().total_ranges();
    let committed: u32 = reports.iter().map(|r| r.committed).sum();
    let duplicates: u32 = reports.iter().map(|r| r.duplicates).sum();
    assert_eq!(committed, total, "reports: {reports:?}");
    assert_eq!(duplicates, 0, "reports: {reports:?}");
    assert_eq!(coord.counters().shards_received, total as u64);
    assert_eq!(coord.counters().duplicate_ships, 0);

    let merged = Store::open(merged).unwrap();
    let single = Store::open(reference_path).unwrap();
    assert_eq!(merged.quota_units_total(), single.quota_units_total());
    assert_eq!(merged.final_quota_delta(), single.final_quota_delta());
    assert_eq!(merged.committed_pairs(), single.committed_pairs());
}

#[test]
fn in_process_workers_merge_byte_identical_to_single_sink() {
    let dir = TempDir::new("dist-equiv-local");
    let config = plan();
    let reference_bytes = reference(&dir, &config);

    for n in WORKER_COUNTS {
        let dest = dir.file(&format!("dist-local-{n}.yts"));
        let coord = coordinator(&config, &dest);
        let reports = run_workers(&dir, n, &format!("local-{n}"), || {
            Box::new(LocalChannel::new(Arc::clone(&coord)))
        });
        assert!(coord.all_committed(), "n={n}");
        coord.merge().unwrap();
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            reference_bytes,
            "in-process n={n}: merged store diverges from single-sink"
        );
        assert_exactly_once(&coord, &reports, &dest, &dir.file("reference.yts"));
    }
}

#[test]
fn loopback_http_workers_merge_byte_identical_to_single_sink() {
    let dir = TempDir::new("dist-equiv-http");
    let config = plan();
    let reference_bytes = reference(&dir, &config);

    for n in WORKER_COUNTS {
        let dest = dir.file(&format!("dist-http-{n}.yts"));
        let coord = coordinator(&config, &dest);
        let handler: Arc<dyn ytaudit::net::Handler> = Arc::clone(&coord) as _;
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let base_url = server.base_url();
        let reports = run_workers(&dir, n, &format!("http-{n}"), || {
            Box::new(HttpChannel::new(&base_url).unwrap())
        });
        server.shutdown();
        assert!(coord.all_committed(), "n={n}");
        coord.merge().unwrap();
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            reference_bytes,
            "loopback n={n}: merged store diverges from single-sink"
        );
        assert_exactly_once(&coord, &reports, &dest, &dir.file("reference.yts"));
    }
}

// ---------------------------------------------------------------------
// Synthetic wire-level coverage (no API, no scheduler): a hand-rolled
// mini-worker speaks the dist protocol verbatim and ships store-layer
// shard payloads whose single-sink reference is known byte-for-byte.
// ---------------------------------------------------------------------

/// One POST over the dist wire; non-2xx responses become typed errors
/// via [`ERROR_HEADER`], exactly like the real worker's transport.
fn post(chan: &dyn CoordinatorChannel, path: &str, body: Vec<u8>) -> Result<Vec<u8>, DistError> {
    let req = Request::post(path, body).with_header("content-type", "application/octet-stream");
    let resp = chan
        .call(req)
        .map_err(|e| DistError::new(DistErrorKind::Internal, e.to_string()))?;
    if resp.status.is_success() {
        return Ok(resp.body);
    }
    let kind = resp
        .headers
        .get(ERROR_HEADER)
        .and_then(DistErrorKind::from_key)
        .unwrap_or(DistErrorKind::Internal);
    Err(DistError::new(
        kind,
        String::from_utf8_lossy(&resp.body).into_owned(),
    ))
}

/// Ships `data` for a granted range: begin, small CRC'd chunks, commit.
fn wire_ship(
    chan: &dyn CoordinatorChannel,
    grant: &LeaseGrant,
    data: &[u8],
) -> Result<ShipReply, DistError> {
    let total_len = data.len() as u64;
    let total_crc = crc32(data);
    let begin = ShipReply::decode(&post(
        chan,
        SHIP_BEGIN_PATH,
        ShipBegin {
            range: grant.range,
            token: grant.token,
            total_len,
            total_crc,
        }
        .encode(),
    )?)?;
    if begin == ShipReply::Duplicate {
        return Ok(ShipReply::Duplicate);
    }
    let mut offset = 0usize;
    for chunk in data.chunks(16 * 1024) {
        post(
            chan,
            SHIP_CHUNK_PATH,
            ShipChunk {
                range: grant.range,
                token: grant.token,
                offset: offset as u64,
                crc: crc32(chunk),
                bytes: chunk.to_vec(),
            }
            .encode(),
        )?;
        offset += chunk.len();
    }
    ShipReply::decode(&post(
        chan,
        SHIP_COMMIT_PATH,
        ShipCommit {
            range: grant.range,
            token: grant.token,
            total_len,
            total_crc,
        }
        .encode(),
    )?)
}

/// A protocol-only worker: lease, ship the pre-built shard for the
/// granted range, repeat until the coordinator reports the run done.
fn synthetic_worker(
    chan: &dyn CoordinatorChannel,
    name: &str,
    shards: &[Vec<u8>],
) -> WorkerReport {
    let mut report = WorkerReport::default();
    loop {
        let reply = post(
            chan,
            LEASE_PATH,
            LeaseRequest {
                worker: name.to_string(),
            }
            .encode(),
        )
        .unwrap();
        match LeaseReply::decode(&reply).unwrap() {
            LeaseReply::Done => return report,
            LeaseReply::Wait => {
                report.waits += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            LeaseReply::Grant(grant) => {
                report.leases += 1;
                match wire_ship(chan, &grant, &shards[grant.range as usize]).unwrap() {
                    ShipReply::Accepted => report.committed += 1,
                    ShipReply::Duplicate => report.duplicates += 1,
                }
            }
        }
    }
}

/// Builds the staged shard payloads for a 2-way split (range order:
/// topic 0, topic 1, finish) and the matching single-sink reference.
fn synthetic_fixture(dir: &TempDir, config: &CollectorConfig, seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let reference = h::build_reference(&dir.file("synthetic-reference.yts"), config, seed);
    let staged = h::build_shards(&dir.file("staging.yts"), config, 2, seed);
    let shards = staged
        .iter()
        .map(|p| std::fs::read(p).unwrap())
        .collect();
    (reference, shards)
}

#[test]
fn synthetic_shippers_over_loopback_merge_byte_identical_for_every_topology() {
    let dir = TempDir::new("dist-equiv-synthetic");
    let config = plan();
    let (reference_bytes, shards) = synthetic_fixture(&dir, &config, prop_seed(7));

    for n in WORKER_COUNTS {
        let dest = dir.file(&format!("synthetic-{n}.yts"));
        let coord = coordinator(&config, &dest);
        let handler: Arc<dyn ytaudit::net::Handler> = Arc::clone(&coord) as _;
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let base_url = server.base_url();

        let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let base_url = &base_url;
                    let shards = &shards;
                    scope.spawn(move || {
                        let chan = HttpChannel::new(base_url).unwrap();
                        synthetic_worker(&chan, &format!("synthetic-{i}"), shards)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        server.shutdown();

        assert!(coord.all_committed(), "n={n}");
        let total = coord.plan().total_ranges();
        let committed: u32 = reports.iter().map(|r| r.committed).sum();
        assert_eq!(committed, total, "n={n}: {reports:?}");
        assert_eq!(coord.counters().shards_received, total as u64, "n={n}");
        assert_eq!(coord.counters().duplicate_ships, 0, "n={n}");

        coord.merge().unwrap();
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            reference_bytes,
            "synthetic n={n}: merged store diverges from single-sink"
        );
    }
}

#[test]
fn synthetic_shippers_in_process_merge_byte_identical() {
    let dir = TempDir::new("dist-equiv-synthetic-local");
    let config = plan();
    let (reference_bytes, shards) = synthetic_fixture(&dir, &config, prop_seed(12));

    let dest = dir.file("synthetic-local.yts");
    let coord = coordinator(&config, &dest);
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let coord = Arc::clone(&coord);
                let shards = &shards;
                scope.spawn(move || {
                    let chan = LocalChannel::new(coord);
                    synthetic_worker(&chan, &format!("local-{i}"), shards)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(coord.all_committed());
    let committed: u32 = reports.iter().map(|r| r.committed).sum();
    assert_eq!(committed, coord.plan().total_ranges());
    coord.merge().unwrap();
    assert_eq!(std::fs::read(&dest).unwrap(), reference_bytes);
}
