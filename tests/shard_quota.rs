//! Quota-governor invariant for sharded collection: every shard pays
//! its traffic through ONE shared token bucket, so the total quota a
//! `collect --shards N` run admits equals the single-scheduler total
//! exactly — and a crashed run never over-admits relative to what its
//! shard stores durably banked, with the resume paying precisely the
//! difference.

mod shard_harness;

use shard_harness as h;
use std::sync::{Arc, Mutex, MutexGuard};
use ytaudit::core::shard::shard_configs;
use ytaudit::core::testutil::test_client;
use ytaudit::platform::faultpoint;
use ytaudit::sched::{run_sharded, InProcessFactory, QuotaGovernor, Scheduler, SchedulerConfig};
use ytaudit::store::{discover_shard_paths, merge_shards, shard_store_path, Store, TempDir};
use ytaudit::types::Topic;

const SCALE: f64 = 0.08;
const KEY: &str = "research-key";

// One test here arms faultpoints (process-global registry), so every
// test serializes on the same lock to keep armings from leaking into
// unrelated commits.
static SERIAL: Mutex<()> = Mutex::new(());

struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faultpoint::reset();
    }
}

fn exclusive() -> FaultGuard {
    let lock = SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultpoint::reset();
    FaultGuard { _lock: lock }
}

fn config() -> ytaudit::core::CollectorConfig {
    h::plan(vec![Topic::Higgs, Topic::Blm], 2)
}

/// Runs the single-scheduler baseline into `path` with its own
/// governor and returns the admitted-units ledger.
fn single_baseline(path: &std::path::Path) -> u64 {
    let governor = Arc::new(QuotaGovernor::unlimited());
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);
    let mut store = Store::create(path).unwrap();
    let report = Scheduler::new(&factory, config(), SchedulerConfig::new(2, KEY))
        .with_shared_governor(Arc::clone(&governor))
        .run(&mut store)
        .unwrap();
    assert!(report.completed(), "{:?}", report.outcome);
    assert!(store.complete());
    let admitted = governor.units_admitted();
    assert!(admitted > 0);
    assert_eq!(
        report.quota_units, admitted,
        "scheduler quota total diverges from the governor ledger"
    );
    admitted
}

#[test]
fn sharded_runs_admit_exactly_the_single_scheduler_quota() {
    let _guard = exclusive();
    let dir = TempDir::new("shard-quota-equal");
    let single_admitted = single_baseline(&dir.file("single.yts"));

    for shards in [1usize, 2, 4] {
        let governor = Arc::new(QuotaGovernor::unlimited());
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let dest = dir.file(&format!("sharded-{shards}.yts"));
        let report = run_sharded(
            &factory,
            &config(),
            &SchedulerConfig::new(2, KEY),
            shards,
            Arc::clone(&governor),
            &dest,
            false,
        )
        .unwrap();
        assert!(report.completed(), "shards={shards}: {report:?}");
        assert_eq!(
            governor.units_admitted(),
            single_admitted,
            "shards={shards}: shared-bucket ledger diverges from single-scheduler total"
        );
        assert_eq!(report.quota_units(), single_admitted, "shards={shards}");
    }
}

/// The same equality through a real (rate-limited) token bucket: the
/// rate is high enough never to block the test, but every admission
/// goes through bucket accounting instead of the unlimited fast path.
#[test]
fn rate_limited_shared_bucket_admits_the_same_total() {
    let _guard = exclusive();
    let dir = TempDir::new("shard-quota-rate");
    let single_admitted = single_baseline(&dir.file("single.yts"));

    let governor = Arc::new(QuotaGovernor::per_second(1_000_000.0, 1_000_000.0));
    let (_client, service) = test_client(SCALE);
    let factory = InProcessFactory::new(service);
    let dest = dir.file("sharded.yts");
    let report = run_sharded(
        &factory,
        &config(),
        &SchedulerConfig::new(2, KEY),
        2,
        Arc::clone(&governor),
        &dest,
        false,
    )
    .unwrap();
    assert!(report.completed(), "{report:?}");
    assert_eq!(governor.units_admitted(), single_admitted);
}

/// The drain-side half of the invariant: a sharded run killed
/// mid-commit admits no more than the full plan costs and at least what
/// its shard stores durably banked; the resume pays exactly the
/// remainder, and the merged bytes still match the single-sink store.
#[test]
fn crashed_drain_never_over_admits_and_resume_pays_the_difference() {
    let _guard = exclusive();
    let dir = TempDir::new("shard-quota-crash");
    let single_path = dir.file("single.yts");
    let single_admitted = single_baseline(&single_path);

    let dest = dir.file("sharded.yts");
    let gov_crash = Arc::new(QuotaGovernor::unlimited());
    {
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        faultpoint::arm("store.commit", 1);
        let report = run_sharded(
            &factory,
            &config(),
            &SchedulerConfig::new(2, KEY),
            2,
            Arc::clone(&gov_crash),
            &dest,
            false,
        )
        .unwrap();
        assert!(!report.completed(), "{report:?}");
        faultpoint::reset();
    }

    // What the crashed run durably banked across its shard stores…
    let parent = config();
    let banked: u64 = shard_configs(&parent, 2)
        .iter()
        .enumerate()
        .map(|(index, cfg)| shard_store_path(&dest, index, &cfg.topics))
        .filter(|path| path.exists())
        .map(|path| Store::open(&path).unwrap().stats().quota_units)
        .sum();
    // …was all admitted first (commits only land after their calls
    // cleared the governor), and draining abandons work rather than
    // admitting past the plan's total cost.
    assert!(
        gov_crash.units_admitted() >= banked,
        "banked quota was never admitted"
    );
    assert!(
        gov_crash.units_admitted() <= single_admitted,
        "drain over-admitted: {} > {single_admitted}",
        gov_crash.units_admitted()
    );

    // The resume pays exactly the un-banked remainder.
    let gov_resume = Arc::new(QuotaGovernor::unlimited());
    {
        let (_client, service) = test_client(SCALE);
        let factory = InProcessFactory::new(service);
        let report = run_sharded(
            &factory,
            &config(),
            &SchedulerConfig::new(2, KEY),
            2,
            Arc::clone(&gov_resume),
            &dest,
            true,
        )
        .unwrap();
        assert!(report.completed(), "{report:?}");
    }
    assert_eq!(
        gov_resume.units_admitted(),
        single_admitted - banked,
        "resume did not pay exactly the un-banked remainder"
    );

    // And the crash + resume + merge still reproduces the single-sink
    // bytes (the scheduler baseline commits in plan order, so its store
    // doubles as the byte reference).
    let shard_paths = discover_shard_paths(&dest).unwrap();
    merge_shards(&dest, &shard_paths).unwrap();
    assert_eq!(
        std::fs::read(&dest).unwrap(),
        std::fs::read(&single_path).unwrap()
    );
}
