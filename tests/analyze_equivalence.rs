//! Batch/streaming analysis equivalence: one numeric code path.
//!
//! `ytaudit analyze` and `ytaudit analyze --follow` both fold `(topic,
//! snapshot)` pairs into the same streaming accumulators
//! (`ytaudit::core::Analyzer`); the batch entry point is literally
//! "fold everything, then finish". This suite pins that equivalence at
//! the strongest level — byte-identical canonical report JSON — across
//! every fold granularity a live follow can encounter:
//!
//! * all pairs at once (a complete store, single poll);
//! * one pair per poll (the steady-state tail of a live collection);
//! * chunked polls with a checkpoint encode/decode restart mid-stream;
//! * a writer and a follower running concurrently on the real file.
//!
//! Payloads are a pure function of `(seed, topic, snapshot)`, with the
//! seed taken from `YTAUDIT_PROP_SEED` (CI rotates it per commit) so
//! every run exercises a fresh dataset without losing reproducibility.
//! Golden-report fixtures under `tests/fixtures/` use fixed seeds
//! instead: they exist to turn silent numeric drift into a red diff, and
//! `YTAUDIT_REGEN_FIXTURES=1` rewrites them when a change is deliberate.

use std::collections::BTreeSet;
use std::path::Path;
use ytaudit::core::dataset::{
    ChannelInfo, CommentFetchError, CommentRecord, CommentsSnapshot, HourlyResult, TopicSnapshot,
    VideoInfo,
};
use ytaudit::core::{Analyzer, CollectorConfig, CollectorSink, FoldInput, TopicCommit};
use ytaudit::store::{follow_analyze, FollowOptions, Store, StoreError, TailEvent, TailReader, TempDir};
use ytaudit::types::{ChannelId, Timestamp, Topic, VideoId};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The suite-wide dataset seed; CI rotates it via `YTAUDIT_PROP_SEED`
/// (numeric, or an FNV-hashed commit SHA — the shard-equivalence
/// convention), so every push analyzes fresh synthetic collections.
fn env_seed() -> u64 {
    match std::env::var("YTAUDIT_PROP_SEED") {
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            raw.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            })
        }),
        Err(_) => 0xA11A_FACE,
    }
}

/// A fresh generator for one pair — pure in `(seed, topic, snapshot)`,
/// never in commit order or shard identity.
fn pair_rng(seed: u64, topic: Topic, snapshot: usize) -> Rng {
    let salt = (topic.index() as u64) << 32 | snapshot as u64;
    Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt | 1)
}

fn vid(topic: Topic, n: u64) -> VideoId {
    VideoId::new(format!("vid-{}-{n:04}", topic.key()))
}

fn video_info(topic: Topic, n: u64) -> VideoInfo {
    VideoInfo {
        id: vid(topic, n),
        channel_id: ChannelId::new(format!("ch-{:03}", n % 5)),
        published_at: Timestamp::from_ymd(2025, 1, 1 + (n % 28) as u32).unwrap(),
        duration_secs: 45 + n % 1200,
        is_sd: n % 3 == 0,
        views: n.wrapping_mul(137) % 1_000_000,
        likes: n.wrapping_mul(7) % 10_000,
        comments: n % 500,
    }
}

/// The synthetic results for one `(topic, snapshot)` pair: a varying
/// number of non-empty hours, IDs drawn from a small per-topic pool (so
/// snapshots genuinely overlap and attrite), a deterministic
/// metadata-coverage subset, and first/last-snapshot comments.
fn payload(
    cfg: &CollectorConfig,
    topic: Topic,
    snapshot: usize,
    date: Timestamp,
    seed: u64,
) -> (TopicSnapshot, Vec<VideoInfo>, Option<CommentsSnapshot>) {
    let mut rng = pair_rng(seed, topic, snapshot);
    const HOURS: [u32; 6] = [0, 3, 7, 11, 16, 21];
    let n_hours = 1 + rng.below(4) as usize;
    let start = rng.below(3) as usize;
    let mut hours = Vec::new();
    let mut drawn = BTreeSet::new();
    for h in 0..n_hours {
        let ids: Vec<u64> = (0..1 + rng.below(5)).map(|_| rng.below(40)).collect();
        drawn.extend(ids.iter().copied());
        hours.push(HourlyResult {
            hour: HOURS[(start + h) % HOURS.len()],
            video_ids: ids.into_iter().map(|n| vid(topic, n)).collect(),
            total_results: 1_000 + rng.below(100_000),
        });
    }
    let meta_ids: Vec<u64> = if cfg.fetch_metadata {
        drawn.iter().copied().filter(|n| n % 3 != 0).collect()
    } else {
        Vec::new()
    };
    let data = TopicSnapshot {
        hours,
        meta_returned: meta_ids.iter().map(|&n| vid(topic, n)).collect(),
    };
    let videos: Vec<VideoInfo> = meta_ids.iter().map(|&n| video_info(topic, n)).collect();
    let comments = cfg.comments_at(snapshot).then(|| CommentsSnapshot {
        comments: (0..rng.below(4))
            .map(|i| CommentRecord {
                id: format!("c-{}-{snapshot}-{i}", topic.key()),
                video_id: vid(topic, rng.below(40)),
                is_reply: rng.below(3) == 0,
                published_at: date,
            })
            .collect(),
        fetch_errors: if rng.below(4) == 0 {
            vec![CommentFetchError {
                video_id: vid(topic, rng.below(40)),
                error: "commentThreads.list: video deleted".to_string(),
            }]
        } else {
            Vec::new()
        },
    });
    (data, videos, comments)
}

fn channels(cfg: &CollectorConfig) -> Vec<ChannelInfo> {
    if !cfg.fetch_channels {
        return Vec::new();
    }
    (0..5)
        .map(|n| ChannelInfo {
            id: ChannelId::new(format!("ch-{n:03}")),
            published_at: Timestamp::from_ymd(2019, 3, 1 + n as u32).unwrap(),
            views: 10_000 * (n + 1),
            subscribers: 250 * (n + 1),
            video_count: 12 * (n + 1),
        })
        .collect()
}

const FINISH_DELTA: u64 = 21;

fn commit_one(store: &mut Store, cfg: &CollectorConfig, snapshot: usize, topic: Topic, seed: u64) {
    let date = cfg.schedule.dates()[snapshot];
    let (data, videos, comments) = payload(cfg, topic, snapshot, date, seed);
    let mut rng = pair_rng(seed ^ 0xDE17A, topic, snapshot);
    CollectorSink::commit_topic_snapshot(
        store,
        TopicCommit {
            topic,
            snapshot,
            date,
            data: &data,
            comments: comments.as_ref(),
            videos: &videos,
            quota_delta: 500 + rng.below(250),
        },
    )
    .unwrap();
}

/// Builds a complete synthetic store at `path` for `cfg` and `seed`.
fn build_store(path: &Path, cfg: &CollectorConfig, seed: u64) {
    let mut store = Store::create(path).unwrap();
    CollectorSink::begin(&mut store, cfg).unwrap();
    for snapshot in 0..cfg.schedule.len() {
        for &topic in &cfg.topics {
            commit_one(&mut store, cfg, snapshot, topic, seed);
        }
    }
    CollectorSink::finish(&mut store, &channels(cfg), FINISH_DELTA).unwrap();
    assert!(store.complete());
}

/// The batch side: materialize the dataset, replay it through the
/// accumulators in one call.
fn batch_json(path: &Path) -> String {
    let dataset = Store::open(path).unwrap().load_dataset().unwrap();
    Analyzer::analyze_dataset(&dataset).to_json()
}

/// Folds every tail event pending at `reader` into `state`, exactly as
/// the follow driver does.
fn drain(reader: &mut TailReader, state: &mut Option<Analyzer>) {
    reader
        .poll(|event| {
            match event {
                TailEvent::Begin(meta) => *state = Some(Analyzer::new(meta.topics)),
                TailEvent::Pair {
                    topic,
                    snapshot,
                    date,
                    data,
                    comments,
                    videos,
                    quota_delta,
                } => {
                    let analyzer = state.as_mut().expect("plan before pairs");
                    let n_topics = analyzer.topics().len() as u64;
                    let pos = analyzer
                        .topics()
                        .iter()
                        .position(|&t| t == topic)
                        .expect("topic in plan") as u64;
                    let input = FoldInput {
                        topic,
                        date,
                        data,
                        comments,
                        videos,
                        quota_delta,
                    };
                    analyzer
                        .offer(snapshot as u64 * n_topics + pos, input)
                        .unwrap();
                }
                TailEvent::End {
                    channels,
                    quota_final_delta,
                } => state.as_mut().expect("plan before end").end(channels, quota_final_delta),
            }
            Ok(())
        })
        .unwrap();
}

fn full_config(topics: Vec<Topic>, snapshots: usize) -> CollectorConfig {
    CollectorConfig {
        fetch_comments: true,
        ..CollectorConfig::quick(topics, snapshots)
    }
}

#[test]
fn complete_store_follow_matches_batch_bit_for_bit() {
    let dir = TempDir::new("eq-oneshot");
    for (i, cfg) in [
        full_config(vec![Topic::Higgs, Topic::Blm, Topic::WorldCup], 4),
        CollectorConfig::quick(vec![Topic::Brexit, Topic::Capitol], 5),
        // Search-only: no metadata, no channels, no comments.
        CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Grammys], 6)
        },
    ]
    .into_iter()
    .enumerate()
    {
        let path = dir.file(&format!("store-{i}.yts"));
        build_store(&path, &cfg, env_seed().wrapping_add(i as u64));
        let outcome = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                ..FollowOptions::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(
            outcome.report.to_json(),
            batch_json(&path),
            "config {i}: follow and batch diverged"
        );
    }
}

#[test]
fn one_pair_per_poll_matches_batch() {
    let dir = TempDir::new("eq-pairwise");
    let path = dir.file("store.yts");
    let cfg = full_config(vec![Topic::Higgs, Topic::Blm, Topic::WorldCup], 4);
    let seed = env_seed().wrapping_add(10);

    let mut store = Store::create(&path).unwrap();
    let mut reader = TailReader::open(&path).unwrap();
    let mut state = None;
    CollectorSink::begin(&mut store, &cfg).unwrap();
    drain(&mut reader, &mut state);
    for snapshot in 0..cfg.schedule.len() {
        for &topic in &cfg.topics {
            commit_one(&mut store, &cfg, snapshot, topic, seed);
            drain(&mut reader, &mut state);
        }
    }
    CollectorSink::finish(&mut store, &channels(&cfg), FINISH_DELTA).unwrap();
    drain(&mut reader, &mut state);
    drop(store);

    let analyzer = state.expect("collection seen");
    assert!(analyzer.ended());
    assert_eq!(analyzer.folded_pairs(), 12);
    assert_eq!(analyzer.finish().to_json(), batch_json(&path));
}

#[test]
fn chunked_polls_with_a_checkpoint_restart_match_batch() {
    let dir = TempDir::new("eq-chunked");
    let path = dir.file("store.yts");
    let cfg = full_config(vec![Topic::Higgs, Topic::Blm, Topic::WorldCup], 4);
    let seed = env_seed().wrapping_add(20);

    let mut store = Store::create(&path).unwrap();
    let mut reader = TailReader::open(&path).unwrap();
    let mut state = None;
    CollectorSink::begin(&mut store, &cfg).unwrap();
    let mut since_poll = 0;
    for snapshot in 0..cfg.schedule.len() {
        for &topic in &cfg.topics {
            commit_one(&mut store, &cfg, snapshot, topic, seed);
            since_poll += 1;
            if since_poll == 3 {
                drain(&mut reader, &mut state);
                since_poll = 0;
            }
            if let Some(analyzer) = state.take() {
                // A full process restart between chunks: serialize the
                // accumulators, drop everything, decode, re-read the log
                // from the top (the watermark drops the replayed prefix).
                let bytes = analyzer.encode_state();
                let mut restored = Some(Analyzer::decode_state(&bytes).unwrap());
                let mut fresh = TailReader::open(&path).unwrap();
                drain(&mut fresh, &mut restored);
                reader = fresh;
                state = restored;
            }
        }
    }
    CollectorSink::finish(&mut store, &channels(&cfg), FINISH_DELTA).unwrap();
    drain(&mut reader, &mut state);
    drop(store);

    let analyzer = state.expect("collection seen");
    assert_eq!(analyzer.folded_pairs(), 12);
    assert_eq!(analyzer.finish().to_json(), batch_json(&path));
}

#[test]
fn concurrent_collector_and_follower_match_batch() {
    let dir = TempDir::new("eq-live");
    let path = dir.file("store.yts");
    let cfg = full_config(vec![Topic::Higgs, Topic::Blm], 4);
    let seed = env_seed().wrapping_add(30);

    // The store file (with its magic) must exist before the follower
    // opens it; the writer then races the poll loop for real.
    let mut store = Store::create(&path).unwrap();
    let writer = {
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            CollectorSink::begin(&mut store, &cfg).unwrap();
            for snapshot in 0..cfg.schedule.len() {
                for &topic in &cfg.topics {
                    commit_one(&mut store, &cfg, snapshot, topic, seed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            CollectorSink::finish(&mut store, &channels(&cfg), FINISH_DELTA).unwrap();
        })
    };
    let outcome = follow_analyze(
        &path,
        &FollowOptions {
            follow: true,
            poll_ms: 5,
            ..FollowOptions::default()
        },
        |_| {},
    )
    .unwrap();
    writer.join().unwrap();
    assert_eq!(outcome.folded_pairs, 8);
    assert_eq!(outcome.report.to_json(), batch_json(&path));
}

#[test]
fn follow_memory_is_bounded_by_the_accumulators_not_the_dataset() {
    let dir = TempDir::new("eq-bounded");
    let path = dir.file("store.yts");
    // 48 pairs — an order of magnitude over the configured buffer cap.
    let cfg = full_config(Topic::ALL.to_vec(), 8);
    build_store(&path, &cfg, env_seed().wrapping_add(40));
    let cap = 2;
    let outcome = follow_analyze(
        &path,
        &FollowOptions {
            follow: false,
            max_buffered: Some(cap),
            ..FollowOptions::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(outcome.folded_pairs, 48);
    assert!(
        outcome.peak_buffered <= cap,
        "follow buffered {} pairs — it must never hold the dataset",
        outcome.peak_buffered
    );
    assert_eq!(outcome.report.to_json(), batch_json(&path));
}

/// A store that was begun but never committed a pair is the *empty*
/// collection, not an incomplete one: both batch `analyze` and a
/// one-shot `analyze` (follow=false) must emit the canonical empty
/// report for the planned topics, byte for byte — while a store with at
/// least one committed pair keeps tripping the one-shot gap check.
#[test]
fn zero_pair_store_yields_the_canonical_empty_report_in_batch_and_follow() {
    let dir = TempDir::new("eq-empty");
    let path = dir.file("store.yts");
    let cfg = full_config(vec![Topic::Higgs, Topic::Blm], 2);
    {
        let mut store = Store::create(&path).unwrap();
        CollectorSink::begin(&mut store, &cfg).unwrap();
    }

    let outcome = follow_analyze(
        &path,
        &FollowOptions {
            follow: false,
            ..FollowOptions::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(outcome.folded_pairs, 0);
    let canonical = Analyzer::new(cfg.topics.clone()).finish().to_json();
    assert_eq!(outcome.report.to_json(), canonical);
    assert_eq!(
        batch_json(&path),
        canonical,
        "batch and one-shot follow must agree on the empty collection"
    );

    // One committed pair later the store is genuinely partial again, so
    // the one-shot incompleteness check still fires.
    {
        let mut store = Store::open(&path).unwrap();
        commit_one(&mut store, &cfg, 0, Topic::Higgs, env_seed());
    }
    let partial = follow_analyze(
        &path,
        &FollowOptions {
            follow: false,
            ..FollowOptions::default()
        },
        |_| {},
    );
    assert!(matches!(partial, Err(StoreError::Plan(_))), "{partial:?}");
}

/// Golden fixtures: fixed-seed reports, committed to the repo. Any
/// change to any accumulator that shifts any reported number — even in
/// the last ulp — shows up as a fixture diff. Rewrite deliberately with
/// `YTAUDIT_REGEN_FIXTURES=1 cargo test --test analyze_equivalence`.
fn check_fixture(name: &str, cfg: &CollectorConfig, seed: u64) {
    let dir = TempDir::new("eq-golden");
    let path = dir.file("store.yts");
    build_store(&path, cfg, seed);
    let got = batch_json(&path) + "\n";
    // The follow path must agree with the fixture too, not just batch.
    let followed = follow_analyze(
        &path,
        &FollowOptions {
            follow: false,
            ..FollowOptions::default()
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(followed.report.to_json() + "\n", got);

    let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    if std::env::var("YTAUDIT_REGEN_FIXTURES").as_deref() == Ok("1") {
        std::fs::create_dir_all(fixture.parent().unwrap()).unwrap();
        std::fs::write(&fixture, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             YTAUDIT_REGEN_FIXTURES=1 cargo test --test analyze_equivalence",
            fixture.display()
        )
    });
    assert_eq!(
        got,
        want,
        "report drifted from {}; if the change is intentional, regenerate \
         with YTAUDIT_REGEN_FIXTURES=1",
        fixture.display()
    );
}

#[test]
fn golden_report_full_collection() {
    check_fixture(
        "report_full_2x3.json",
        &full_config(vec![Topic::Higgs, Topic::Blm], 3),
        7,
    );
}

#[test]
fn golden_report_search_only() {
    check_fixture(
        "report_search_only_3x4.json",
        &CollectorConfig {
            fetch_metadata: false,
            fetch_channels: false,
            ..CollectorConfig::quick(vec![Topic::Brexit, Topic::Capitol, Topic::Grammys], 4)
        },
        11,
    );
}
