//! End-to-end integration: the full REST path (HTTP server ↔ typed
//! client) must behave identically to the in-process path, because the
//! simulated service is a pure function of (corpus seed, request time).

use std::sync::Arc;
use ytaudit::api::{serve, ApiService};
use ytaudit::client::{HttpTransport, InProcessTransport, SearchQuery, YouTubeClient};
use ytaudit::core::{Collector, CollectorConfig};
use ytaudit::platform::{Platform, SimClock};
use ytaudit::types::{Timestamp, Topic};

fn service(scale: f64) -> Arc<ApiService> {
    let service = Arc::new(ApiService::new(
        Arc::new(Platform::small(scale)),
        SimClock::at_audit_start(),
    ));
    service.quota().register("key", u64::MAX / 2);
    service
}

#[test]
fn http_and_in_process_collections_are_identical() {
    let svc = service(0.15);
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");

    let in_process = YouTubeClient::new(
        Box::new(InProcessTransport::new(Arc::clone(&svc))),
        "key",
    );
    let over_http = YouTubeClient::new(
        Box::new(HttpTransport::new(server.base_url())),
        "key",
    );

    let config = CollectorConfig {
        fetch_comments: false,
        ..CollectorConfig::quick(vec![Topic::Higgs], 2)
    };
    let a = Collector::new(&in_process, config.clone())
        .run()
        .expect("in-process collection");
    let b = Collector::new(&over_http, config)
        .run()
        .expect("HTTP collection");

    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(sa.date, sb.date);
        assert_eq!(sa.topics, sb.topics, "transports must agree exactly");
    }
    assert_eq!(a.video_meta, b.video_meta);
    assert_eq!(a.channel_meta, b.channel_meta);
    server.shutdown();
}

#[test]
fn paginated_search_over_the_wire_respects_the_500_cap() {
    let svc = service(0.4);
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let client = YouTubeClient::new(Box::new(HttpTransport::new(server.base_url())), "key");
    client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
    // A full-window query returns many pages but never more than 500.
    let collection = client
        .search_all(&SearchQuery::for_topic(Topic::Blm))
        .expect("search succeeds");
    assert!(collection.items.len() > 100, "{}", collection.items.len());
    assert!(collection.items.len() <= 500);
    assert!(collection.pages <= 10);
    // Items are unique and date-descending.
    let mut seen = std::collections::HashSet::new();
    let mut previous: Option<Timestamp> = None;
    for item in &collection.items {
        assert!(seen.insert(item.id.video_id.clone()), "duplicate across pages");
        let t = Timestamp::parse_rfc3339(&item.snippet.as_ref().unwrap().published_at).unwrap();
        if let Some(p) = previous {
            assert!(t <= p, "pages must keep the global date ordering");
        }
        previous = Some(t);
    }
    server.shutdown();
}

#[test]
fn server_clock_and_header_override_interact_correctly() {
    let svc = service(0.15);
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let client = YouTubeClient::new(Box::new(HttpTransport::new(server.base_url())), "key");
    let query = SearchQuery::for_topic(Topic::Brexit).max_results(50);

    // No sim time pinned on the client: the server's clock governs.
    client.set_sim_time(None);
    let at_start = client.search_page(&query, None).expect("page");
    svc.clock().set(Timestamp::from_ymd(2025, 4, 30).unwrap());
    let at_end = client.search_page(&query, None).expect("page");
    let ids = |page: &ytaudit::api::resources::SearchListResponse| {
        page.items.iter().map(|i| i.id.video_id.clone()).collect::<Vec<_>>()
    };
    assert_ne!(ids(&at_start), ids(&at_end), "moving the server clock changes results");

    // Pinning the client's sim time overrides the server clock entirely.
    client.set_sim_time(Some(Timestamp::from_ymd(2025, 2, 9).unwrap()));
    let pinned = client.search_page(&query, None).expect("page");
    assert_eq!(ids(&at_start), ids(&pinned));
    server.shutdown();
}

#[test]
fn concurrent_collectors_share_one_server() {
    let svc = service(0.1);
    let server = serve(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let base = server.base_url();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let base = base.clone();
        handles.push(std::thread::spawn(move || {
            let client = YouTubeClient::new(Box::new(HttpTransport::new(base)), "key");
            client.set_sim_time(Some(Timestamp::from_ymd(2025, 3, 1).unwrap()));
            client
                .search_all(&SearchQuery::for_topic(Topic::Higgs))
                .expect("search succeeds")
                .video_ids()
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for other in &results[1..] {
        assert_eq!(&results[0], other, "concurrent identical queries agree");
    }
    server.shutdown();
}
