//! A minimal scratch-directory helper for tests and benches — no
//! `tempfile` dependency, unique per process and per call, removed on
//! drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root that is deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `ytaudit-store-<prefix>-<pid>-<n>` under the system temp
    /// directory.
    pub fn new(prefix: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "ytaudit-store-{prefix}-{}-{n}",
            std::process::id()
        ));
        // ytlint: allow(panics) — test-support scaffolding; an unusable
        // temp root means no test can run, so aborting is the right call
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for a file inside the directory (not created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
