//! Store errors, with a conversion into the workspace's umbrella
//! [`ytaudit_types::Error`] so the store can sit behind the
//! `core::CollectorSink` trait.

use std::fmt;
use ytaudit_types::PlatformKind;

/// Everything that can go wrong inside the snapshot store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem failure.
    Io(std::io::Error),
    /// The file is not a store, or a record failed its checksum or decode
    /// at the given byte offset.
    Corrupt {
        /// Byte offset of the offending record frame (0 for the header).
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A usage error: resuming with a different collection plan,
    /// committing a pair twice, loading from an empty store, and so on.
    Plan(String),
    /// The store was collected from a different backend than the one
    /// now asked to resume, merge, or analyze it.
    PlatformMismatch {
        /// The platform recorded in the store's Begin manifest.
        stored: PlatformKind,
        /// The platform the current operation speaks.
        requested: PlatformKind,
    },
}

impl StoreError {
    /// Builds a corruption error.
    pub fn corrupt(offset: u64, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { offset, detail } => {
                write!(f, "store corrupt at byte {offset}: {detail}")
            }
            StoreError::Plan(msg) => write!(f, "store plan error: {msg}"),
            StoreError::PlatformMismatch { stored, requested } => write!(
                f,
                "store platform mismatch: store was collected from '{stored}' but this \
                 operation targets '{requested}'; platforms cannot be mixed"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<StoreError> for ytaudit_types::Error {
    fn from(e: StoreError) -> ytaudit_types::Error {
        match e {
            StoreError::Io(io) => ytaudit_types::Error::Io(io.to_string()),
            corrupt @ StoreError::Corrupt { .. } => {
                ytaudit_types::Error::Decode(corrupt.to_string())
            }
            StoreError::Plan(msg) => ytaudit_types::Error::InvalidInput(msg),
            mismatch @ StoreError::PlatformMismatch { .. } => {
                ytaudit_types::Error::InvalidInput(mismatch.to_string())
            }
        }
    }
}

/// Store result alias.
pub type Result<T, E = StoreError> = std::result::Result<T, E>;
