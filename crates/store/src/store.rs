//! The snapshot store: an open log plus the in-memory replay of its
//! structure — content index, per-pair commit index, collection plan,
//! and end marker.
//!
//! Opening a store is a single sequential scan. Every valid record is
//! absorbed into the indexes; a torn tail (interrupted final append) is
//! truncated away; interior corruption fails the open and is left for
//! [`Store::verify_path`] to report precisely.

use crate::error::{Result, StoreError};
use crate::log::{self, RecordLog};
use crate::records::{
    blob_hash, decode_channel_info, decode_comment, decode_video_id, decode_video_info,
    encode_channel_info, encode_comment, encode_video_id, encode_video_info, topic_code,
    CollectionMeta, CommitRecord, Record, BLOB_CHANNEL_INFO, BLOB_COMMENT, BLOB_VIDEO_ID,
    BLOB_VIDEO_INFO, NO_TOPIC, PURPOSE_CHANNELS, PURPOSE_COMMENTS, PURPOSE_META_RETURNED,
    PURPOSE_VIDEO_META, TAG_BEGIN, TAG_BLOB, TAG_COMMIT, TAG_END, TAG_SEGMENT,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use ytaudit_core::collect::{CollectorConfig, CollectorSink, TopicCommit};
use ytaudit_core::dataset::{
    AuditDataset, ChannelInfo, CommentFetchError, CommentsSnapshot, HourlyResult, Snapshot,
    TopicSnapshot, VideoInfo,
};
use ytaudit_platform::faultpoint;
use ytaudit_types::{ChannelId, Topic, VideoId};

/// Fsyncs the directory containing `path`, making a just-created or
/// just-renamed directory entry durable: POSIX only promises that a
/// rename or new file survives a crash once the parent directory itself
/// has been synced.
pub fn fsync_dir_of(path: &Path) -> Result<()> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// `path` with `suffix` appended to its final component (keeping the
/// extension), e.g. `audit.yts` + `.merging` → `audit.yts.merging`.
pub(crate) fn sibling_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Which parts of the dataset to materialize when loading from a store.
/// Analyses that only consume search results (consistency, attrition,
/// pool sizes) can skip decoding metadata and comment blobs entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSelection {
    /// Load merged `Videos: list` metadata.
    pub include_video_meta: bool,
    /// Load `Channels: list` metadata.
    pub include_channel_meta: bool,
    /// Load first/last-snapshot comment crawls.
    pub include_comments: bool,
}

impl DatasetSelection {
    /// Everything — equivalent to the legacy JSON dataset.
    pub fn full() -> DatasetSelection {
        DatasetSelection {
            include_video_meta: true,
            include_channel_meta: true,
            include_comments: true,
        }
    }

    /// Search results only: hourly ID lists and coverage, no blob-heavy
    /// metadata.
    pub fn search_only() -> DatasetSelection {
        DatasetSelection {
            include_video_meta: false,
            include_channel_meta: false,
            include_comments: false,
        }
    }
}

/// Counters describing a store, for `ytaudit store info`.
#[derive(Debug, Clone)]
pub struct StoreStats {
    /// The backing file.
    pub path: PathBuf,
    /// Bytes in the log (after any tail recovery).
    pub log_len: u64,
    /// Append sessions (WAL segments) the file has seen.
    pub segments: u32,
    /// Valid record frames.
    pub records: u64,
    /// Unique stored blobs.
    pub blobs: u64,
    /// Bytes of unique blob bodies.
    pub blob_bytes: u64,
    /// Total blob references across all blocks (≥ `blobs` once data
    /// repeats across snapshots).
    pub refs_total: u64,
    /// `(topic, snapshot)` pairs committed.
    pub committed_pairs: usize,
    /// Pairs the collection plan calls for (absent before `begin`).
    pub planned_pairs: Option<usize>,
    /// Whether every pair plus the final channel fetch is committed.
    pub complete: bool,
    /// Quota units recorded across commits (plus the end record).
    pub quota_units: u64,
    /// Bytes of torn tail discarded when this store was opened.
    pub recovered_bytes: u64,
}

impl StoreStats {
    /// References per unique blob: the dedup win. 1.0 means no sharing;
    /// the paper's repeated snapshots push this well above 1.
    pub fn dedup_ratio(&self) -> f64 {
        if self.blobs == 0 {
            1.0
        } else {
            self.refs_total as f64 / self.blobs as f64
        }
    }
}

/// The read-only integrity report from [`Store::verify_path`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Total file size.
    pub file_len: u64,
    /// Bytes covered by valid frames.
    pub valid_len: u64,
    /// Valid record frames.
    pub records: u64,
    /// Unique blobs seen.
    pub blobs: u64,
    /// Commits seen.
    pub commits: usize,
    /// Pairs the stored plan calls for.
    pub planned_pairs: Option<usize>,
    /// Whether the collection is complete.
    pub complete: bool,
    /// Bytes of torn tail past `valid_len` (recoverable by reopening).
    pub torn_tail_bytes: u64,
    /// The first integrity violation found, if any.
    pub first_error: Option<String>,
}

impl VerifyReport {
    /// Whether the file is fully intact (a torn tail still counts as
    /// damage worth reporting, even though `open` recovers from it).
    pub fn ok(&self) -> bool {
        self.first_error.is_none() && self.torn_tail_bytes == 0
    }
}

#[derive(Debug, Clone)]
struct EndEntry {
    quota_final_delta: u64,
    channels_offset: u64,
}

/// Replay state shared by `open` and `verify_path`: the structure of the
/// file, rebuilt record by record.
#[derive(Debug, Default)]
struct Replay {
    meta: Option<CollectionMeta>,
    content: HashMap<u64, (u64, u32)>,
    commits: BTreeMap<(u16, u8), CommitRecord>,
    end: Option<EndEntry>,
    channel_ids: BTreeSet<ChannelId>,
    segments: u32,
    blob_bytes: u64,
    refs_total: u64,
    // verify-only bookkeeping: offsets of blocks, by kind.
    hour_blocks: BTreeSet<u64>,
    ref_blocks: HashMap<u64, u8>,
}

impl Replay {
    fn absorb(&mut self, offset: u64, payload: &[u8]) -> Result<()> {
        let record = Record::decode(payload).map_err(|e| StoreError::corrupt(offset, e))?;
        match record {
            Record::Segment { .. } => self.segments += 1,
            Record::Begin(meta) => {
                if self.meta.is_some() {
                    return Err(StoreError::corrupt(offset, "duplicate collection plan"));
                }
                self.meta = Some(meta);
            }
            Record::Blob { kind, body } => {
                let hash = blob_hash(kind, &body);
                if kind == BLOB_VIDEO_INFO {
                    let info =
                        decode_video_info(&body).map_err(|e| StoreError::corrupt(offset, e))?;
                    self.channel_ids.insert(info.channel_id);
                }
                if self
                    .content
                    .insert(hash, (offset, body.len() as u32))
                    .is_none()
                {
                    self.blob_bytes += body.len() as u64;
                }
            }
            Record::HourBlock { refs, .. } => {
                self.refs_total += refs.len() as u64;
                self.hour_blocks.insert(offset);
            }
            Record::RefBlock { purpose, refs, .. } => {
                self.refs_total += refs.len() as u64;
                self.ref_blocks.insert(offset, purpose);
            }
            Record::Commit(c) => {
                let key = (c.snapshot, c.topic);
                if self.commits.insert(key, c).is_some() {
                    return Err(StoreError::corrupt(
                        offset,
                        format!("duplicate commit for pair {key:?}"),
                    ));
                }
            }
            Record::End {
                quota_final_delta,
                channels_offset,
            } => {
                if self.end.is_some() {
                    return Err(StoreError::corrupt(offset, "duplicate end record"));
                }
                self.end = Some(EndEntry {
                    quota_final_delta,
                    channels_offset,
                });
            }
        }
        Ok(())
    }

    /// Cross-checks a commit's internal references, for verification.
    fn check_commit(&self, c: &CommitRecord) -> std::result::Result<(), String> {
        for &(hour, offset) in &c.hours {
            if !self.hour_blocks.contains(&offset) {
                return Err(format!(
                    "commit ({}, {}) hour {hour} points at byte {offset}, which is not an hour block",
                    c.snapshot, c.topic
                ));
            }
        }
        let wants = [
            (c.meta_offset, PURPOSE_META_RETURNED, "meta_returned"),
            (c.videos_offset, PURPOSE_VIDEO_META, "video metadata"),
            (c.comments_offset, PURPOSE_COMMENTS, "comments"),
        ];
        for (offset, purpose, what) in wants {
            if offset == 0 {
                continue;
            }
            if self.ref_blocks.get(&offset) != Some(&purpose) {
                return Err(format!(
                    "commit ({}, {}) {what} pointer at byte {offset} does not resolve",
                    c.snapshot, c.topic
                ));
            }
        }
        Ok(())
    }

    fn complete(&self) -> bool {
        match &self.meta {
            Some(meta) => self.commits.len() == meta.pairs() && self.end.is_some(),
            None => false,
        }
    }
}

/// An open snapshot store.
#[derive(Debug)]
pub struct Store {
    log: RecordLog,
    path: PathBuf,
    meta: Option<CollectionMeta>,
    content: HashMap<u64, (u64, u32)>,
    commits: BTreeMap<(u16, u8), CommitRecord>,
    end: Option<EndEntry>,
    channel_ids: BTreeSet<ChannelId>,
    segments: u32,
    records: u64,
    blob_bytes: u64,
    refs_total: u64,
    recovered_bytes: u64,
    session_marked: bool,
    blob_cache: HashMap<u64, Vec<u8>>,
}

impl Store {
    /// Creates a fresh, empty store at `path` (the file must not exist).
    pub fn create(path: &Path) -> Result<Store> {
        let mut log = RecordLog::create(path)?;
        log.append(&Record::Segment { seq: 0 }.encode())?;
        log.sync()?;
        Ok(Store {
            log,
            path: path.to_path_buf(),
            meta: None,
            content: HashMap::new(),
            commits: BTreeMap::new(),
            end: None,
            channel_ids: BTreeSet::new(),
            segments: 1,
            records: 1,
            blob_bytes: 0,
            refs_total: 0,
            recovered_bytes: 0,
            session_marked: true,
            blob_cache: HashMap::new(),
        })
    }

    /// Opens an existing store, replaying its log. A torn tail is
    /// truncated; interior corruption fails the open (run
    /// [`Store::verify_path`] for the details).
    pub fn open(path: &Path) -> Result<Store> {
        let mut replay = Replay::default();
        let outcome = log::scan(path, |offset, payload| replay.absorb(offset, payload))?;
        if let Some(stop) = &outcome.stop {
            if !stop.is_torn_tail() {
                return Err(StoreError::corrupt(
                    stop.offset,
                    format!(
                        "interior record damage ({:?}); the file was altered after it was \
                         written — run `ytaudit store verify`",
                        stop.reason
                    ),
                ));
            }
        }
        let log = RecordLog::open_at(path, outcome.valid_len)?;
        Ok(Store {
            log,
            path: path.to_path_buf(),
            meta: replay.meta,
            content: replay.content,
            commits: replay.commits,
            end: replay.end,
            channel_ids: replay.channel_ids,
            segments: replay.segments,
            records: outcome.records,
            blob_bytes: replay.blob_bytes,
            refs_total: replay.refs_total,
            recovered_bytes: outcome.file_len - outcome.valid_len,
            session_marked: false,
            blob_cache: HashMap::new(),
        })
    }

    /// Opens a store for resumable *rewriting* (the merge path): like
    /// [`Store::open`], but first rolls the log back to the end of the
    /// last durable record — the most recent Segment, Begin, Commit, or
    /// End, each of which is followed by an fsync when written —
    /// discarding any valid-but-uncommitted orphan frames a crash left
    /// behind. Appends after a rollback open are therefore the exact
    /// byte-for-byte continuation of what a crash-free writer would have
    /// produced, which is what makes a resumed merge converge on
    /// canonical bytes. (The ordinary resumable-collection path uses
    /// [`Store::open`] instead: it keeps orphan blobs, trading canonical
    /// layout for not re-fetching their contents.)
    pub fn open_rollback(path: &Path) -> Result<Store> {
        let mut durable_len = log::MAGIC.len() as u64;
        let outcome = log::scan(path, |offset, payload| {
            if let Some(&tag) = payload.first() {
                if tag == TAG_SEGMENT || tag == TAG_BEGIN || tag == TAG_COMMIT || tag == TAG_END {
                    durable_len = offset + log::FRAME_HEADER + payload.len() as u64;
                }
            }
            Ok(())
        })?;
        if let Some(stop) = &outcome.stop {
            if !stop.is_torn_tail() {
                return Err(StoreError::corrupt(
                    stop.offset,
                    format!(
                        "interior record damage ({:?}); the file was altered after it was \
                         written — run `ytaudit store verify`",
                        stop.reason
                    ),
                ));
            }
        }
        if durable_len < outcome.file_len {
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(durable_len)?;
            file.sync_data()?;
        }
        let mut store = Store::open(path)?;
        store.recovered_bytes = outcome.file_len - durable_len;
        // Continue the rolled-back session rather than opening a new WAL
        // segment: a resumed rewrite must not inject segment markers the
        // crash-free byte stream would not contain.
        store.session_marked = store.segments > 0;
        Ok(store)
    }

    /// Opens `path` if it exists, otherwise creates it — the `collect
    /// --store` entry point.
    pub fn open_or_create(path: &Path) -> Result<Store> {
        if path.exists() {
            Store::open(path)
        } else {
            Store::create(path)
        }
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The stored collection plan, once `begin_collection` has run.
    pub fn collection_meta(&self) -> Option<&CollectionMeta> {
        self.meta.as_ref()
    }

    /// Bytes of torn tail discarded when this store was opened.
    pub fn recovered_bytes(&self) -> u64 {
        self.recovered_bytes
    }

    fn append_record(&mut self, record: &Record) -> Result<u64> {
        let offset = self.log.append(&record.encode())?;
        self.records += 1;
        Ok(offset)
    }

    /// Writes this session's WAL segment header before the first append.
    fn mark_session(&mut self) -> Result<()> {
        if !self.session_marked {
            self.append_record(&Record::Segment { seq: self.segments })?;
            self.segments += 1;
            self.session_marked = true;
        }
        Ok(())
    }

    /// Stores `body` as a blob of `kind` unless an identical blob already
    /// exists, returning its content address.
    fn put_blob(&mut self, kind: u8, body: &[u8]) -> Result<u64> {
        let hash = blob_hash(kind, body);
        if let Some(&(_, len)) = self.content.get(&hash) {
            if len as usize != body.len() {
                return Err(StoreError::corrupt(
                    0,
                    format!("blob hash collision: {hash:#018x} maps to two lengths"),
                ));
            }
            return Ok(hash);
        }
        let offset = self.append_record(&Record::Blob {
            kind,
            body: body.to_vec(),
        })?;
        self.content.insert(hash, (offset, body.len() as u32));
        self.blob_bytes += body.len() as u64;
        Ok(hash)
    }

    /// Records the collection plan, or validates it against the stored
    /// one when resuming.
    pub fn begin_collection(&mut self, meta: CollectionMeta) -> Result<()> {
        if let Some(stored) = &self.meta {
            if stored.platform != meta.platform {
                return Err(StoreError::PlatformMismatch {
                    stored: stored.platform,
                    requested: meta.platform,
                });
            }
            if *stored != meta {
                return Err(StoreError::Plan(
                    "collection plan differs from the one this store was started with; \
                     resume with the original configuration or use a fresh store"
                        .into(),
                ));
            }
            return Ok(());
        }
        self.mark_session()?;
        self.append_record(&Record::Begin(meta.clone()))?;
        self.log.sync()?;
        self.meta = Some(meta);
        Ok(())
    }

    /// Whether `(topic, snapshot)` is durably committed.
    pub fn has_commit(&self, topic: Topic, snapshot: usize) -> bool {
        snapshot <= u16::MAX as usize
            && self
                .commits
                .contains_key(&(snapshot as u16, topic_code(topic)))
    }

    /// Committed `(topic, snapshot)` pairs.
    pub fn committed_pairs(&self) -> usize {
        self.commits.len()
    }

    /// Whether every planned pair plus the final channel fetch is in.
    pub fn complete(&self) -> bool {
        match &self.meta {
            Some(meta) => self.commits.len() == meta.pairs() && self.end.is_some(),
            None => false,
        }
    }

    /// Quota units recorded so far: the sum of per-pair deltas plus the
    /// end record's final delta.
    pub fn quota_units_total(&self) -> u64 {
        self.commits.values().map(|c| c.quota_delta).sum::<u64>()
            + self.end.as_ref().map_or(0, |e| e.quota_final_delta)
    }

    /// Durably commits one `(topic, snapshot)` pair: blobs first, then
    /// the blocks that reference them, then the commit record, then one
    /// fsync — the ordering that makes a surviving commit self-contained.
    pub fn commit_snapshot(&mut self, commit: &TopicCommit<'_>) -> Result<()> {
        let meta = self
            .meta
            .as_ref()
            .ok_or_else(|| StoreError::Plan("commit before begin_collection".into()))?;
        if self.end.is_some() {
            return Err(StoreError::Plan("collection already finished".into()));
        }
        let snapshot = commit.snapshot;
        if snapshot >= meta.dates.len() || snapshot > u16::MAX as usize {
            return Err(StoreError::Plan(format!(
                "snapshot index {snapshot} outside the plan's {} dates",
                meta.dates.len()
            )));
        }
        if meta.dates[snapshot] != commit.date {
            return Err(StoreError::Plan(format!(
                "snapshot {snapshot} date does not match the plan"
            )));
        }
        if !meta.topics.contains(&commit.topic) {
            return Err(StoreError::Plan(format!(
                "topic {:?} is not in the collection plan",
                commit.topic
            )));
        }
        let topic = topic_code(commit.topic);
        let key = (snapshot as u16, topic);
        if self.commits.contains_key(&key) {
            return Err(StoreError::Plan(format!(
                "pair (topic {topic}, snapshot {snapshot}) is already committed"
            )));
        }

        self.mark_session()?;
        let mut hours = Vec::with_capacity(commit.data.hours.len());
        for hour in &commit.data.hours {
            let mut refs = Vec::with_capacity(hour.video_ids.len());
            for id in &hour.video_ids {
                refs.push(self.put_blob(BLOB_VIDEO_ID, &encode_video_id(id))?);
            }
            self.refs_total += refs.len() as u64;
            let offset = self.append_record(&Record::HourBlock {
                topic,
                snapshot: snapshot as u16,
                hour: hour.hour,
                total_results: hour.total_results,
                refs,
            })?;
            hours.push((hour.hour, offset));
        }

        let meta_offset = if commit.data.meta_returned.is_empty() {
            0
        } else {
            let mut refs = Vec::with_capacity(commit.data.meta_returned.len());
            for id in &commit.data.meta_returned {
                refs.push(self.put_blob(BLOB_VIDEO_ID, &encode_video_id(id))?);
            }
            self.refs_total += refs.len() as u64;
            self.append_record(&Record::RefBlock {
                purpose: PURPOSE_META_RETURNED,
                topic,
                snapshot: snapshot as u16,
                refs,
            })?
        };

        let videos_offset = if commit.videos.is_empty() {
            0
        } else {
            let mut refs = Vec::with_capacity(commit.videos.len());
            for info in commit.videos {
                refs.push(self.put_blob(BLOB_VIDEO_INFO, &encode_video_info(info))?);
                self.channel_ids.insert(info.channel_id.clone());
            }
            self.refs_total += refs.len() as u64;
            self.append_record(&Record::RefBlock {
                purpose: PURPOSE_VIDEO_META,
                topic,
                snapshot: snapshot as u16,
                refs,
            })?
        };

        // `Some(empty)` and `None` are distinct: the first snapshot of a
        // comment-collecting run may legitimately find zero comments.
        let comments_offset = match commit.comments {
            None => 0,
            Some(cs) => {
                let mut refs = Vec::with_capacity(cs.comments.len());
                for c in &cs.comments {
                    refs.push(self.put_blob(BLOB_COMMENT, &encode_comment(c))?);
                }
                self.refs_total += refs.len() as u64;
                self.append_record(&Record::RefBlock {
                    purpose: PURPOSE_COMMENTS,
                    topic,
                    snapshot: snapshot as u16,
                    refs,
                })?
            }
        };

        let comment_errors = commit.comments.map_or_else(Vec::new, |cs| {
            cs.fetch_errors
                .iter()
                .map(|e| (e.video_id.as_str().to_string(), e.error.clone()))
                .collect()
        });
        let record = CommitRecord {
            topic,
            snapshot: snapshot as u16,
            date: commit.date.as_secs(),
            quota_delta: commit.quota_delta,
            hours,
            meta_offset,
            videos_offset,
            comments_offset,
            comment_errors,
        };
        self.append_record(&Record::Commit(record.clone()))?;
        if faultpoint::should_trip("store.commit") {
            return Err(StoreError::Io(std::io::Error::other(
                "injected crash: store.commit",
            )));
        }
        self.log.sync()?;
        self.commits.insert(key, record);
        Ok(())
    }

    /// Writes the end-of-collection channel metadata and the end marker.
    pub fn finish_collection(
        &mut self,
        channels: &[ChannelInfo],
        quota_final_delta: u64,
    ) -> Result<()> {
        let meta = self
            .meta
            .as_ref()
            .ok_or_else(|| StoreError::Plan("finish before begin_collection".into()))?;
        if self.end.is_some() {
            return Err(StoreError::Plan("collection already finished".into()));
        }
        if self.commits.len() != meta.pairs() {
            return Err(StoreError::Plan(format!(
                "cannot finish: {}/{} pairs committed",
                self.commits.len(),
                meta.pairs()
            )));
        }
        self.mark_session()?;
        let channels_offset = if channels.is_empty() {
            0
        } else {
            let mut refs = Vec::with_capacity(channels.len());
            for info in channels {
                refs.push(self.put_blob(BLOB_CHANNEL_INFO, &encode_channel_info(info))?);
            }
            self.refs_total += refs.len() as u64;
            self.append_record(&Record::RefBlock {
                purpose: PURPOSE_CHANNELS,
                topic: NO_TOPIC,
                snapshot: 0,
                refs,
            })?
        };
        self.append_record(&Record::End {
            quota_final_delta,
            channels_offset,
        })?;
        if faultpoint::should_trip("store.finish") {
            return Err(StoreError::Io(std::io::Error::other(
                "injected crash: store.finish",
            )));
        }
        self.log.sync()?;
        self.end = Some(EndEntry {
            quota_final_delta,
            channels_offset,
        });
        Ok(())
    }

    /// Reads a blob body by content address, verifying kind and checksum.
    fn blob_body(&mut self, hash: u64, kind: u8) -> Result<Vec<u8>> {
        if let Some(body) = self.blob_cache.get(&hash) {
            return Ok(body.clone());
        }
        let &(offset, _) = self.content.get(&hash).ok_or_else(|| {
            StoreError::corrupt(0, format!("dangling blob reference {hash:#018x}"))
        })?;
        let payload = self.log.read_payload_at(offset)?;
        // ytlint: allow(indexing) — the len() < 2 guard short-circuits first
        if payload.len() < 2 || payload[0] != TAG_BLOB || payload[1] != kind {
            return Err(StoreError::corrupt(
                offset,
                format!("reference {hash:#018x} does not point at a kind-{kind} blob"),
            ));
        }
        let body = payload[2..].to_vec();
        self.blob_cache.insert(hash, body.clone());
        Ok(body)
    }

    fn read_record(&mut self, offset: u64) -> Result<Record> {
        let payload = self.log.read_payload_at(offset)?;
        Record::decode(&payload).map_err(|e| StoreError::corrupt(offset, e))
    }

    pub(crate) fn commit_for(&self, topic: Topic, snapshot: usize) -> Result<CommitRecord> {
        self.commits
            .get(&(snapshot as u16, topic_code(topic)))
            .cloned()
            .ok_or_else(|| {
                StoreError::Plan(format!(
                    "pair ({topic:?}, snapshot {snapshot}) is not committed"
                ))
            })
    }

    /// Quota units one committed pair cost to collect.
    pub fn pair_quota_delta(&self, topic: Topic, snapshot: usize) -> Result<u64> {
        Ok(self.commit_for(topic, snapshot)?.quota_delta)
    }

    /// The end record's final quota delta (channel fetches), once the
    /// collection has finished.
    pub fn final_quota_delta(&self) -> Option<u64> {
        self.end.as_ref().map(|e| e.quota_final_delta)
    }

    fn load_ref_ids(&mut self, offset: u64, purpose: u8) -> Result<Vec<u64>> {
        match self.read_record(offset)? {
            Record::RefBlock {
                purpose: p, refs, ..
            } if p == purpose => Ok(refs),
            _ => Err(StoreError::corrupt(
                offset,
                format!("expected a purpose-{purpose} ref block"),
            )),
        }
    }

    /// Loads a single hour's results for a pair — the O(1) slice path:
    /// one index lookup, one block read, one blob read per video.
    pub fn load_hour(
        &mut self,
        topic: Topic,
        snapshot: usize,
        hour: u32,
    ) -> Result<Option<HourlyResult>> {
        let commit = self.commit_for(topic, snapshot)?;
        let Some(&(_, offset)) = commit.hours.iter().find(|(h, _)| *h == hour) else {
            return Ok(None);
        };
        match self.read_record(offset)? {
            Record::HourBlock {
                hour,
                total_results,
                refs,
                ..
            } => {
                let mut video_ids = Vec::with_capacity(refs.len());
                for r in refs {
                    let body = self.blob_body(r, BLOB_VIDEO_ID)?;
                    video_ids
                        .push(decode_video_id(&body).map_err(|e| StoreError::corrupt(offset, e))?);
                }
                Ok(Some(HourlyResult {
                    hour,
                    video_ids,
                    total_results,
                }))
            }
            _ => Err(StoreError::corrupt(offset, "expected an hour block")),
        }
    }

    /// Loads one committed pair's full [`TopicSnapshot`].
    pub fn load_topic_snapshot(&mut self, topic: Topic, snapshot: usize) -> Result<TopicSnapshot> {
        let commit = self.commit_for(topic, snapshot)?;
        let mut hours = Vec::with_capacity(commit.hours.len());
        for &(hour, _) in &commit.hours {
            hours.push(self.load_hour(topic, snapshot, hour)?.ok_or_else(|| {
                StoreError::corrupt(
                    0,
                    format!("commit for ({topic:?}, snapshot {snapshot}) indexes hour {hour} with no block"),
                )
            })?);
        }
        let mut meta_returned = Vec::new();
        if commit.meta_offset != 0 {
            for r in self.load_ref_ids(commit.meta_offset, PURPOSE_META_RETURNED)? {
                let body = self.blob_body(r, BLOB_VIDEO_ID)?;
                meta_returned.push(decode_video_id(&body).map_err(|e| StoreError::corrupt(0, e))?);
            }
        }
        Ok(TopicSnapshot {
            hours,
            meta_returned,
        })
    }

    /// Loads one pair's comment crawl, when that snapshot collected one.
    pub fn load_comments(
        &mut self,
        topic: Topic,
        snapshot: usize,
    ) -> Result<Option<CommentsSnapshot>> {
        let commit = self.commit_for(topic, snapshot)?;
        if commit.comments_offset == 0 {
            return Ok(None);
        }
        let mut comments = Vec::new();
        for r in self.load_ref_ids(commit.comments_offset, PURPOSE_COMMENTS)? {
            let body = self.blob_body(r, BLOB_COMMENT)?;
            comments.push(decode_comment(&body).map_err(|e| StoreError::corrupt(0, e))?);
        }
        let fetch_errors = commit
            .comment_errors
            .iter()
            .map(|(video_id, error)| CommentFetchError {
                video_id: VideoId::new(video_id.clone()),
                error: error.clone(),
            })
            .collect();
        Ok(Some(CommentsSnapshot {
            comments,
            fetch_errors,
        }))
    }

    /// Loads one pair's fetched video metadata, in fetch order.
    pub fn load_video_meta(&mut self, topic: Topic, snapshot: usize) -> Result<Vec<VideoInfo>> {
        let commit = self.commit_for(topic, snapshot)?;
        if commit.videos_offset == 0 {
            return Ok(Vec::new());
        }
        let mut videos = Vec::new();
        for r in self.load_ref_ids(commit.videos_offset, PURPOSE_VIDEO_META)? {
            let body = self.blob_body(r, BLOB_VIDEO_INFO)?;
            videos.push(decode_video_info(&body).map_err(|e| StoreError::corrupt(0, e))?);
        }
        Ok(videos)
    }

    /// Loads the end-of-collection channel metadata.
    pub fn load_channels(&mut self) -> Result<Vec<ChannelInfo>> {
        let Some(end) = self.end.clone() else {
            return Ok(Vec::new());
        };
        if end.channels_offset == 0 {
            return Ok(Vec::new());
        }
        let mut channels = Vec::new();
        for r in self.load_ref_ids(end.channels_offset, PURPOSE_CHANNELS)? {
            let body = self.blob_body(r, BLOB_CHANNEL_INFO)?;
            channels.push(decode_channel_info(&body).map_err(|e| StoreError::corrupt(0, e))?);
        }
        Ok(channels)
    }

    /// Materializes the committed data as an [`AuditDataset`], identical
    /// to what an in-memory collection run would have produced.
    pub fn load_dataset(&mut self) -> Result<AuditDataset> {
        self.load_dataset_filtered(DatasetSelection::full())
    }

    /// Like [`Store::load_dataset`], but skipping the parts the caller
    /// does not need.
    pub fn load_dataset_filtered(&mut self, sel: DatasetSelection) -> Result<AuditDataset> {
        let meta = self
            .meta
            .clone()
            .ok_or_else(|| StoreError::Plan("store holds no collection".into()))?;
        let mut snapshots: BTreeMap<usize, Snapshot> = BTreeMap::new();
        let mut video_meta = HashMap::new();
        // BTreeMap order is (snapshot asc, topic asc): snapshot order is
        // what first-fetch-wins metadata merging depends on; within one
        // snapshot every fetch of a video returns identical metadata, so
        // topic order is immaterial.
        let keys: Vec<(u16, u8)> = self.commits.keys().copied().collect();
        for (snapshot_idx, topic_c) in keys {
            let snapshot = snapshot_idx as usize;
            let topic =
                crate::records::topic_from_code(topic_c).map_err(|e| StoreError::corrupt(0, e))?;
            let data = self.load_topic_snapshot(topic, snapshot)?;
            let comments = if sel.include_comments {
                self.load_comments(topic, snapshot)?
            } else {
                None
            };
            let entry = snapshots.entry(snapshot).or_insert_with(|| Snapshot {
                date: meta.dates[snapshot],
                topics: BTreeMap::new(),
                comments: BTreeMap::new(),
            });
            entry.topics.insert(topic, data);
            if let Some(cs) = comments {
                entry.comments.insert(topic, cs);
            }
            if sel.include_video_meta {
                for info in self.load_video_meta(topic, snapshot)? {
                    video_meta.entry(info.id.clone()).or_insert(info);
                }
            }
        }
        let mut channel_meta = HashMap::new();
        if sel.include_channel_meta {
            for info in self.load_channels()? {
                channel_meta.insert(info.id.clone(), info);
            }
        }
        Ok(AuditDataset {
            topics: meta.topics,
            snapshots: snapshots.into_values().collect(),
            video_meta,
            channel_meta,
            quota_units_spent: self.quota_units_total(),
        })
    }

    /// Rewrites the store's committed contents into a fresh file at
    /// `dest`, dropping orphan blobs, dead segments, and torn-pair
    /// leftovers. Returns the compacted store.
    pub fn compact(&mut self, dest: &Path) -> Result<Store> {
        let meta = self
            .meta
            .clone()
            .ok_or_else(|| StoreError::Plan("store holds no collection".into()))?;
        let mut out = Store::create(dest)?;
        out.begin_collection(meta.clone())?;
        let keys: Vec<(u16, u8)> = self.commits.keys().copied().collect();
        for (snapshot_idx, topic_c) in keys {
            let snapshot = snapshot_idx as usize;
            let topic =
                crate::records::topic_from_code(topic_c).map_err(|e| StoreError::corrupt(0, e))?;
            let data = self.load_topic_snapshot(topic, snapshot)?;
            let comments = self.load_comments(topic, snapshot)?;
            let videos = self.load_video_meta(topic, snapshot)?;
            let quota_delta = self.commit_for(topic, snapshot)?.quota_delta;
            out.commit_snapshot(&TopicCommit {
                topic,
                snapshot,
                date: meta.dates[snapshot],
                data: &data,
                comments: comments.as_ref(),
                videos: &videos,
                quota_delta,
            })?;
        }
        if let Some(end) = self.end.clone() {
            let channels = self.load_channels()?;
            out.finish_collection(&channels, end.quota_final_delta)?;
        }
        // The log's own appends are fsynced, but the *directory entry*
        // for a fresh dest is not durable until the directory is synced.
        fsync_dir_of(dest)?;
        Ok(out)
    }

    /// Compacts the store in place: rewrites into a `.compact.tmp`
    /// sibling, atomically renames it over the original, and syncs the
    /// directory, so a crash at any point leaves either the old file or
    /// the new one — never a torn mix. A stale tmp from a previously
    /// crashed attempt is discarded. Returns the reopened store.
    pub fn compact_in_place(mut self) -> Result<Store> {
        let path = self.path.clone();
        let tmp = sibling_with_suffix(&path, ".compact.tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        self.compact(&tmp)?;
        drop(self);
        if faultpoint::should_trip("store.pre-compact-rename") {
            return Err(StoreError::Io(std::io::Error::other(
                "injected crash: store.pre-compact-rename",
            )));
        }
        std::fs::rename(&tmp, &path)?;
        fsync_dir_of(&path)?;
        Store::open(&path)
    }

    /// Counters for `ytaudit store info`.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            path: self.path.clone(),
            log_len: self.log.len(),
            segments: self.segments,
            records: self.records,
            blobs: self.content.len() as u64,
            blob_bytes: self.blob_bytes,
            refs_total: self.refs_total,
            committed_pairs: self.commits.len(),
            planned_pairs: self.meta.as_ref().map(CollectionMeta::pairs),
            complete: self.complete(),
            quota_units: self.quota_units_total(),
            recovered_bytes: self.recovered_bytes,
        }
    }

    /// Read-only integrity check: replays the whole file without
    /// modifying it, reporting the first checksum failure, undecodable
    /// record, dangling reference, or torn tail.
    pub fn verify_path(path: &Path) -> Result<VerifyReport> {
        let mut replay = Replay::default();
        let mut first_error: Option<String> = None;
        let mut blob_kinds: HashMap<u64, u8> = HashMap::new();
        let outcome = log::scan(path, |offset, payload| {
            if first_error.is_some() {
                return Ok(());
            }
            let record = match Record::decode(payload) {
                Ok(record) => record,
                Err(e) => {
                    first_error = Some(format!("undecodable record at byte {offset}: {e}"));
                    return Ok(());
                }
            };
            // Reference checks: blobs always precede the blocks that
            // reference them, and blocks precede their commit.
            let check = |refs: &[u64], kinds: &HashMap<u64, u8>| -> Option<String> {
                refs.iter()
                    .find(|r| !kinds.contains_key(r))
                    .map(|r| format!("dangling blob reference {r:#018x} at byte {offset}"))
            };
            match &record {
                Record::Blob { kind, body } => {
                    blob_kinds.insert(blob_hash(*kind, body), *kind);
                }
                Record::HourBlock { refs, .. } | Record::RefBlock { refs, .. } => {
                    first_error = check(refs, &blob_kinds);
                }
                Record::Commit(c) => {
                    first_error = replay.check_commit(c).err();
                }
                Record::End {
                    channels_offset, ..
                } if *channels_offset != 0
                    && replay.ref_blocks.get(channels_offset) != Some(&PURPOSE_CHANNELS) =>
                {
                    first_error = Some("end record's channel pointer does not resolve".to_string());
                }
                _ => {}
            }
            if first_error.is_none() {
                if let Err(e) = replay.absorb(offset, payload) {
                    first_error = Some(e.to_string());
                }
            }
            Ok(())
        })?;
        let mut torn_tail_bytes = 0;
        if let Some(stop) = &outcome.stop {
            if stop.is_torn_tail() {
                torn_tail_bytes = outcome.file_len - outcome.valid_len;
            } else if first_error.is_none() {
                first_error = Some(format!(
                    "record at byte {} failed validation: {:?}",
                    stop.offset, stop.reason
                ));
            }
        }
        Ok(VerifyReport {
            file_len: outcome.file_len,
            valid_len: outcome.valid_len,
            records: outcome.records,
            blobs: replay.content.len() as u64,
            commits: replay.commits.len(),
            planned_pairs: replay.meta.as_ref().map(CollectionMeta::pairs),
            complete: replay.complete(),
            torn_tail_bytes,
            first_error,
        })
    }
}

impl CollectorSink for Store {
    fn begin(&mut self, config: &CollectorConfig) -> ytaudit_types::Result<()> {
        self.begin_collection(CollectionMeta::of_config(config))
            .map_err(Into::into)
    }

    fn is_committed(&self, topic: Topic, snapshot: usize) -> bool {
        self.has_commit(topic, snapshot)
    }

    fn is_complete(&self) -> bool {
        self.complete()
    }

    fn known_channel_ids(&self) -> ytaudit_types::Result<Vec<ChannelId>> {
        Ok(self.channel_ids.iter().cloned().collect())
    }

    fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> ytaudit_types::Result<()> {
        self.commit_snapshot(&commit).map_err(Into::into)
    }

    fn finish(
        &mut self,
        channels: &[ChannelInfo],
        quota_final_delta: u64,
    ) -> ytaudit_types::Result<()> {
        self.finish_collection(channels, quota_final_delta)
            .map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use ytaudit_core::dataset::CommentRecord;
    use ytaudit_types::{PlatformKind, Timestamp};

    fn meta2x2() -> CollectionMeta {
        CollectionMeta {
            topics: vec![Topic::Higgs, Topic::Blm],
            dates: vec![
                Timestamp::from_ymd(2025, 2, 9).unwrap(),
                Timestamp::from_ymd(2025, 2, 14).unwrap(),
            ],
            hourly_bins: true,
            fetch_metadata: true,
            fetch_channels: true,
            fetch_comments: true,
            shard: None,
            platform: PlatformKind::Youtube,
        }
    }

    fn vid(n: u32) -> VideoId {
        VideoId::new(format!("vid-{n:06}"))
    }

    fn topic_data(base: u32) -> TopicSnapshot {
        TopicSnapshot {
            hours: vec![
                HourlyResult {
                    hour: 0,
                    video_ids: vec![vid(base), vid(base + 1)],
                    total_results: 40_000,
                },
                HourlyResult {
                    hour: 7,
                    video_ids: vec![vid(base + 1), vid(base + 2)],
                    total_results: 41_000,
                },
            ],
            meta_returned: vec![vid(base), vid(base + 1)],
        }
    }

    fn video_info(n: u32) -> VideoInfo {
        VideoInfo {
            id: vid(n),
            channel_id: ChannelId::new(format!("ch-{:03}", n % 3)),
            published_at: Timestamp::from_ymd(2025, 1, 20).unwrap(),
            duration_secs: 60 + u64::from(n),
            is_sd: n.is_multiple_of(2),
            views: u64::from(n) * 100,
            likes: u64::from(n) * 3,
            comments: u64::from(n),
        }
    }

    fn channel_info(n: u32) -> ChannelInfo {
        ChannelInfo {
            id: ChannelId::new(format!("ch-{n:03}")),
            published_at: Timestamp::from_ymd(2018, 6, 1).unwrap(),
            views: 1_000 * u64::from(n + 1),
            subscribers: 10 * u64::from(n + 1),
            video_count: u64::from(n + 1),
        }
    }

    /// The deterministic payload `fill` commits for pair
    /// `(topics[t_idx], snapshot idx)`.
    fn pair_payload(
        meta: &CollectionMeta,
        t_idx: usize,
        idx: usize,
    ) -> (TopicSnapshot, Vec<VideoInfo>, CommentsSnapshot) {
        // Overlapping ID ranges across snapshots force dedup.
        let base = t_idx as u32 * 100 + idx as u32;
        let data = topic_data(base);
        let videos: Vec<VideoInfo> = (base..base + 3).map(video_info).collect();
        let comments = CommentsSnapshot {
            comments: vec![CommentRecord {
                id: format!("c-{:?}-{idx}", meta.topics[t_idx]),
                video_id: vid(base),
                is_reply: idx == 1,
                published_at: meta.dates[idx],
            }],
            // One pair records a per-video fetch failure, so the
            // round-trip tests cover the commit-record tail.
            fetch_errors: if idx == 0 && t_idx == 0 {
                vec![CommentFetchError {
                    video_id: vid(base + 2),
                    error: "commentThreads.list: video deleted".to_string(),
                }]
            } else {
                Vec::new()
            },
        };
        (data, videos, comments)
    }

    /// Commits one of `fill`'s pairs — split out so crash tests can
    /// replay an interrupted fill byte-for-byte.
    fn commit_pair(store: &mut Store, meta: &CollectionMeta, t_idx: usize, idx: usize) {
        let (data, videos, comments) = pair_payload(meta, t_idx, idx);
        store
            .commit_snapshot(&TopicCommit {
                topic: meta.topics[t_idx],
                snapshot: idx,
                date: meta.dates[idx],
                data: &data,
                comments: Some(&comments),
                videos: &videos,
                quota_delta: 680,
            })
            .unwrap();
    }

    /// Commits the full 2×2 plan into `store` and returns the expected
    /// dataset.
    fn fill(store: &mut Store) -> AuditDataset {
        let meta = meta2x2();
        store.begin_collection(meta.clone()).unwrap();
        let mut expected_snapshots = Vec::new();
        for (idx, &date) in meta.dates.iter().enumerate() {
            let mut topics = BTreeMap::new();
            let mut comment_map = BTreeMap::new();
            for (t_idx, &topic) in meta.topics.iter().enumerate() {
                let (data, _videos, comments) = pair_payload(&meta, t_idx, idx);
                commit_pair(store, &meta, t_idx, idx);
                topics.insert(topic, data);
                comment_map.insert(topic, comments);
            }
            expected_snapshots.push(Snapshot {
                date,
                topics,
                comments: comment_map,
            });
        }
        let channels: Vec<ChannelInfo> = (0..3).map(channel_info).collect();
        store.finish_collection(&channels, 9).unwrap();

        let mut video_meta = HashMap::new();
        for snapshot in 0..meta.dates.len() as u32 {
            for t_idx in 0..meta.topics.len() as u32 {
                let base = t_idx * 100 + snapshot;
                for n in base..base + 3 {
                    video_meta.entry(vid(n)).or_insert_with(|| video_info(n));
                }
            }
        }
        AuditDataset {
            topics: meta.topics,
            snapshots: expected_snapshots,
            video_meta,
            channel_meta: channels.into_iter().map(|c| (c.id.clone(), c)).collect(),
            quota_units_spent: 680 * 4 + 9,
        }
    }

    #[test]
    fn commit_load_round_trip_across_reopen() {
        let dir = TempDir::new("store-roundtrip");
        let path = dir.file("audit.yts");
        let expected = {
            let mut store = Store::create(&path).unwrap();
            let expected = fill(&mut store);
            assert!(store.complete());
            assert_eq!(store.load_dataset().unwrap(), expected);
            expected
        };
        // Reopen from disk: everything replays.
        let mut store = Store::open(&path).unwrap();
        assert!(store.complete());
        assert_eq!(store.recovered_bytes(), 0);
        assert_eq!(store.load_dataset().unwrap(), expected);
        assert_eq!(store.quota_units_total(), expected.quota_units_spent);
        // Slice loading agrees with the full load.
        let hour = store.load_hour(Topic::Blm, 1, 7).unwrap().unwrap();
        assert_eq!(hour, expected.snapshots[1].topics[&Topic::Blm].hours[1]);
        assert!(store.load_hour(Topic::Blm, 1, 99).unwrap().is_none());
    }

    #[test]
    fn dedup_shares_blobs_across_snapshots() {
        let dir = TempDir::new("store-dedup");
        let path = dir.file("audit.yts");
        let mut store = Store::create(&path).unwrap();
        fill(&mut store);
        let stats = store.stats();
        assert!(
            stats.refs_total > stats.blobs,
            "refs {} vs blobs {}",
            stats.refs_total,
            stats.blobs
        );
        assert!(stats.dedup_ratio() > 1.0);
        // vid(1) appears in snapshot 0 (base 0) and snapshot 1 (base 1)
        // of Higgs: one stored blob, many references.
        assert_eq!(stats.committed_pairs, 4);
        assert_eq!(stats.planned_pairs, Some(4));
    }

    #[test]
    fn selection_skips_heavy_parts() {
        let dir = TempDir::new("store-selection");
        let path = dir.file("audit.yts");
        let mut store = Store::create(&path).unwrap();
        let expected = fill(&mut store);
        let slim = store
            .load_dataset_filtered(DatasetSelection::search_only())
            .unwrap();
        assert!(slim.video_meta.is_empty());
        assert!(slim.channel_meta.is_empty());
        assert!(slim.snapshots.iter().all(|s| s.comments.is_empty()));
        for (got, want) in slim.snapshots.iter().zip(&expected.snapshots) {
            assert_eq!(got.topics, want.topics);
        }
    }

    #[test]
    fn torn_tail_loses_only_the_inflight_pair() {
        let dir = TempDir::new("store-torn");
        let path = dir.file("audit.yts");
        let meta = meta2x2();
        let second_commit_len;
        {
            let mut store = Store::create(&path).unwrap();
            store.begin_collection(meta.clone()).unwrap();
            let data = topic_data(0);
            store
                .commit_snapshot(&TopicCommit {
                    topic: Topic::Higgs,
                    snapshot: 0,
                    date: meta.dates[0],
                    data: &data,
                    comments: None,
                    videos: &[],
                    quota_delta: 672,
                })
                .unwrap();
            let first_commit_len = store.log.len();
            let data = topic_data(50);
            store
                .commit_snapshot(&TopicCommit {
                    topic: Topic::Blm,
                    snapshot: 0,
                    date: meta.dates[0],
                    data: &data,
                    comments: None,
                    videos: &[],
                    quota_delta: 672,
                })
                .unwrap();
            second_commit_len = store.log.len();
            assert!(second_commit_len > first_commit_len);
        }
        // Tear off the last few bytes: the second pair's commit record is
        // damaged, the first pair's is untouched.
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(second_commit_len - 3).unwrap();
        drop(file);

        let mut store = Store::open(&path).unwrap();
        assert!(store.recovered_bytes() > 0);
        assert!(store.has_commit(Topic::Higgs, 0));
        assert!(!store.has_commit(Topic::Blm, 0));
        assert!(!store.complete());
        // The surviving pair loads intact.
        let loaded = store.load_topic_snapshot(Topic::Higgs, 0).unwrap();
        assert_eq!(loaded, topic_data(0));
        // And the torn pair can simply be re-committed.
        let data = topic_data(50);
        store
            .commit_snapshot(&TopicCommit {
                topic: Topic::Blm,
                snapshot: 0,
                date: meta.dates[0],
                data: &data,
                comments: None,
                videos: &[],
                quota_delta: 672,
            })
            .unwrap();
        assert!(store.has_commit(Topic::Blm, 0));
    }

    #[test]
    fn verify_detects_a_flipped_byte() {
        let dir = TempDir::new("store-verify");
        let path = dir.file("audit.yts");
        let mut store = Store::create(&path).unwrap();
        fill(&mut store);
        drop(store);

        let clean = Store::verify_path(&path).unwrap();
        assert!(clean.ok(), "{clean:?}");
        assert!(clean.complete);
        assert_eq!(clean.commits, 4);

        // Flip one byte that is provably inside a record payload (not a
        // frame header, which could masquerade as a torn tail).
        let mut target = None;
        log::scan(&path, |offset, payload| {
            if target.is_none() && payload.len() > 16 {
                target = Some(offset + log::FRAME_HEADER + 8);
            }
            Ok(())
        })
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[target.unwrap() as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let report = Store::verify_path(&path).unwrap();
        assert!(!report.ok());
        assert!(report.first_error.is_some(), "{report:?}");
        assert_eq!(report.torn_tail_bytes, 0);
        // And open() refuses interior damage outright.
        assert!(matches!(
            Store::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn compact_preserves_data_and_drops_orphans() {
        let dir = TempDir::new("store-compact");
        let path = dir.file("audit.yts");
        let mut store = Store::create(&path).unwrap();
        let expected = fill(&mut store);
        let compacted_path = dir.file("compacted.yts");
        let mut compacted = store.compact(&compacted_path).unwrap();
        assert!(compacted.complete());
        assert_eq!(compacted.load_dataset().unwrap(), expected);
        // Reopen the compacted file for good measure.
        drop(compacted);
        let mut reopened = Store::open(&compacted_path).unwrap();
        assert_eq!(reopened.load_dataset().unwrap(), expected);
    }

    #[test]
    fn plan_mismatch_and_double_commit_are_rejected() {
        let dir = TempDir::new("store-plan");
        let path = dir.file("audit.yts");
        let meta = meta2x2();
        let mut store = Store::create(&path).unwrap();
        store.begin_collection(meta.clone()).unwrap();
        // Same plan again: fine (resume).
        store.begin_collection(meta.clone()).unwrap();
        // A different plan: rejected.
        let mut other = meta.clone();
        other.fetch_comments = false;
        assert!(matches!(
            store.begin_collection(other),
            Err(StoreError::Plan(_))
        ));
        // Double commit of a pair: rejected.
        let data = topic_data(0);
        let commit = |store: &mut Store| {
            store.commit_snapshot(&TopicCommit {
                topic: Topic::Higgs,
                snapshot: 0,
                date: meta.dates[0],
                data: &data,
                comments: None,
                videos: &[],
                quota_delta: 1,
            })
        };
        commit(&mut store).unwrap();
        assert!(matches!(commit(&mut store), Err(StoreError::Plan(_))));
        // Wrong date: rejected.
        assert!(matches!(
            store.commit_snapshot(&TopicCommit {
                topic: Topic::Blm,
                snapshot: 1,
                date: meta.dates[0],
                data: &data,
                comments: None,
                videos: &[],
                quota_delta: 1,
            }),
            Err(StoreError::Plan(_))
        ));
        // Finishing with pairs missing: rejected.
        assert!(matches!(
            store.finish_collection(&[], 0),
            Err(StoreError::Plan(_))
        ));
    }

    #[test]
    fn rollback_open_resumes_to_canonical_bytes() {
        let dir = TempDir::new("store-rollback");
        // Canonical bytes: an uninterrupted fill.
        let canonical_path = dir.file("canonical.yts");
        {
            let mut store = Store::create(&canonical_path).unwrap();
            fill(&mut store);
        }
        let canonical = std::fs::read(&canonical_path).unwrap();

        // Replay the same fill but crash mid-third-pair: tear that
        // pair's commit record, leaving its blobs and blocks behind as
        // valid orphan frames that no commit covers.
        let path = dir.file("crashed.yts");
        let meta = meta2x2();
        let two_pairs_len;
        {
            let mut store = Store::create(&path).unwrap();
            store.begin_collection(meta.clone()).unwrap();
            commit_pair(&mut store, &meta, 0, 0);
            commit_pair(&mut store, &meta, 1, 0);
            two_pairs_len = store.log.len();
            commit_pair(&mut store, &meta, 0, 1);
        }
        let torn_len = std::fs::metadata(&path).unwrap().len() - 3;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(torn_len).unwrap();
        drop(file);

        // A plain open would keep the orphan frames; the rollback open
        // truncates back to the last durable record (the second commit).
        let mut store = Store::open_rollback(&path).unwrap();
        assert_eq!(store.stats().log_len, two_pairs_len);
        assert!(store.recovered_bytes() > 0);
        assert!(store.has_commit(Topic::Higgs, 0));
        assert!(store.has_commit(Topic::Blm, 0));
        assert!(!store.has_commit(Topic::Higgs, 1));

        // Re-committing the lost pairs and finishing reproduces the
        // uninterrupted byte stream exactly — no extra segment marker,
        // no orphan leftovers.
        commit_pair(&mut store, &meta, 0, 1);
        commit_pair(&mut store, &meta, 1, 1);
        let channels: Vec<ChannelInfo> = (0..3).map(channel_info).collect();
        store.finish_collection(&channels, 9).unwrap();
        drop(store);
        assert_eq!(std::fs::read(&path).unwrap(), canonical);
    }

    #[test]
    fn rollback_open_of_a_clean_store_changes_nothing() {
        let dir = TempDir::new("store-rollback-clean");
        let path = dir.file("audit.yts");
        let expected = {
            let mut store = Store::create(&path).unwrap();
            fill(&mut store)
        };
        let before = std::fs::read(&path).unwrap();
        let mut store = Store::open_rollback(&path).unwrap();
        assert_eq!(store.recovered_bytes(), 0);
        assert!(store.complete());
        assert_eq!(store.load_dataset().unwrap(), expected);
        drop(store);
        assert_eq!(std::fs::read(&path).unwrap(), before);
    }

    // The `store.pre-compact-rename` faultpoint is process-global, so
    // every test that traverses `compact_in_place` serializes here (a
    // concurrent armed test must not trip an unrelated compaction).
    static COMPACT_FAULT: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn compact_in_place_replaces_a_stale_tmp_from_a_torn_rename() {
        let _serial = COMPACT_FAULT.lock().unwrap_or_else(|p| p.into_inner());
        let dir = TempDir::new("store-compact-inplace");
        let path = dir.file("audit.yts");
        let mut store = Store::create(&path).unwrap();
        let expected = fill(&mut store);
        // A previous in-place compaction that crashed before its rename
        // leaves a stale tmp behind; the rerun must discard it and still
        // land the real compaction atomically.
        let tmp = sibling_with_suffix(&path, ".compact.tmp");
        std::fs::write(&tmp, b"stale half-written junk").unwrap();
        let mut compacted = store.compact_in_place().unwrap();
        assert_eq!(compacted.path(), path.as_path());
        assert!(compacted.complete());
        assert_eq!(compacted.load_dataset().unwrap(), expected);
        assert!(!tmp.exists(), "tmp must be consumed by the rename");
    }

    #[test]
    fn compaction_crash_before_rename_leaves_the_old_store_intact() {
        let _serial = COMPACT_FAULT.lock().unwrap_or_else(|p| p.into_inner());
        let dir = TempDir::new("store-compact-crash");
        let path = dir.file("audit.yts");
        let mut store = Store::create(&path).unwrap();
        let expected = fill(&mut store);
        let before = std::fs::read(&path).unwrap();

        // Kill the process at the install boundary: the compacted tmp is
        // fully written and synced, but the rename never happens.
        faultpoint::arm("store.pre-compact-rename", 1);
        let tripped = store.compact_in_place();
        faultpoint::reset();
        assert!(tripped.is_err(), "armed compaction must trip");

        // The original file is byte-identical and the tmp is a stale
        // sibling — exactly the state the rerun path is built for.
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let tmp = sibling_with_suffix(&path, ".compact.tmp");
        assert!(tmp.exists(), "crash landed after the tmp was written");

        // Reopening and rerunning the compaction converges.
        let mut compacted = Store::open(&path).unwrap().compact_in_place().unwrap();
        assert!(compacted.complete());
        assert_eq!(compacted.load_dataset().unwrap(), expected);
        assert!(!tmp.exists(), "rerun must consume the stale tmp");
    }

    #[test]
    fn fsync_dir_handles_nested_and_bare_paths() {
        let dir = TempDir::new("store-fsync-dir");
        let path = dir.file("audit.yts");
        std::fs::write(&path, b"x").unwrap();
        fsync_dir_of(&path).unwrap();
        // A bare file name syncs the current directory.
        fsync_dir_of(Path::new("bare-file-name")).unwrap();
    }

    #[test]
    fn known_channel_ids_survive_reopen() {
        let dir = TempDir::new("store-channels");
        let path = dir.file("audit.yts");
        {
            let mut store = Store::create(&path).unwrap();
            fill(&mut store);
        }
        let store = Store::open(&path).unwrap();
        let ids = CollectorSink::known_channel_ids(&store).unwrap();
        assert_eq!(
            ids,
            vec![
                ChannelId::new("ch-000"),
                ChannelId::new("ch-001"),
                ChannelId::new("ch-002")
            ]
        );
    }
}
