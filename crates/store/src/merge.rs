//! Deterministic merge/compact of shard stores into one canonical
//! store.
//!
//! A `collect --shards N` run produces `N` topic-shard stores (each a
//! complete collection over its topic subset, channels off) plus one
//! *finish* store holding only the end-of-collection channel metadata.
//! [`merge_shards`] folds them back into a single `.yts` by
//! re-committing every `(topic, snapshot)` pair in *parent plan order*
//! (snapshot-major, then the parent topic order) into a fresh store —
//! the exact order and dedup behaviour of a single-sink run — then
//! replaying the finish store's channels and end record. The output is
//! therefore byte-identical to what `collect` without `--shards` writes.
//!
//! Durability follows the store's own WAL discipline: the merge writes
//! into a `.merging` sibling, commits pair by pair (each commit
//! fsynced), and only renames over the destination once the file is
//! complete and the directory synced. A crashed merge is resumed by
//! reopening the tmp with [`Store::open_rollback`], which truncates any
//! uncommitted orphan frames so the resumed byte stream continues
//! exactly where a crash-free writer would have been.

use crate::error::{Result, StoreError};
use crate::records::CollectionMeta;
use crate::store::{fsync_dir_of, sibling_with_suffix, Store};
use std::path::{Path, PathBuf};
use ytaudit_core::collect::TopicCommit;
use ytaudit_core::shard::ShardSpec;
use ytaudit_platform::faultpoint;
use ytaudit_types::Topic;

/// What a merge did, for `ytaudit store merge` reporting.
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// Pairs the parent plan calls for.
    pub pairs_total: usize,
    /// Pairs re-committed by this invocation (fewer than `pairs_total`
    /// when resuming a crashed merge).
    pub pairs_merged: usize,
    /// Whether a partially written merge was picked up and continued.
    pub resumed: bool,
    /// Size of the merged log, in bytes.
    pub bytes: u64,
}

fn dest_with_tag(dest: &Path, tag: &str) -> PathBuf {
    let stem = dest.file_stem().and_then(|s| s.to_str()).unwrap_or("store");
    let ext = dest.extension().and_then(|s| s.to_str()).unwrap_or("yts");
    dest.with_file_name(format!("{stem}.{tag}.{ext}"))
}

/// The canonical path for topic shard `index` of a run whose merged
/// output will live at `dest`: named after the topic when the shard owns
/// exactly one (`audit.shard-higgs.yts`), by index otherwise
/// (`audit.shard-0.yts`).
pub fn shard_store_path(dest: &Path, index: usize, topics: &[Topic]) -> PathBuf {
    match topics {
        [only] => dest_with_tag(dest, &format!("shard-{}", only.key())),
        _ => dest_with_tag(dest, &format!("shard-{index}")),
    }
}

/// The canonical path for the finish (channels-only) store of a run
/// whose merged output will live at `dest`.
pub fn finish_store_path(dest: &Path) -> PathBuf {
    dest_with_tag(dest, "channels")
}

/// Finds the shard stores belonging to `dest` by their canonical names
/// (`<stem>.shard-*.<ext>` plus `<stem>.channels.<ext>`), sorted for a
/// deterministic open order. Identity is still validated from the shard
/// specs stored in each file — the names are only discovery.
pub fn discover_shard_paths(dest: &Path) -> Result<Vec<PathBuf>> {
    let dir = dest
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    discover_shard_paths_in(dest, dir)
}

/// Like [`discover_shard_paths`], but scanning `dir` instead of the
/// directory `dest` lives in — for shard sets staged somewhere else
/// (a worker's scratch directory, a download area) before the merge.
pub fn discover_shard_paths_in(dest: &Path, dir: &Path) -> Result<Vec<PathBuf>> {
    let stem = dest.file_stem().and_then(|s| s.to_str()).unwrap_or("store");
    let ext = dest.extension().and_then(|s| s.to_str()).unwrap_or("yts");
    let shard_prefix = format!("{stem}.shard-");
    let channels_name = format!("{stem}.channels.{ext}");
    let suffix = format!(".{ext}");
    let mut paths = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if (name.starts_with(&shard_prefix) && name.ends_with(&suffix)) || name == channels_name {
            paths.push(entry.path());
        }
    }
    if paths.is_empty() {
        return Err(StoreError::Plan(format!(
            "no shard stores named {shard_prefix}*{suffix} next to {}",
            dest.display()
        )));
    }
    paths.sort();
    Ok(paths)
}

struct ShardSet {
    parent: CollectionMeta,
    /// Topic shards slotted by shard index.
    topic_shards: Vec<Store>,
    finish: Store,
}

/// Opens and validates the shard stores: every store must be complete,
/// carry a shard spec, hold exactly the topics its spec assigns it, and
/// agree on the parent plan; together they must cover shard indexes
/// `0..count` plus the finish shard, each exactly once.
fn open_shard_set(shard_paths: &[PathBuf]) -> Result<ShardSet> {
    let mut parent: Option<CollectionMeta> = None;
    let mut topic_slots: Vec<Option<Store>> = Vec::new();
    let mut finish: Option<Store> = None;
    for path in shard_paths {
        let store = Store::open(path)?;
        let plan_err = |detail: String| StoreError::Plan(format!("{}: {detail}", path.display()));
        let meta = store
            .collection_meta()
            .cloned()
            .ok_or_else(|| plan_err("store holds no collection".into()))?;
        let spec: ShardSpec = meta
            .shard
            .clone()
            .ok_or_else(|| plan_err("not a shard store (no shard spec in its manifest)".into()))?;
        if !store.complete() {
            return Err(plan_err(format!(
                "shard {}/{} is incomplete ({}/{} pairs); finish collecting before merging",
                spec.index,
                spec.count,
                store.committed_pairs(),
                meta.pairs()
            )));
        }
        if meta.topics != spec.expected_topics() {
            return Err(plan_err(format!(
                "shard {} holds topics {:?} but its spec assigns {:?}",
                spec.index,
                meta.topics,
                spec.expected_topics()
            )));
        }
        let this_parent = CollectionMeta {
            topics: spec.parent_topics.clone(),
            fetch_channels: spec.parent_fetch_channels,
            shard: None,
            ..meta.clone()
        };
        match &parent {
            None => {
                parent = Some(this_parent);
                topic_slots = (0..spec.count).map(|_| None).collect();
            }
            Some(existing) if existing.platform != this_parent.platform => {
                return Err(StoreError::PlatformMismatch {
                    stored: existing.platform,
                    requested: this_parent.platform,
                });
            }
            Some(existing) if *existing != this_parent => {
                return Err(plan_err(
                    "shard belongs to a different parent plan than the other shards".into(),
                ));
            }
            Some(_) => {}
        }
        let slot_taken = if spec.is_finish() {
            finish.replace(store).is_some()
        } else {
            match topic_slots.get_mut(spec.index) {
                Some(slot) => slot.replace(store).is_some(),
                None => {
                    return Err(plan_err(format!(
                        "shard index {} out of range for a {}-way split",
                        spec.index, spec.count
                    )));
                }
            }
        };
        if slot_taken {
            return Err(plan_err(format!(
                "two stores claim shard index {}",
                spec.index
            )));
        }
    }
    let parent = parent.ok_or_else(|| StoreError::Plan("no shard stores given".into()))?;
    let mut topic_shards = Vec::with_capacity(topic_slots.len());
    for (index, slot) in topic_slots.into_iter().enumerate() {
        topic_shards.push(slot.ok_or_else(|| {
            StoreError::Plan(format!(
                "shard index {index} is missing from the given stores"
            ))
        })?);
    }
    let finish = finish
        .ok_or_else(|| StoreError::Plan("the finish (channels) shard store is missing".into()))?;
    Ok(ShardSet {
        parent,
        topic_shards,
        finish,
    })
}

/// Merges the given shard stores into a canonical single store at
/// `dest`, byte-identical to a single-sink collection of the parent
/// plan. Resumable: if a previous merge crashed, its `.merging` tmp is
/// rolled back to the last durable record and continued; `dest` itself
/// only ever appears complete, via a final atomic rename.
pub fn merge_shards(dest: &Path, shard_paths: &[PathBuf]) -> Result<MergeReport> {
    if dest.exists() {
        return Err(StoreError::Plan(format!(
            "{} already exists; merging would overwrite it",
            dest.display()
        )));
    }
    let mut set = open_shard_set(shard_paths)?;
    let count = set.topic_shards.len();

    let tmp = sibling_with_suffix(dest, ".merging");
    let resumed = tmp.exists();
    let mut out = if resumed {
        Store::open_rollback(&tmp)?
    } else {
        Store::create(&tmp)?
    };
    out.begin_collection(set.parent.clone())?;

    let mut pairs_merged = 0;
    for (snapshot, &date) in set.parent.dates.iter().enumerate() {
        for (position, &topic) in set.parent.topics.iter().enumerate() {
            if out.has_commit(topic, snapshot) {
                continue;
            }
            let owner = ShardSpec::owner_of(position, count);
            let shard = set
                .topic_shards
                .get_mut(owner)
                .ok_or_else(|| StoreError::Plan(format!("no shard at index {owner}")))?;
            let data = shard.load_topic_snapshot(topic, snapshot)?;
            let comments = shard.load_comments(topic, snapshot)?;
            let videos = shard.load_video_meta(topic, snapshot)?;
            let quota_delta = shard.pair_quota_delta(topic, snapshot)?;
            out.commit_snapshot(&TopicCommit {
                topic,
                snapshot,
                date,
                data: &data,
                comments: comments.as_ref(),
                videos: &videos,
                quota_delta,
            })?;
            pairs_merged += 1;
        }
    }
    if !out.complete() {
        if faultpoint::should_trip("merge.pre-finish") {
            return Err(StoreError::Io(std::io::Error::other(
                "injected crash: merge.pre-finish",
            )));
        }
        let channels = set.finish.load_channels()?;
        out.finish_collection(&channels, set.finish.final_quota_delta().unwrap_or(0))?;
    }
    let report = MergeReport {
        pairs_total: set.parent.pairs(),
        pairs_merged,
        resumed,
        bytes: out.stats().log_len,
    };
    drop(out);
    fsync_dir_of(&tmp)?;
    if faultpoint::should_trip("merge.pre-rename") {
        return Err(StoreError::Io(std::io::Error::other(
            "injected crash: merge.pre-rename",
        )));
    }
    std::fs::rename(&tmp, dest)?;
    fsync_dir_of(dest)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_paths_are_topic_named_when_singular() {
        let dest = Path::new("/data/audit.yts");
        assert_eq!(
            shard_store_path(dest, 0, &[Topic::Higgs]),
            Path::new("/data/audit.shard-higgs.yts")
        );
        assert_eq!(
            shard_store_path(dest, 2, &[Topic::Higgs, Topic::Blm]),
            Path::new("/data/audit.shard-2.yts")
        );
        assert_eq!(
            shard_store_path(dest, 1, &[]),
            Path::new("/data/audit.shard-1.yts")
        );
        assert_eq!(
            finish_store_path(dest),
            Path::new("/data/audit.channels.yts")
        );
    }

    #[test]
    fn discovery_requires_at_least_one_shard() {
        let dir = crate::tempdir::TempDir::new("merge-discover-empty");
        let dest = dir.file("audit.yts");
        assert!(matches!(
            discover_shard_paths(&dest),
            Err(StoreError::Plan(_))
        ));
    }

    #[test]
    fn discovery_finds_canonically_named_stores() {
        let dir = crate::tempdir::TempDir::new("merge-discover");
        let dest = dir.file("audit.yts");
        let a = shard_store_path(&dest, 0, &[Topic::Higgs]);
        let b = shard_store_path(&dest, 1, &[]);
        let c = finish_store_path(&dest);
        for p in [&a, &b, &c] {
            std::fs::write(p, b"x").unwrap();
        }
        // Unrelated files are not picked up.
        std::fs::write(dir.file("other.shard-0.yts"), b"x").unwrap();
        std::fs::write(dir.file("audit.shard-0.bak"), b"x").unwrap();
        let mut expected = vec![a, b, c];
        expected.sort();
        assert_eq!(discover_shard_paths(&dest).unwrap(), expected);
    }
}
