//! A committed-frame tail reader: the input side of `analyze --follow`.
//!
//! [`TailReader`] scans a store log *while a collector is appending to
//! it*, emitting one [`TailEvent`] per structural record — the plan, each
//! committed `(topic, snapshot)` pair (fully resolved: hour blocks,
//! metadata coverage, comment crawl, fetched video metadata), and the end
//! marker. It never opens the log for writing, so it cannot truncate a
//! live store the way [`crate::Store::open`] would; and it only ever
//! advances its position past CRC-valid frames, so a torn or mid-write
//! tail simply *stalls* the reader until the writer's next fsync makes
//! the frame whole.
//!
//! A commit that the reader can see was fsynced after every record it
//! references, so resolving a committed pair only ever reads complete
//! frames at lower offsets.

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use crate::log::{self, FRAME_HEADER, MAX_RECORD};
use crate::records::{
    blob_hash, decode_channel_info, decode_comment, decode_video_id, decode_video_info,
    topic_from_code, CollectionMeta, CommitRecord, Record, BLOB_CHANNEL_INFO, BLOB_COMMENT,
    BLOB_VIDEO_ID, BLOB_VIDEO_INFO, PURPOSE_CHANNELS, PURPOSE_COMMENTS, PURPOSE_META_RETURNED,
    PURPOSE_VIDEO_META, TAG_BLOB,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use ytaudit_core::dataset::{
    ChannelInfo, CommentFetchError, CommentsSnapshot, HourlyResult, TopicSnapshot, VideoInfo,
};
use ytaudit_types::{Timestamp, Topic, VideoId};

/// One structural record read off the tail of a store log.
#[derive(Debug, Clone)]
pub enum TailEvent {
    /// The collection plan landed.
    Begin(CollectionMeta),
    /// One `(topic, snapshot)` pair committed, fully resolved.
    Pair {
        /// The pair's topic.
        topic: Topic,
        /// Snapshot index within the plan.
        snapshot: usize,
        /// The snapshot's collection date.
        date: Timestamp,
        /// The committed search results.
        data: TopicSnapshot,
        /// The pair's comment crawl, when one was collected.
        comments: Option<CommentsSnapshot>,
        /// Video metadata fetched alongside this pair.
        videos: Vec<VideoInfo>,
        /// Quota units the pair's commit recorded.
        quota_delta: u64,
    },
    /// The collection finished.
    End {
        /// The end-of-collection channel metadata.
        channels: Vec<ChannelInfo>,
        /// Quota spent after the last pair commit.
        quota_final_delta: u64,
    },
}

/// What one [`TailReader::poll`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollOutcome {
    /// Structural events delivered to the callback.
    pub events: u64,
    /// Whether the pass stopped at an incomplete (in-flight or torn)
    /// tail frame rather than the end of the file.
    pub stalled: bool,
}

/// An incremental, read-only reader over a (possibly still growing)
/// store log.
#[derive(Debug)]
pub struct TailReader {
    file: File,
    path: PathBuf,
    /// Next unread frame offset. Only ever advances past CRC-valid
    /// frames.
    pos: u64,
    /// Blob content address → frame offset, for resolving commits.
    content: HashMap<u64, u64>,
    meta: Option<CollectionMeta>,
    ended: bool,
}

impl TailReader {
    /// Opens `path` read-only, positioned before the first frame. The
    /// file must already exist with a valid store magic (a collector
    /// creates and syncs the magic before its first append).
    pub fn open(path: &Path) -> Result<TailReader> {
        let mut file = File::open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != log::MAGIC {
            return Err(StoreError::corrupt(0, "bad magic: not a ytaudit store"));
        }
        Ok(TailReader {
            file,
            path: path.to_path_buf(),
            pos: log::MAGIC.len() as u64,
            content: HashMap::new(),
            meta: None,
            ended: false,
        })
    }

    /// The stored collection plan, once its Begin frame has been read.
    pub fn collection_meta(&self) -> Option<&CollectionMeta> {
        self.meta.as_ref()
    }

    /// Whether the end-of-collection record has been read.
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// Byte offset of the next unread frame.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Reads every new complete frame since the last poll, delivering
    /// structural records to `f`. A frame that fails its length or
    /// checksum validation stalls the pass (the writer may be mid-append;
    /// the frame is re-read on the next poll) — the reader's position
    /// never moves past it.
    pub fn poll<F>(&mut self, mut f: F) -> Result<PollOutcome>
    where
        F: FnMut(TailEvent) -> Result<()>,
    {
        self.check_not_replaced()?;
        let file_len = self.file.metadata()?.len();
        let mut events = 0u64;
        let mut stalled = false;
        while self.pos < file_len {
            let Some(payload) = self.read_frame_at(self.pos, file_len)? else {
                stalled = true;
                break;
            };
            let frame_len = FRAME_HEADER + payload.len() as u64;
            if let Some(event) = self.absorb(self.pos, &payload)? {
                f(event)?;
                events += 1;
            }
            self.pos += frame_len;
        }
        Ok(PollOutcome { events, stalled })
    }

    /// Fails the poll if the file at the reader's path is no longer the
    /// file this reader holds open — `compact_in_place` renames a
    /// rewritten log over the original, and the frame offsets this
    /// reader has absorbed are meaningless against the new bytes. The
    /// open handle still reads the old (pre-compaction) inode, so
    /// without this check the reader would keep serving a file nobody
    /// is appending to, silently falling behind the live store.
    #[cfg(unix)]
    fn check_not_replaced(&self) -> Result<()> {
        use std::os::unix::fs::MetadataExt;
        let open = self.file.metadata()?;
        let disk = std::fs::metadata(&self.path)?;
        if open.dev() != disk.dev() || open.ino() != disk.ino() {
            return Err(StoreError::Plan(format!(
                "{} was replaced under this reader (compacted in place?); its frame \
                 offsets no longer describe the file on disk — reopen to keep following",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Non-Unix fallback: file identity cannot be compared, so a
    /// replaced file is not detected and the reader simply stalls at
    /// the old file's end.
    #[cfg(not(unix))]
    fn check_not_replaced(&self) -> Result<()> {
        Ok(())
    }

    /// Reads the frame at `offset`, or `None` when it is incomplete or
    /// fails validation against `file_len` bytes of file.
    fn read_frame_at(&mut self, offset: u64, file_len: u64) -> Result<Option<Vec<u8>>> {
        if file_len - offset < FRAME_HEADER {
            return Ok(None);
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let mut len_bytes = [0u8; 4];
        let mut crc_bytes = [0u8; 4];
        self.file.read_exact(&mut len_bytes)?;
        self.file.read_exact(&mut crc_bytes)?;
        let len = u32::from_le_bytes(len_bytes);
        let crc = u32::from_le_bytes(crc_bytes);
        if len == 0 || len > MAX_RECORD || file_len - offset - FRAME_HEADER < u64::from(len) {
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Ok(None);
        }
        Ok(Some(payload))
    }

    /// Absorbs one decoded frame into the reader's index, returning the
    /// structural event it carries, if any.
    fn absorb(&mut self, offset: u64, payload: &[u8]) -> Result<Option<TailEvent>> {
        let record = Record::decode(payload).map_err(|e| StoreError::corrupt(offset, e))?;
        match record {
            Record::Segment { .. } => Ok(None),
            Record::Begin(meta) => {
                if meta.shard.is_some() {
                    return Err(StoreError::Plan(format!(
                        "{} is one shard of a sharded collection; merge the shards \
                         first, then follow the merged store",
                        self.path.display()
                    )));
                }
                if self.meta.is_some() {
                    return Err(StoreError::corrupt(offset, "duplicate collection plan"));
                }
                self.meta = Some(meta.clone());
                Ok(Some(TailEvent::Begin(meta)))
            }
            Record::Blob { kind, body } => {
                self.content.insert(blob_hash(kind, &body), offset);
                Ok(None)
            }
            Record::HourBlock { .. } | Record::RefBlock { .. } => Ok(None),
            Record::Commit(commit) => {
                let meta = self.meta.as_ref().ok_or_else(|| {
                    StoreError::corrupt(offset, "commit before the collection plan")
                })?;
                let topic =
                    topic_from_code(commit.topic).map_err(|e| StoreError::corrupt(offset, e))?;
                let date = Timestamp(commit.date);
                if !meta.topics.contains(&topic) {
                    return Err(StoreError::corrupt(
                        offset,
                        format!("commit for {topic:?}, which is not in the plan"),
                    ));
                }
                let (data, comments, videos) = self.resolve_commit(&commit)?;
                Ok(Some(TailEvent::Pair {
                    topic,
                    snapshot: commit.snapshot as usize,
                    date,
                    data,
                    comments,
                    videos,
                    quota_delta: commit.quota_delta,
                }))
            }
            Record::End {
                quota_final_delta,
                channels_offset,
            } => {
                let mut channels = Vec::new();
                if channels_offset != 0 {
                    for r in self.read_ref_block(channels_offset, PURPOSE_CHANNELS)? {
                        let body = self.blob_body(r, BLOB_CHANNEL_INFO)?;
                        channels.push(
                            decode_channel_info(&body)
                                .map_err(|e| StoreError::corrupt(channels_offset, e))?,
                        );
                    }
                }
                self.ended = true;
                Ok(Some(TailEvent::End {
                    channels,
                    quota_final_delta,
                }))
            }
        }
    }

    /// Resolves a commit's hour blocks, coverage list, comment crawl, and
    /// video metadata through the blob index.
    fn resolve_commit(
        &mut self,
        commit: &CommitRecord,
    ) -> Result<(TopicSnapshot, Option<CommentsSnapshot>, Vec<VideoInfo>)> {
        let mut hours = Vec::with_capacity(commit.hours.len());
        for &(hour, offset) in &commit.hours {
            let payload = self.read_committed_frame(offset)?;
            match Record::decode(&payload).map_err(|e| StoreError::corrupt(offset, e))? {
                Record::HourBlock {
                    hour: block_hour,
                    total_results,
                    refs,
                    ..
                } if block_hour == hour => {
                    let mut video_ids = Vec::with_capacity(refs.len());
                    for r in refs {
                        let body = self.blob_body(r, BLOB_VIDEO_ID)?;
                        video_ids.push(
                            decode_video_id(&body).map_err(|e| StoreError::corrupt(offset, e))?,
                        );
                    }
                    hours.push(HourlyResult {
                        hour,
                        video_ids,
                        total_results,
                    });
                }
                _ => {
                    return Err(StoreError::corrupt(
                        offset,
                        format!("commit indexes hour {hour} with no matching hour block"),
                    ))
                }
            }
        }
        let mut meta_returned = Vec::new();
        if commit.meta_offset != 0 {
            for r in self.read_ref_block(commit.meta_offset, PURPOSE_META_RETURNED)? {
                let body = self.blob_body(r, BLOB_VIDEO_ID)?;
                meta_returned
                    .push(decode_video_id(&body).map_err(|e| StoreError::corrupt(0, e))?);
            }
        }
        let comments = if commit.comments_offset == 0 {
            None
        } else {
            let mut records = Vec::new();
            for r in self.read_ref_block(commit.comments_offset, PURPOSE_COMMENTS)? {
                let body = self.blob_body(r, BLOB_COMMENT)?;
                records.push(decode_comment(&body).map_err(|e| StoreError::corrupt(0, e))?);
            }
            let fetch_errors = commit
                .comment_errors
                .iter()
                .map(|(video_id, error)| CommentFetchError {
                    video_id: VideoId::new(video_id.clone()),
                    error: error.clone(),
                })
                .collect();
            Some(CommentsSnapshot {
                comments: records,
                fetch_errors,
            })
        };
        let mut videos = Vec::new();
        if commit.videos_offset != 0 {
            for r in self.read_ref_block(commit.videos_offset, PURPOSE_VIDEO_META)? {
                let body = self.blob_body(r, BLOB_VIDEO_INFO)?;
                videos.push(decode_video_info(&body).map_err(|e| StoreError::corrupt(0, e))?);
            }
        }
        Ok((
            TopicSnapshot {
                hours,
                meta_returned,
            },
            comments,
            videos,
        ))
    }

    /// Reads a frame a commit references. Referenced frames precede the
    /// commit and were fsynced before it, so anything short or invalid
    /// here is corruption, not an in-flight write.
    fn read_committed_frame(&mut self, offset: u64) -> Result<Vec<u8>> {
        if offset < log::MAGIC.len() as u64 || offset >= self.pos {
            return Err(StoreError::corrupt(
                offset,
                "committed reference points outside the frames read so far",
            ));
        }
        self.read_frame_at(offset, self.pos)?.ok_or_else(|| {
            StoreError::corrupt(offset, "committed reference resolves to an invalid frame")
        })
    }

    fn read_ref_block(&mut self, offset: u64, purpose: u8) -> Result<Vec<u64>> {
        let payload = self.read_committed_frame(offset)?;
        match Record::decode(&payload).map_err(|e| StoreError::corrupt(offset, e))? {
            Record::RefBlock {
                purpose: p, refs, ..
            } if p == purpose => Ok(refs),
            _ => Err(StoreError::corrupt(
                offset,
                format!("expected a purpose-{purpose} ref block"),
            )),
        }
    }

    fn blob_body(&mut self, hash: u64, kind: u8) -> Result<Vec<u8>> {
        let &offset = self.content.get(&hash).ok_or_else(|| {
            StoreError::corrupt(0, format!("dangling blob reference {hash:#018x}"))
        })?;
        let payload = self.read_committed_frame(offset)?;
        // ytlint: allow(indexing) — the len() < 2 guard short-circuits first
        if payload.len() < 2 || payload[0] != TAG_BLOB || payload[1] != kind {
            return Err(StoreError::corrupt(
                offset,
                format!("reference {hash:#018x} does not point at a kind-{kind} blob"),
            ));
        }
        Ok(payload[2..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use crate::tempdir::TempDir;
    use ytaudit_core::collect::TopicCommit;
    use ytaudit_core::shard::ShardSpec;

    fn meta1x2() -> CollectionMeta {
        CollectionMeta {
            topics: vec![Topic::Higgs],
            dates: vec![
                Timestamp::from_ymd(2025, 2, 9).unwrap(),
                Timestamp::from_ymd(2025, 2, 14).unwrap(),
            ],
            hourly_bins: true,
            fetch_metadata: false,
            fetch_channels: false,
            fetch_comments: false,
            shard: None,
            platform: ytaudit_types::PlatformKind::Youtube,
        }
    }

    fn data(base: u32) -> TopicSnapshot {
        TopicSnapshot {
            hours: vec![HourlyResult {
                hour: 3,
                video_ids: vec![
                    VideoId::new(format!("vid-{base}")),
                    VideoId::new(format!("vid-{}", base + 1)),
                ],
                total_results: 1_000 + u64::from(base),
            }],
            meta_returned: Vec::new(),
        }
    }

    #[test]
    fn tailing_a_growing_store_sees_each_commit_once() {
        let dir = TempDir::new("tail-grow");
        let path = dir.file("audit.yts");
        let meta = meta1x2();
        let mut store = Store::create(&path).unwrap();
        let mut reader = TailReader::open(&path).unwrap();

        let mut seen = Vec::new();
        fn collect(reader: &mut TailReader, events: &mut Vec<String>) {
            let outcome = reader
                .poll(|event| {
                    events.push(match event {
                        TailEvent::Begin(_) => "begin".to_string(),
                        TailEvent::Pair { snapshot, .. } => format!("pair-{snapshot}"),
                        TailEvent::End { .. } => "end".to_string(),
                    });
                    Ok(())
                })
                .unwrap();
            assert!(!outcome.stalled);
        }

        collect(&mut reader, &mut seen);
        assert!(seen.is_empty(), "nothing committed yet");

        store.begin_collection(meta.clone()).unwrap();
        for (idx, &date) in meta.dates.iter().enumerate() {
            store
                .commit_snapshot(&TopicCommit {
                    topic: Topic::Higgs,
                    snapshot: idx,
                    date,
                    data: &data(idx as u32 * 10),
                    comments: None,
                    videos: &[],
                    quota_delta: 7,
                })
                .unwrap();
            collect(&mut reader, &mut seen);
        }
        store.finish_collection(&[], 2).unwrap();
        collect(&mut reader, &mut seen);
        assert_eq!(seen, vec!["begin", "pair-0", "pair-1", "end"]);
        assert!(reader.ended());

        // A further poll is a no-op, not a replay.
        collect(&mut reader, &mut seen);
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn pairs_resolve_to_the_bytes_the_store_loads() {
        let dir = TempDir::new("tail-resolve");
        let path = dir.file("audit.yts");
        let meta = meta1x2();
        let mut store = Store::create(&path).unwrap();
        store.begin_collection(meta.clone()).unwrap();
        for (idx, &date) in meta.dates.iter().enumerate() {
            store
                .commit_snapshot(&TopicCommit {
                    topic: Topic::Higgs,
                    snapshot: idx,
                    date,
                    data: &data(idx as u32), // overlapping IDs force dedup
                    comments: None,
                    videos: &[],
                    quota_delta: 7,
                })
                .unwrap();
        }

        let mut reader = TailReader::open(&path).unwrap();
        let mut pairs = Vec::new();
        reader
            .poll(|event| {
                if let TailEvent::Pair { snapshot, data, .. } = event {
                    pairs.push((snapshot, data));
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(pairs.len(), 2);
        for (snapshot, got) in pairs {
            assert_eq!(got, store.load_topic_snapshot(Topic::Higgs, snapshot).unwrap());
        }
    }

    #[test]
    fn torn_tail_stalls_and_recovers_when_the_frame_completes() {
        let dir = TempDir::new("tail-torn");
        let path = dir.file("audit.yts");
        let meta = meta1x2();
        let mut store = Store::create(&path).unwrap();
        store.begin_collection(meta.clone()).unwrap();
        store
            .commit_snapshot(&TopicCommit {
                topic: Topic::Higgs,
                snapshot: 0,
                date: meta.dates[0],
                data: &data(0),
                comments: None,
                videos: &[],
                quota_delta: 7,
            })
            .unwrap();
        drop(store);

        // Append half a frame by hand: a reader must stall, not error.
        let whole = std::fs::read(&path).unwrap();
        let mut torn = whole.clone();
        torn.extend_from_slice(&40u32.to_le_bytes());
        torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        torn.extend_from_slice(&[0xAB; 11]);
        std::fs::write(&path, &torn).unwrap();

        let mut reader = TailReader::open(&path).unwrap();
        let mut events = 0;
        let outcome = reader
            .poll(|_| {
                events += 1;
                Ok(())
            })
            .unwrap();
        assert!(outcome.stalled);
        assert_eq!(events, 2, "begin + pair before the torn frame");
        let stall_pos = reader.position();
        assert_eq!(stall_pos, whole.len() as u64);

        // The writer finishes the frame (here: a real store reopens,
        // truncates the tear, and commits the pair for real).
        let mut store = Store::open(&path).unwrap();
        store
            .commit_snapshot(&TopicCommit {
                topic: Topic::Higgs,
                snapshot: 1,
                date: meta.dates[1],
                data: &data(10),
                comments: None,
                videos: &[],
                quota_delta: 7,
            })
            .unwrap();
        drop(store);

        let outcome = reader
            .poll(|_| {
                events += 1;
                Ok(())
            })
            .unwrap();
        assert!(!outcome.stalled);
        assert_eq!(events, 3, "only the second pair; the segment frame is silent");
    }

    #[test]
    fn shard_stores_are_rejected() {
        let dir = TempDir::new("tail-shard");
        let path = dir.file("shard.yts");
        let mut store = Store::create(&path).unwrap();
        store
            .begin_collection(CollectionMeta {
                shard: Some(ShardSpec {
                    index: 0,
                    count: 2,
                    parent_topics: vec![Topic::Higgs],
                    parent_fetch_channels: false,
                }),
                ..meta1x2()
            })
            .unwrap();
        drop(store);
        let mut reader = TailReader::open(&path).unwrap();
        assert!(matches!(
            reader.poll(|_| Ok(())),
            Err(StoreError::Plan(_))
        ));
    }

    #[test]
    fn non_store_files_are_rejected() {
        let dir = TempDir::new("tail-magic");
        let path = dir.file("not-a-store");
        std::fs::write(&path, b"definitely json").unwrap();
        assert!(matches!(
            TailReader::open(&path),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
    }
}
