//! CRC-32 (IEEE 802.3 / zlib polynomial), hand-rolled: the record log
//! checksums every payload, and — consistent with the in-tree HTTP stack —
//! no external checksum crate is pulled in.

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes`: reflected IEEE polynomial, `0xFFFF_FFFF` initial
/// value and final XOR — the same parameterization as zlib, Ethernet, and
/// PNG, so byte streams can be cross-checked with external tools.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for this parameterization.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"length-prefixed record payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
