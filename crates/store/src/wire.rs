//! Binary framing primitives: little-endian fixed-width integers and
//! length-prefixed byte strings, with a bounds-checked reader whose errors
//! carry enough detail for corruption reports.

/// Appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Decoding failure: a human-readable description of what went wrong at
/// which position inside the payload.
pub type WireError = String;

/// Bounds-checked little-endian reader over a payload slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole payload was consumed — catches records with
    /// trailing garbage that a valid checksum would otherwise hide.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after record body", self.remaining()))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(format!(
                "truncated {what} at byte {}: need {n}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into a fixed array. Length is enforced by
    /// `take`, so the conversion never involves a fallible slice cast.
    fn array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], WireError> {
        let slice = self.take(N, what)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.array::<1>("u8")?;
        Ok(b)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array("u16")?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array("u32")?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array("u64")?))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.array("i64")?))
    }

    /// Reads a boolean byte, rejecting values other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid boolean byte {other:#04x}")),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len, "byte string")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|e| format!("invalid UTF-8: {e}"))
    }

    /// Consumes and returns everything left (used for blob bodies, whose
    /// length is implied by the record frame).
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-86_400);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("dQw4w9WgXcQ");
        w.put_bytes(b"");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -86_400);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "dQw4w9WgXcQ");
        assert_eq!(r.bytes().unwrap(), b"");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(r.u64().is_err());

        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(r.expect_end().is_err());

        // A length prefix larger than the remaining payload.
        let mut w = Writer::new();
        w.put_u32(1_000);
        w.put_u8(1);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).bytes().is_err());

        assert!(Reader::new(&[9]).bool().is_err());
    }
}
