//! The append-only record log: length-prefixed, CRC-checksummed frames in
//! a single file, WAL-style.
//!
//! ```text
//! file   := MAGIC frame*
//! frame  := len:u32le crc:u32le payload[len]     (crc = CRC-32 of payload)
//! ```
//!
//! Appends only ever extend the file, so an interrupted write leaves a
//! *torn tail*: a final frame whose header or payload is cut short. A scan
//! detects this (the frame overruns the end of the file) and the opener
//! truncates back to the last complete frame. A checksum mismatch on an
//! *interior* frame can never be produced by a torn write — it means the
//! bytes changed after they were written — and is reported as corruption
//! rather than silently discarded.

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: identifies a ytaudit snapshot store, version 1.
pub const MAGIC: &[u8; 8] = b"YTAUDST1";

/// Bytes of frame header (length + checksum).
pub const FRAME_HEADER: u64 = 8;

/// Upper bound on a single record payload; anything larger is treated as
/// a corrupt length field rather than an allocation request.
pub const MAX_RECORD: u32 = 1 << 28; // 256 MiB

/// Why a scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Fewer than [`FRAME_HEADER`] bytes remained — a cut-off header.
    TruncatedHeader,
    /// The frame's payload extends past the end of the file.
    Overrun {
        /// The length the header claimed.
        claimed: u32,
    },
    /// The length field is zero or beyond [`MAX_RECORD`].
    BadLength(u32),
    /// The payload's CRC-32 did not match the header.
    BadCrc,
}

/// Where and why a scan stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanStop {
    /// Byte offset of the offending frame.
    pub offset: u64,
    /// What was wrong with it.
    pub reason: StopReason,
}

impl ScanStop {
    /// Whether this looks like a torn append (recoverable by truncation)
    /// rather than interior corruption. Torn writes shorten the file, so
    /// only headers or payloads cut off by end-of-file qualify; a checksum
    /// or length-field failure on bytes that are all present means the
    /// data was altered in place.
    pub fn is_torn_tail(&self) -> bool {
        matches!(
            self.reason,
            StopReason::TruncatedHeader | StopReason::Overrun { .. }
        )
    }
}

/// Summary of one sequential pass over a log file.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Bytes covered by the magic plus every valid frame.
    pub valid_len: u64,
    /// Total file size.
    pub file_len: u64,
    /// Number of valid frames seen.
    pub records: u64,
    /// Present when the scan stopped before `file_len`.
    pub stop: Option<ScanStop>,
}

/// Sequentially visits every valid frame of `path`, calling
/// `f(offset, payload)` for each. Stops (without error) at the first
/// invalid frame; fails hard only on I/O errors, a bad magic, or an error
/// returned by the callback.
pub fn scan<F>(path: &Path, f: F) -> Result<ScanOutcome>
where
    F: FnMut(u64, &[u8]) -> Result<()>,
{
    scan_from(path, MAGIC.len() as u64, f)
}

/// Like [`scan`], but starting at frame offset `start` (which must be a
/// frame boundary a previous scan reported — typically its `valid_len`).
/// The magic is still validated; offsets passed to `f` and the returned
/// [`ScanOutcome`] stay absolute, so `valid_len` from an earlier pass
/// feeds straight back in as the next pass's `start` — the incremental
/// re-poll that `analyze --follow` is built on.
pub fn scan_from<F>(path: &Path, start: u64, mut f: F) -> Result<ScanOutcome>
where
    F: FnMut(u64, &[u8]) -> Result<()>,
{
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < MAGIC.len() as u64 {
        return Err(StoreError::corrupt(0, "file shorter than the store magic"));
    }
    let mut reader = BufReader::new(file);
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::corrupt(0, "bad magic: not a ytaudit store"));
    }
    if start < MAGIC.len() as u64 || start > file_len {
        return Err(StoreError::corrupt(
            start,
            format!("scan start outside the file's {file_len} bytes"),
        ));
    }
    if start > MAGIC.len() as u64 {
        reader.seek(SeekFrom::Start(start))?;
    }

    let mut pos = start;
    let mut records = 0u64;
    let mut stop = None;
    let mut payload = Vec::new();
    while pos < file_len {
        if file_len - pos < FRAME_HEADER {
            stop = Some(ScanStop {
                offset: pos,
                reason: StopReason::TruncatedHeader,
            });
            break;
        }
        let mut len_bytes = [0u8; 4];
        let mut crc_bytes = [0u8; 4];
        reader.read_exact(&mut len_bytes)?;
        reader.read_exact(&mut crc_bytes)?;
        let len = u32::from_le_bytes(len_bytes);
        let crc = u32::from_le_bytes(crc_bytes);
        if len == 0 || len > MAX_RECORD {
            stop = Some(ScanStop {
                offset: pos,
                reason: StopReason::BadLength(len),
            });
            break;
        }
        if file_len - pos - FRAME_HEADER < u64::from(len) {
            stop = Some(ScanStop {
                offset: pos,
                reason: StopReason::Overrun { claimed: len },
            });
            break;
        }
        payload.resize(len as usize, 0);
        reader.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            stop = Some(ScanStop {
                offset: pos,
                reason: StopReason::BadCrc,
            });
            break;
        }
        f(pos, &payload)?;
        records += 1;
        pos += FRAME_HEADER + u64::from(len);
    }
    Ok(ScanOutcome {
        valid_len: pos,
        file_len,
        records,
        stop,
    })
}

/// An open log: append at the end, random-access reads anywhere.
#[derive(Debug)]
pub struct RecordLog {
    file: File,
    len: u64,
}

impl RecordLog {
    /// Creates a fresh log at `path` (failing if the file exists) and
    /// writes the magic.
    pub fn create(path: &Path) -> Result<RecordLog> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.sync_data()?;
        Ok(RecordLog {
            file,
            len: MAGIC.len() as u64,
        })
    }

    /// Opens an existing log for appending at `valid_len` (as determined
    /// by a prior [`scan`]), physically truncating any torn tail beyond
    /// it.
    pub fn open_at(path: &Path, valid_len: u64) -> Result<RecordLog> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if file.metadata()?.len() != valid_len {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        Ok(RecordLog {
            file,
            len: valid_len,
        })
    }

    /// Bytes in the log (magic plus frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len <= MAGIC.len() as u64
    }

    /// Appends one frame, returning the offset its header was written at.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        debug_assert!(!payload.is_empty() && payload.len() <= MAX_RECORD as usize);
        let offset = self.len;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(offset)
    }

    /// Forces appended frames to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Reads and checksum-verifies the frame at `offset`.
    pub fn read_payload_at(&mut self, offset: u64) -> Result<Vec<u8>> {
        if offset < MAGIC.len() as u64 || offset + FRAME_HEADER > self.len {
            return Err(StoreError::corrupt(
                offset,
                format!("record offset out of bounds (log is {} bytes)", self.len),
            ));
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let mut len_bytes = [0u8; 4];
        let mut crc_bytes = [0u8; 4];
        self.file.read_exact(&mut len_bytes)?;
        self.file.read_exact(&mut crc_bytes)?;
        let len = u32::from_le_bytes(len_bytes);
        let crc = u32::from_le_bytes(crc_bytes);
        if len == 0 || len > MAX_RECORD || offset + FRAME_HEADER + u64::from(len) > self.len {
            return Err(StoreError::corrupt(offset, format!("bad record length {len}")));
        }
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(StoreError::corrupt(offset, "record checksum mismatch"));
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn append_scan_round_trip() {
        let dir = TempDir::new("log-roundtrip");
        let path = dir.file("log.yts");
        let mut log = RecordLog::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; 1 + i as usize * 7]).collect();
        let mut offsets = Vec::new();
        for p in &payloads {
            offsets.push(log.append(p).unwrap());
        }
        log.sync().unwrap();

        let mut seen = Vec::new();
        let outcome = scan(&path, |offset, payload| {
            seen.push((offset, payload.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(outcome.records, 20);
        assert!(outcome.stop.is_none());
        assert_eq!(outcome.valid_len, outcome.file_len);
        assert_eq!(seen.len(), payloads.len());
        for ((offset, payload), (expected_offset, expected)) in
            seen.iter().zip(offsets.iter().zip(&payloads))
        {
            assert_eq!(offset, expected_offset);
            assert_eq!(payload, expected);
        }

        // Random access agrees with the sequential pass.
        for (offset, payload) in offsets.iter().zip(&payloads) {
            assert_eq!(&log.read_payload_at(*offset).unwrap(), payload);
        }
    }

    #[test]
    fn scan_from_resumes_where_a_previous_scan_stopped() {
        let dir = TempDir::new("log-scan-from");
        let path = dir.file("log.yts");
        let mut log = RecordLog::create(&path).unwrap();
        for i in 0u8..6 {
            log.append(&[i; 9]).unwrap();
        }
        log.sync().unwrap();

        let first = scan(&path, |_, _| Ok(())).unwrap();
        assert_eq!(first.records, 6);

        // New frames land; a second pass from the first pass's valid_len
        // sees exactly the new ones, at absolute offsets.
        let mut expected_offsets = Vec::new();
        for i in 6u8..9 {
            expected_offsets.push(log.append(&[i; 9]).unwrap());
        }
        log.sync().unwrap();
        let mut seen = Vec::new();
        let second = scan_from(&path, first.valid_len, |offset, payload| {
            seen.push((offset, payload[0]));
            Ok(())
        })
        .unwrap();
        assert_eq!(second.records, 3);
        assert!(second.stop.is_none());
        assert_eq!(
            seen,
            expected_offsets
                .iter()
                .zip(6u8..9)
                .map(|(&o, i)| (o, i))
                .collect::<Vec<_>>()
        );

        // A start outside the file is rejected, not silently clamped.
        assert!(scan_from(&path, second.valid_len + 1, |_, _| Ok(())).is_err());
        // A start at EOF is an empty-but-valid pass.
        let empty = scan_from(&path, second.valid_len, |_, _| Ok(())).unwrap();
        assert_eq!(empty.records, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let dir = TempDir::new("log-torn");
        let path = dir.file("log.yts");
        let mut log = RecordLog::create(&path).unwrap();
        log.append(b"first record").unwrap();
        let second = log.append(b"second record, soon to be torn").unwrap();
        log.sync().unwrap();
        drop(log);

        // Cut the file mid-way through the second record's payload.
        let cut = second + FRAME_HEADER + 5;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let outcome = scan(&path, |_, _| Ok(())).unwrap();
        assert_eq!(outcome.records, 1);
        let stop = outcome.stop.unwrap();
        assert_eq!(stop.offset, second);
        assert!(stop.is_torn_tail(), "{stop:?}");

        // Re-open at the valid prefix and keep appending.
        let mut log = RecordLog::open_at(&path, outcome.valid_len).unwrap();
        log.append(b"third record").unwrap();
        log.sync().unwrap();
        let outcome = scan(&path, |_, _| Ok(())).unwrap();
        assert_eq!(outcome.records, 2);
        assert!(outcome.stop.is_none());
    }

    #[test]
    fn interior_bit_flip_is_corruption_not_a_tail() {
        let dir = TempDir::new("log-flip");
        let path = dir.file("log.yts");
        let mut log = RecordLog::create(&path).unwrap();
        let first = log.append(b"records full of audit data").unwrap();
        log.append(b"a later record").unwrap();
        log.sync().unwrap();
        drop(log);

        let mut bytes = std::fs::read(&path).unwrap();
        let flip_at = (first + FRAME_HEADER + 3) as usize;
        bytes[flip_at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = scan(&path, |_, _| Ok(())).unwrap();
        let stop = outcome.stop.unwrap();
        assert_eq!(stop.offset, first);
        assert_eq!(stop.reason, StopReason::BadCrc);
        assert!(!stop.is_torn_tail());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = TempDir::new("log-magic");
        let path = dir.file("not-a-store");
        std::fs::write(&path, b"{\"snapshots\": []}").unwrap();
        assert!(matches!(
            scan(&path, |_, _| Ok(())),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
    }
}
