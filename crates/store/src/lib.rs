//! # ytaudit-store
//!
//! A crash-safe, append-only snapshot store for audit collections: the
//! durable backend behind `ytaudit collect --store` and the input to
//! `ytaudit analyze --store`.
//!
//! A 12-week, six-topic collection costs ~4 million quota units and
//! cannot be restarted from scratch when a process dies at week nine.
//! The store makes every completed `(topic, snapshot)` pair durable the
//! moment it is collected, so a crashed run loses at most the pair that
//! was in flight and `--resume` re-issues no API calls for anything
//! already committed.
//!
//! ## On-disk format
//!
//! One file, append-only:
//!
//! ```text
//! file   := "YTAUDST1" frame*
//! frame  := len:u32le crc:u32le payload[len]      (crc = CRC-32 of payload)
//! ```
//!
//! Payloads are typed records ([`records`]): WAL *segment* headers (one
//! per append session), the collection *plan*, content-addressed *blobs*
//! (video IDs, video/channel metadata, comments — deduplicated via the
//! deterministic `platform::hash` mixer), *hour blocks* and *ref blocks*
//! (ordered blob-reference lists), per-pair *commit* records carrying the
//! `topic × snapshot × hour → offset` index and the pair's quota delta,
//! and a final *end* record.
//!
//! Records referenced by a commit are always written before it and the
//! commit is fsynced, so a commit that survives a crash is
//! self-contained. On open, a torn final append is detected by the frame
//! scan and truncated away; a checksum failure anywhere *before* the
//! tail can only mean the bytes changed after they were written, so the
//! open fails and [`Store::verify_path`] pinpoints the damage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod follow;
pub mod log;
pub mod merge;
pub mod records;
pub mod store;
pub mod tail;
pub mod tempdir;
pub mod wire;

pub use error::{Result, StoreError};
pub use follow::{follow_analyze, FollowOptions, FollowOutcome, FollowProgress};
pub use merge::{
    discover_shard_paths, discover_shard_paths_in, finish_store_path, merge_shards,
    shard_store_path, MergeReport,
};
pub use records::{CollectionMeta, Record};
pub use store::{fsync_dir_of, DatasetSelection, Store, StoreStats, VerifyReport};
pub use tail::{PollOutcome, TailEvent, TailReader};
pub use tempdir::TempDir;
