//! Typed records inside the log, and their binary encodings.
//!
//! The store separates *content* from *structure*:
//!
//! * **Blobs** are content-addressed payloads — video ID strings, video
//!   and channel metadata, comment records — written once and referenced
//!   by a 64-bit stable hash (the `platform::hash` mixer). Adjacent
//!   snapshots return mostly the same videos, so blob dedup is where the
//!   space win comes from.
//! * **Blocks** (hour blocks, ref blocks) are per-`(topic, snapshot)`
//!   structure: ordered lists of blob references.
//! * **Commits** are the durability points: one per `(topic, snapshot)`
//!   pair, written *after* every record it references, carrying the
//!   in-file index (hour → block offset) and the pair's quota delta. A
//!   commit that survives a crash therefore only ever references records
//!   at lower offsets, which also survived.

use crate::wire::{Reader, WireError, Writer};
use ytaudit_core::dataset::{ChannelInfo, CommentRecord, VideoInfo};
use ytaudit_core::shard::ShardSpec;
use ytaudit_core::CollectorConfig;
use ytaudit_types::{ChannelId, PlatformKind, Timestamp, Topic, VideoId};

/// Record tags (first payload byte).
pub const TAG_SEGMENT: u8 = 1;
/// Collection-plan record tag.
pub const TAG_BEGIN: u8 = 2;
/// Content-addressed blob tag.
pub const TAG_BLOB: u8 = 3;
/// Hourly search-result block tag.
pub const TAG_HOUR_BLOCK: u8 = 4;
/// Generic reference-list block tag.
pub const TAG_REF_BLOCK: u8 = 5;
/// Per-(topic, snapshot) commit tag.
pub const TAG_COMMIT: u8 = 6;
/// Collection-end record tag.
pub const TAG_END: u8 = 7;

/// Blob kind: a raw video ID string.
pub const BLOB_VIDEO_ID: u8 = 0;
/// Blob kind: parsed `Videos: list` metadata.
pub const BLOB_VIDEO_INFO: u8 = 1;
/// Blob kind: parsed `Channels: list` metadata.
pub const BLOB_CHANNEL_INFO: u8 = 2;
/// Blob kind: one comment record.
pub const BLOB_COMMENT: u8 = 3;

/// Ref-block purpose: the snapshot's `meta_returned` coverage list.
pub const PURPOSE_META_RETURNED: u8 = 0;
/// Ref-block purpose: video metadata fetched at this snapshot.
pub const PURPOSE_VIDEO_META: u8 = 1;
/// Ref-block purpose: the snapshot's comment crawl.
pub const PURPOSE_COMMENTS: u8 = 2;
/// Ref-block purpose: the end-of-collection channel metadata.
pub const PURPOSE_CHANNELS: u8 = 3;

/// Topic used in the channels ref block, which belongs to no topic.
pub const NO_TOPIC: u8 = 0xFF;

/// The stable content address of a blob: `platform::hash` over the body,
/// mixed with the kind so identical bytes of different kinds cannot
/// collide.
pub fn blob_hash(kind: u8, body: &[u8]) -> u64 {
    ytaudit_platform::hash::mix_all(&[ytaudit_platform::hash::hash_bytes(body), u64::from(kind)])
}

/// Maps a topic to its stable on-disk code (index in [`Topic::ALL`]).
pub fn topic_code(topic: Topic) -> u8 {
    topic.index() as u8
}

/// Inverse of [`topic_code`].
pub fn topic_from_code(code: u8) -> Result<Topic, WireError> {
    Topic::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("unknown topic code {code}"))
}

/// Decodes a stored platform byte ([`PlatformKind::code`]).
pub fn platform_from_code(code: u8) -> Result<PlatformKind, WireError> {
    PlatformKind::from_code(code).ok_or_else(|| format!("unknown platform code {code}"))
}

/// The collection plan, persisted once per store and used to validate
/// resumed runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionMeta {
    /// Topics, in the order the collector visits them.
    pub topics: Vec<Topic>,
    /// Snapshot dates in schedule order.
    pub dates: Vec<Timestamp>,
    /// The collector's hourly-binning flag.
    pub hourly_bins: bool,
    /// Whether `Videos: list` metadata is fetched.
    pub fetch_metadata: bool,
    /// Whether `Channels: list` metadata is fetched at the end.
    pub fetch_channels: bool,
    /// Whether comments are crawled on the first and last snapshots.
    pub fetch_comments: bool,
    /// Shard identity when this store is one shard of a `collect
    /// --shards N` run. Encoded as an optional Begin tail: single-sink
    /// stores keep the original byte layout, so old stores decode
    /// unchanged.
    pub shard: Option<ShardSpec>,
    /// Which backend collected this store. Encoded as a single optional
    /// trailing byte, present only for non-YouTube stores, so YouTube
    /// stores keep the original byte layout and old stores decode as
    /// [`PlatformKind::Youtube`].
    pub platform: PlatformKind,
}

impl CollectionMeta {
    /// Derives the plan from a collector configuration.
    pub fn of_config(config: &CollectorConfig) -> CollectionMeta {
        CollectionMeta {
            topics: config.topics.clone(),
            dates: config.schedule.dates().to_vec(),
            hourly_bins: config.hourly_bins,
            fetch_metadata: config.fetch_metadata,
            fetch_channels: config.fetch_channels,
            fetch_comments: config.fetch_comments,
            shard: config.shard.clone(),
            platform: config.platform,
        }
    }

    /// Total `(topic, snapshot)` pairs the plan will commit.
    pub fn pairs(&self) -> usize {
        self.topics.len() * self.dates.len()
    }
}

/// The in-file index entry written at each `(topic, snapshot)` commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Topic code ([`topic_code`]).
    pub topic: u8,
    /// Snapshot index within the schedule.
    pub snapshot: u16,
    /// The snapshot's date (seconds since epoch).
    pub date: i64,
    /// Quota units this pair cost to collect.
    pub quota_delta: u64,
    /// `(hour, offset)` for every hour block of the pair, in hour order.
    pub hours: Vec<(u32, u64)>,
    /// Offset of the `meta_returned` ref block (0 = none).
    pub meta_offset: u64,
    /// Offset of the video-metadata ref block (0 = none).
    pub videos_offset: u64,
    /// Offset of the comments ref block (0 = none).
    pub comments_offset: u64,
    /// Per-video comment-fetch failures recorded during this pair's
    /// comment crawl, as `(video_id, error)` pairs. Encoded as an
    /// optional record tail: commits without failures keep the original
    /// byte layout, so old stores decode unchanged.
    pub comment_errors: Vec<(String, String)>,
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Starts a WAL segment: one per append session, with a running
    /// sequence number.
    Segment {
        /// Segment sequence number (0 for the creating session).
        seq: u32,
    },
    /// The collection plan.
    Begin(CollectionMeta),
    /// A content-addressed payload.
    Blob {
        /// One of the `BLOB_*` kinds.
        kind: u8,
        /// The raw body (encoding depends on kind).
        body: Vec<u8>,
    },
    /// One hourly query's results: blob references to video IDs.
    HourBlock {
        /// Topic code.
        topic: u8,
        /// Snapshot index.
        snapshot: u16,
        /// Hour index within the topic's window.
        hour: u32,
        /// The query's `totalResults` pool estimate.
        total_results: u64,
        /// Video-ID blob hashes, in API return order.
        refs: Vec<u64>,
    },
    /// An ordered list of blob references with a purpose marker.
    RefBlock {
        /// One of the `PURPOSE_*` markers.
        purpose: u8,
        /// Topic code, or [`NO_TOPIC`] for the channels block.
        topic: u8,
        /// Snapshot index (0 for the channels block).
        snapshot: u16,
        /// Blob hashes, in order.
        refs: Vec<u64>,
    },
    /// The `(topic, snapshot)` durability point.
    Commit(CommitRecord),
    /// The end of the collection.
    End {
        /// Quota spent after the last pair commit (channel fetches).
        quota_final_delta: u64,
        /// Offset of the channels ref block (0 = none).
        channels_offset: u64,
    },
}

impl Record {
    /// Encodes the record into a log payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Record::Segment { seq } => {
                w.put_u8(TAG_SEGMENT);
                w.put_u32(*seq);
            }
            Record::Begin(meta) => {
                w.put_u8(TAG_BEGIN);
                w.put_u8(meta.topics.len() as u8);
                for &topic in &meta.topics {
                    w.put_u8(topic_code(topic));
                }
                w.put_u32(meta.dates.len() as u32);
                for &date in &meta.dates {
                    w.put_i64(date.as_secs());
                }
                w.put_bool(meta.hourly_bins);
                w.put_bool(meta.fetch_metadata);
                w.put_bool(meta.fetch_channels);
                w.put_bool(meta.fetch_comments);
                // Optional tail — only present for shard stores, keeping
                // single-sink Begin records byte-identical to the
                // original format.
                if let Some(shard) = &meta.shard {
                    w.put_u32(shard.index as u32);
                    w.put_u32(shard.count as u32);
                    w.put_u8(shard.parent_topics.len() as u8);
                    for &topic in &shard.parent_topics {
                        w.put_u8(topic_code(topic));
                    }
                    w.put_bool(shard.parent_fetch_channels);
                }
                // Second optional tail — a single platform byte, present
                // only for non-YouTube stores. A shard tail is ≥ 10
                // bytes, so "exactly one byte left" is unambiguous on
                // decode.
                if meta.platform != PlatformKind::Youtube {
                    w.put_u8(meta.platform.code());
                }
            }
            Record::Blob { kind, body } => {
                w.put_u8(TAG_BLOB);
                w.put_u8(*kind);
                // Body is the frame's tail; its length is implied.
                let mut bytes = w.into_bytes();
                bytes.extend_from_slice(body);
                return bytes;
            }
            Record::HourBlock {
                topic,
                snapshot,
                hour,
                total_results,
                refs,
            } => {
                w.put_u8(TAG_HOUR_BLOCK);
                w.put_u8(*topic);
                w.put_u16(*snapshot);
                w.put_u32(*hour);
                w.put_u64(*total_results);
                w.put_u32(refs.len() as u32);
                for &r in refs {
                    w.put_u64(r);
                }
            }
            Record::RefBlock {
                purpose,
                topic,
                snapshot,
                refs,
            } => {
                w.put_u8(TAG_REF_BLOCK);
                w.put_u8(*purpose);
                w.put_u8(*topic);
                w.put_u16(*snapshot);
                w.put_u32(refs.len() as u32);
                for &r in refs {
                    w.put_u64(r);
                }
            }
            Record::Commit(c) => {
                w.put_u8(TAG_COMMIT);
                w.put_u8(c.topic);
                w.put_u16(c.snapshot);
                w.put_i64(c.date);
                w.put_u64(c.quota_delta);
                w.put_u32(c.hours.len() as u32);
                for &(hour, offset) in &c.hours {
                    w.put_u32(hour);
                    w.put_u64(offset);
                }
                w.put_u64(c.meta_offset);
                w.put_u64(c.videos_offset);
                w.put_u64(c.comments_offset);
                // Optional tail — only present when there are failures,
                // keeping failure-free commits byte-identical to the
                // original format.
                if !c.comment_errors.is_empty() {
                    w.put_u32(c.comment_errors.len() as u32);
                    for (video_id, error) in &c.comment_errors {
                        w.put_str(video_id);
                        w.put_str(error);
                    }
                }
            }
            Record::End {
                quota_final_delta,
                channels_offset,
            } => {
                w.put_u8(TAG_END);
                w.put_u64(*quota_final_delta);
                w.put_u64(*channels_offset);
            }
        }
        w.into_bytes()
    }

    /// Decodes a log payload.
    pub fn decode(payload: &[u8]) -> Result<Record, WireError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let record = match tag {
            TAG_SEGMENT => Record::Segment { seq: r.u32()? },
            TAG_BEGIN => {
                let n_topics = r.u8()? as usize;
                let mut topics = Vec::with_capacity(n_topics);
                for _ in 0..n_topics {
                    topics.push(topic_from_code(r.u8()?)?);
                }
                let n_dates = r.u32()? as usize;
                let mut dates = Vec::with_capacity(n_dates);
                for _ in 0..n_dates {
                    dates.push(Timestamp(r.i64()?));
                }
                let hourly_bins = r.bool()?;
                let fetch_metadata = r.bool()?;
                let fetch_channels = r.bool()?;
                let fetch_comments = r.bool()?;
                let mut shard = None;
                if r.remaining() > 1 {
                    let index = r.u32()? as usize;
                    let count = r.u32()? as usize;
                    let n_parent = r.u8()? as usize;
                    let mut parent_topics = Vec::with_capacity(n_parent);
                    for _ in 0..n_parent {
                        parent_topics.push(topic_from_code(r.u8()?)?);
                    }
                    shard = Some(ShardSpec {
                        index,
                        count,
                        parent_topics,
                        parent_fetch_channels: r.bool()?,
                    });
                }
                let platform = if r.remaining() > 0 {
                    platform_from_code(r.u8()?)?
                } else {
                    PlatformKind::Youtube
                };
                Record::Begin(CollectionMeta {
                    topics,
                    dates,
                    hourly_bins,
                    fetch_metadata,
                    fetch_channels,
                    fetch_comments,
                    shard,
                    platform,
                })
            }
            TAG_BLOB => {
                let kind = r.u8()?;
                if kind > BLOB_COMMENT {
                    return Err(format!("unknown blob kind {kind}"));
                }
                Record::Blob {
                    kind,
                    body: r.rest().to_vec(),
                }
            }
            TAG_HOUR_BLOCK => {
                let topic = r.u8()?;
                let snapshot = r.u16()?;
                let hour = r.u32()?;
                let total_results = r.u64()?;
                let n = r.u32()? as usize;
                let mut refs = Vec::with_capacity(n);
                for _ in 0..n {
                    refs.push(r.u64()?);
                }
                Record::HourBlock {
                    topic,
                    snapshot,
                    hour,
                    total_results,
                    refs,
                }
            }
            TAG_REF_BLOCK => {
                let purpose = r.u8()?;
                if purpose > PURPOSE_CHANNELS {
                    return Err(format!("unknown ref-block purpose {purpose}"));
                }
                let topic = r.u8()?;
                let snapshot = r.u16()?;
                let n = r.u32()? as usize;
                let mut refs = Vec::with_capacity(n);
                for _ in 0..n {
                    refs.push(r.u64()?);
                }
                Record::RefBlock {
                    purpose,
                    topic,
                    snapshot,
                    refs,
                }
            }
            TAG_COMMIT => {
                let topic = r.u8()?;
                let snapshot = r.u16()?;
                let date = r.i64()?;
                let quota_delta = r.u64()?;
                let n = r.u32()? as usize;
                let mut hours = Vec::with_capacity(n);
                for _ in 0..n {
                    let hour = r.u32()?;
                    let offset = r.u64()?;
                    hours.push((hour, offset));
                }
                let meta_offset = r.u64()?;
                let videos_offset = r.u64()?;
                let comments_offset = r.u64()?;
                let mut comment_errors = Vec::new();
                if r.remaining() > 0 {
                    let n = r.u32()? as usize;
                    comment_errors.reserve(n);
                    for _ in 0..n {
                        let video_id = r.str()?.to_string();
                        let error = r.str()?.to_string();
                        comment_errors.push((video_id, error));
                    }
                }
                Record::Commit(CommitRecord {
                    topic,
                    snapshot,
                    date,
                    quota_delta,
                    hours,
                    meta_offset,
                    videos_offset,
                    comments_offset,
                    comment_errors,
                })
            }
            TAG_END => Record::End {
                quota_final_delta: r.u64()?,
                channels_offset: r.u64()?,
            },
            other => return Err(format!("unknown record tag {other}")),
        };
        r.expect_end()?;
        Ok(record)
    }
}

/// Encodes a video ID blob body (the raw string bytes).
pub fn encode_video_id(id: &VideoId) -> Vec<u8> {
    id.as_str().as_bytes().to_vec()
}

/// Decodes a video ID blob body.
pub fn decode_video_id(body: &[u8]) -> Result<VideoId, WireError> {
    std::str::from_utf8(body)
        .map(VideoId::new)
        .map_err(|e| format!("video id not UTF-8: {e}"))
}

/// Encodes a [`VideoInfo`] blob body.
pub fn encode_video_info(v: &VideoInfo) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(v.id.as_str());
    w.put_str(v.channel_id.as_str());
    w.put_i64(v.published_at.as_secs());
    w.put_u64(v.duration_secs);
    w.put_bool(v.is_sd);
    w.put_u64(v.views);
    w.put_u64(v.likes);
    w.put_u64(v.comments);
    w.into_bytes()
}

/// Decodes a [`VideoInfo`] blob body.
pub fn decode_video_info(body: &[u8]) -> Result<VideoInfo, WireError> {
    let mut r = Reader::new(body);
    let info = VideoInfo {
        id: VideoId::new(r.str()?),
        channel_id: ChannelId::new(r.str()?),
        published_at: Timestamp(r.i64()?),
        duration_secs: r.u64()?,
        is_sd: r.bool()?,
        views: r.u64()?,
        likes: r.u64()?,
        comments: r.u64()?,
    };
    r.expect_end()?;
    Ok(info)
}

/// Encodes a [`ChannelInfo`] blob body.
pub fn encode_channel_info(c: &ChannelInfo) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(c.id.as_str());
    w.put_i64(c.published_at.as_secs());
    w.put_u64(c.views);
    w.put_u64(c.subscribers);
    w.put_u64(c.video_count);
    w.into_bytes()
}

/// Decodes a [`ChannelInfo`] blob body.
pub fn decode_channel_info(body: &[u8]) -> Result<ChannelInfo, WireError> {
    let mut r = Reader::new(body);
    let info = ChannelInfo {
        id: ChannelId::new(r.str()?),
        published_at: Timestamp(r.i64()?),
        views: r.u64()?,
        subscribers: r.u64()?,
        video_count: r.u64()?,
    };
    r.expect_end()?;
    Ok(info)
}

/// Encodes a [`CommentRecord`] blob body.
pub fn encode_comment(c: &CommentRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(&c.id);
    w.put_str(c.video_id.as_str());
    w.put_bool(c.is_reply);
    w.put_i64(c.published_at.as_secs());
    w.into_bytes()
}

/// Decodes a [`CommentRecord`] blob body.
pub fn decode_comment(body: &[u8]) -> Result<CommentRecord, WireError> {
    let mut r = Reader::new(body);
    let record = CommentRecord {
        id: r.str()?.to_string(),
        video_id: VideoId::new(r.str()?),
        is_reply: r.bool()?,
        published_at: Timestamp(r.i64()?),
    };
    r.expect_end()?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CollectionMeta {
        CollectionMeta {
            topics: vec![Topic::Higgs, Topic::Blm],
            dates: vec![
                Timestamp::from_ymd(2025, 2, 9).unwrap(),
                Timestamp::from_ymd(2025, 2, 14).unwrap(),
            ],
            hourly_bins: true,
            fetch_metadata: true,
            fetch_channels: true,
            fetch_comments: false,
            shard: None,
            platform: PlatformKind::Youtube,
        }
    }

    #[test]
    fn records_round_trip() {
        let samples = vec![
            Record::Segment { seq: 3 },
            Record::Begin(meta()),
            Record::Begin(CollectionMeta {
                topics: vec![Topic::Blm],
                shard: Some(ShardSpec {
                    index: 1,
                    count: 2,
                    parent_topics: vec![Topic::Higgs, Topic::Blm],
                    parent_fetch_channels: true,
                }),
                ..meta()
            }),
            Record::Begin(CollectionMeta {
                topics: vec![],
                shard: Some(ShardSpec {
                    index: 2,
                    count: 2,
                    parent_topics: vec![Topic::Higgs, Topic::Blm],
                    parent_fetch_channels: false,
                }),
                ..meta()
            }),
            Record::Blob {
                kind: BLOB_VIDEO_ID,
                body: b"dQw4w9WgXcQ".to_vec(),
            },
            Record::HourBlock {
                topic: 4,
                snapshot: 7,
                hour: 402,
                total_results: 42_000,
                refs: vec![1, u64::MAX, 99],
            },
            Record::RefBlock {
                purpose: PURPOSE_CHANNELS,
                topic: NO_TOPIC,
                snapshot: 0,
                refs: vec![],
            },
            Record::Commit(CommitRecord {
                topic: 0,
                snapshot: 15,
                date: 1_740_000_000,
                quota_delta: 680,
                hours: vec![(0, 8), (1, 977)],
                meta_offset: 1_024,
                videos_offset: 0,
                comments_offset: 2_048,
                comment_errors: Vec::new(),
            }),
            Record::Commit(CommitRecord {
                topic: 2,
                snapshot: 0,
                date: 1_740_000_000,
                quota_delta: 912,
                hours: vec![(3, 55)],
                meta_offset: 0,
                videos_offset: 0,
                comments_offset: 4_096,
                comment_errors: vec![
                    (
                        "dQw4w9WgXcQ".to_string(),
                        "commentThreads.list: gone".to_string(),
                    ),
                    (
                        "xvFZjo5PgG0".to_string(),
                        "comments.list T1: vanished".to_string(),
                    ),
                ],
            }),
            Record::End {
                quota_final_delta: 12,
                channels_offset: 640,
            },
        ];
        for record in samples {
            let encoded = record.encode();
            assert_eq!(Record::decode(&encoded).unwrap(), record, "{record:?}");
        }
    }

    #[test]
    fn error_free_commits_keep_the_original_byte_layout() {
        // The comment-errors tail is only written when non-empty, so a
        // failure-free commit must encode to exactly the pre-tail size:
        // tag + topic + snapshot + date + quota + hour count + hours +
        // three offsets.
        let commit = Record::Commit(CommitRecord {
            topic: 1,
            snapshot: 2,
            date: 1_740_000_000,
            quota_delta: 100,
            hours: vec![(0, 8), (1, 977)],
            meta_offset: 64,
            videos_offset: 128,
            comments_offset: 0,
            comment_errors: Vec::new(),
        });
        let expected = 1 + 1 + 2 + 8 + 8 + 4 + 2 * (4 + 8) + 3 * 8;
        assert_eq!(commit.encode().len(), expected);
    }

    #[test]
    fn shardless_begin_keeps_the_original_byte_layout() {
        // The shard tail is only written for shard stores, so a
        // single-sink Begin must encode to exactly the pre-tail size:
        // tag + topic count + 2 codes + date count + 2 dates + 4 flags.
        let expected = 1 + 1 + 2 + 4 + 2 * 8 + 4;
        assert_eq!(Record::Begin(meta()).encode().len(), expected);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[0xEE, 1, 2]).is_err());
        // Trailing garbage after a well-formed record.
        let mut bytes = Record::Segment { seq: 1 }.encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_err());
        // Bad topic code inside Begin.
        let mut begin = Record::Begin(meta()).encode();
        begin[2] = 200; // first topic code
        assert!(Record::decode(&begin).is_err());
    }

    #[test]
    fn blob_bodies_round_trip() {
        let v = VideoInfo {
            id: VideoId::new("dQw4w9WgXcQ"),
            channel_id: ChannelId::new("UC38IQsAvIsxxjztdMZQtwHA"),
            published_at: Timestamp::from_ymd(2020, 5, 25).unwrap(),
            duration_secs: 253,
            is_sd: false,
            views: 1_000_000,
            likes: 50_000,
            comments: 1_234,
        };
        assert_eq!(decode_video_info(&encode_video_info(&v)).unwrap(), v);

        let c = ChannelInfo {
            id: ChannelId::new("UC38IQsAvIsxxjztdMZQtwHA"),
            published_at: Timestamp::from_ymd(2010, 1, 1).unwrap(),
            views: 9_999,
            subscribers: 77,
            video_count: 12,
        };
        assert_eq!(decode_channel_info(&encode_channel_info(&c)).unwrap(), c);

        let comment = CommentRecord {
            id: "UgxKREWxIgDrw8w2WZp4AaABAg.9".to_string(),
            video_id: VideoId::new("dQw4w9WgXcQ"),
            is_reply: true,
            published_at: Timestamp::from_ymd(2021, 1, 6).unwrap(),
        };
        assert_eq!(decode_comment(&encode_comment(&comment)).unwrap(), comment);

        let id = VideoId::new("dQw4w9WgXcQ");
        assert_eq!(decode_video_id(&encode_video_id(&id)).unwrap(), id);
    }

    #[test]
    fn blob_hashes_are_stable_and_kind_sensitive() {
        let body = b"dQw4w9WgXcQ";
        assert_eq!(
            blob_hash(BLOB_VIDEO_ID, body),
            blob_hash(BLOB_VIDEO_ID, body)
        );
        assert_ne!(
            blob_hash(BLOB_VIDEO_ID, body),
            blob_hash(BLOB_COMMENT, body),
            "kind participates in the address"
        );
        assert_ne!(
            blob_hash(BLOB_VIDEO_ID, b"dQw4w9WgXcQ"),
            blob_hash(BLOB_VIDEO_ID, b"dQw4w9WgXcR")
        );
    }

    #[test]
    fn topic_codes_round_trip() {
        for topic in Topic::ALL {
            assert_eq!(topic_from_code(topic_code(topic)).unwrap(), topic);
        }
        assert!(topic_from_code(6).is_err());
        assert!(topic_from_code(NO_TOPIC).is_err());
    }
}
