//! The `analyze --follow` driver: tails a store log with a
//! [`TailReader`], folds each committed `(topic, snapshot)` pair into a
//! streaming [`Analyzer`] the moment it lands, and finalizes into an
//! [`AnalysisReport`] once the collection ends.
//!
//! Memory stays bounded by accumulator state: pairs are folded one at a
//! time straight off the log and never gathered into a dataset. An
//! optional checkpoint file makes the fold progress itself crash-safe —
//! it is replaced atomically (tmp + fsync + rename + directory sync,
//! with the `stats.pre-checkpoint` faultpoint at the kill boundary), and
//! a restart decodes it, re-reads the log from the start, and lets the
//! analyzer's fold watermark drop the already-folded prefix.

use crate::error::{Result, StoreError};
use crate::store::{fsync_dir_of, sibling_with_suffix};
use crate::tail::{TailEvent, TailReader};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;
use ytaudit_core::streaming::{Analyzer, FoldInput};
use ytaudit_core::AnalysisReport;
use ytaudit_platform::faultpoint;
use ytaudit_types::{PlatformKind, Topic};

/// How to drive a follow analysis.
#[derive(Debug, Clone)]
pub struct FollowOptions {
    /// Keep polling until the collection ends. When `false`, a single
    /// pass is made and an incomplete store is an error.
    pub follow: bool,
    /// Sleep between polls, in milliseconds.
    pub poll_ms: u64,
    /// Where to persist analyzer checkpoints (and resume from).
    pub checkpoint: Option<PathBuf>,
    /// Reorder-buffer cap forwarded to [`Analyzer::with_max_buffered`].
    pub max_buffered: Option<usize>,
    /// When set, the store's Begin manifest must record this platform;
    /// a mismatch fails with [`StoreError::PlatformMismatch`] before
    /// any pair is folded.
    pub expect_platform: Option<PlatformKind>,
}

impl Default for FollowOptions {
    fn default() -> FollowOptions {
        FollowOptions {
            follow: true,
            poll_ms: 250,
            checkpoint: None,
            max_buffered: None,
            expect_platform: None,
        }
    }
}

/// Live progress, passed to the caller's callback after every poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowProgress {
    /// Pairs folded so far.
    pub folded_pairs: u64,
    /// Pairs the stored plan calls for, once the plan has been read.
    pub planned_pairs: Option<usize>,
    /// Whether the end-of-collection record has been folded.
    pub ended: bool,
}

/// What a completed follow analysis produced.
#[derive(Debug)]
pub struct FollowOutcome {
    /// The finalized report.
    pub report: AnalysisReport,
    /// Pairs folded by this process (resumed pairs included).
    pub folded_pairs: u64,
    /// Largest number of pairs the reorder buffer ever held.
    pub peak_buffered: usize,
    /// The fold watermark restored from a checkpoint, when one was.
    pub resumed_from: Option<u64>,
}

/// Tails the store at `path`, folding committed pairs into a streaming
/// analyzer, and returns the finalized report once the collection ends.
/// `progress` is called after every poll.
pub fn follow_analyze(
    path: &Path,
    options: &FollowOptions,
    mut progress: impl FnMut(FollowProgress),
) -> Result<FollowOutcome> {
    let mut analyzer: Option<Analyzer> = None;
    let mut resumed_from = None;
    if let Some(ckpt_path) = &options.checkpoint {
        if ckpt_path.exists() {
            let bytes = std::fs::read(ckpt_path)?;
            let mut restored = Analyzer::decode_state(&bytes)
                .map_err(|e| StoreError::Plan(format!("unreadable checkpoint: {e}")))?;
            if let Some(cap) = options.max_buffered {
                restored = restored.with_max_buffered(cap);
            }
            resumed_from = Some(restored.folded_pairs());
            analyzer = Some(restored);
        }
    }

    let mut reader = TailReader::open(path)?;
    let mut topics: Vec<Topic> = analyzer.as_ref().map_or_else(Vec::new, |a| {
        a.topics().to_vec()
    });
    let mut planned_pairs = None;
    let mut checkpointed_at = resumed_from.unwrap_or(0);
    let mut checkpointed_end = false;

    loop {
        // The closure needs the analyzer and plan bookkeeping mutably;
        // split them out of the loop state explicitly.
        let mut poll_error: Option<StoreError> = None;
        reader.poll(|event| {
            match event {
                TailEvent::Begin(meta) => {
                    if let Some(expected) = options.expect_platform {
                        if meta.platform != expected {
                            poll_error = Some(StoreError::PlatformMismatch {
                                stored: meta.platform,
                                requested: expected,
                            });
                            return Ok(());
                        }
                    }
                    planned_pairs = Some(meta.pairs());
                    match &analyzer {
                        None => {
                            let mut fresh = Analyzer::new(meta.topics.clone());
                            if let Some(cap) = options.max_buffered {
                                fresh = fresh.with_max_buffered(cap);
                            }
                            topics = meta.topics;
                            analyzer = Some(fresh);
                        }
                        Some(restored) => {
                            if restored.topics() != meta.topics.as_slice() {
                                poll_error = Some(StoreError::Plan(
                                    "checkpoint was taken against a different collection \
                                     plan; delete it or point --checkpoint elsewhere"
                                        .into(),
                                ));
                            }
                        }
                    }
                }
                TailEvent::Pair {
                    topic,
                    snapshot,
                    date,
                    data,
                    comments,
                    videos,
                    quota_delta,
                } => {
                    let Some(analyzer) = analyzer.as_mut() else {
                        poll_error = Some(StoreError::corrupt(
                            0,
                            "pair committed before the collection plan",
                        ));
                        return Ok(());
                    };
                    let Some(pos) = topics.iter().position(|&t| t == topic) else {
                        poll_error = Some(StoreError::Plan(format!(
                            "committed topic {topic:?} is not in the plan"
                        )));
                        return Ok(());
                    };
                    let plan_idx = snapshot as u64 * topics.len() as u64 + pos as u64;
                    let input = FoldInput {
                        topic,
                        date,
                        data,
                        comments,
                        videos,
                        quota_delta,
                    };
                    if let Err(e) = analyzer.offer(plan_idx, input) {
                        poll_error = Some(StoreError::Plan(e.to_string()));
                    }
                }
                TailEvent::End {
                    channels,
                    quota_final_delta,
                } => {
                    let Some(analyzer) = analyzer.as_mut() else {
                        poll_error = Some(StoreError::corrupt(
                            0,
                            "collection ended before the collection plan",
                        ));
                        return Ok(());
                    };
                    analyzer.end(channels, quota_final_delta);
                }
            }
            Ok(())
        })?;
        if let Some(e) = poll_error {
            return Err(e);
        }

        let (folded, ended) = analyzer
            .as_ref()
            .map_or((0, false), |a| (a.folded_pairs(), a.ended()));
        if let Some(ckpt_path) = &options.checkpoint {
            // Only rewrite the checkpoint when this poll advanced the
            // fold watermark (or folded the end record).
            if let Some(analyzer) = &analyzer {
                if folded > checkpointed_at || (ended && !checkpointed_end) {
                    write_checkpoint(ckpt_path, &analyzer.encode_state())?;
                    checkpointed_at = folded;
                    checkpointed_end = ended;
                }
            }
        }
        progress(FollowProgress {
            folded_pairs: folded,
            planned_pairs,
            ended,
        });

        if ended && Some(folded as usize) == planned_pairs {
            break;
        }
        if !options.follow {
            // A store that was begun but never committed a pair is not
            // "incomplete" — it is the empty collection, and analyzing
            // it must produce the same canonical empty report the batch
            // path emits. Partial stores (some pairs committed) are
            // still an error: their report would silently understate
            // the plan.
            if planned_pairs.is_some() && folded == 0 {
                break;
            }
            return Err(StoreError::Plan(match planned_pairs {
                None => "store holds no collection; \
                         pass --follow to wait for a collector"
                    .to_string(),
                Some(planned) => format!(
                    "store is incomplete ({folded}/{planned} pairs); \
                     pass --follow to wait for the collector"
                ),
            }));
        }
        std::thread::sleep(Duration::from_millis(options.poll_ms));
    }

    let analyzer = analyzer
        .ok_or_else(|| StoreError::Plan("store holds no collection".into()))?;
    Ok(FollowOutcome {
        report: analyzer.finish(),
        folded_pairs: analyzer.folded_pairs(),
        peak_buffered: analyzer.peak_buffered(),
        resumed_from,
    })
}

/// Atomically replaces the checkpoint at `path`: the bytes are written
/// to a tmp sibling and fsynced, then renamed over the original and the
/// directory synced — a crash at any point leaves either the old
/// checkpoint or the new one, never a torn mix. The
/// `stats.pre-checkpoint` faultpoint sits at the kill boundary between
/// the durable tmp and the rename.
fn write_checkpoint(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = sibling_with_suffix(path, ".tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    drop(file);
    if faultpoint::should_trip("stats.pre-checkpoint") {
        return Err(StoreError::Io(std::io::Error::other(
            "injected crash: stats.pre-checkpoint",
        )));
    }
    std::fs::rename(&tmp, path)?;
    fsync_dir_of(path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::CollectionMeta;
    use crate::store::Store;
    use crate::tempdir::TempDir;
    use ytaudit_core::collect::TopicCommit;
    use ytaudit_core::dataset::{HourlyResult, TopicSnapshot};
    use ytaudit_core::streaming::Analyzer;
    use ytaudit_types::{PlatformKind, Timestamp, Topic, VideoId};

    fn meta2x3() -> CollectionMeta {
        CollectionMeta {
            topics: vec![Topic::Higgs, Topic::Blm],
            dates: (0..3)
                .map(|i| Timestamp::from_ymd(2025, 2, 9).unwrap().add_days(i * 5))
                .collect(),
            hourly_bins: true,
            fetch_metadata: false,
            fetch_channels: false,
            fetch_comments: false,
            shard: None,
            platform: PlatformKind::Youtube,
        }
    }

    fn data(t_idx: usize, idx: usize) -> TopicSnapshot {
        let base = t_idx * 100 + idx * 3;
        TopicSnapshot {
            hours: vec![HourlyResult {
                hour: (idx * 7) as u32,
                video_ids: (base..base + 4)
                    .map(|n| VideoId::new(format!("vid-{n:04}")))
                    .collect(),
                total_results: 5_000 + base as u64,
            }],
            meta_returned: Vec::new(),
        }
    }

    fn fill(store: &mut Store, meta: &CollectionMeta) {
        store.begin_collection(meta.clone()).unwrap();
        for (idx, &date) in meta.dates.iter().enumerate() {
            for (t_idx, &topic) in meta.topics.iter().enumerate() {
                store
                    .commit_snapshot(&TopicCommit {
                        topic,
                        snapshot: idx,
                        date,
                        data: &data(t_idx, idx),
                        comments: None,
                        videos: &[],
                        quota_delta: 11,
                    })
                    .unwrap();
            }
        }
        store.finish_collection(&[], 4).unwrap();
    }

    #[test]
    fn one_shot_follow_of_a_complete_store_matches_batch() {
        let dir = TempDir::new("follow-oneshot");
        let path = dir.file("audit.yts");
        let meta = meta2x3();
        let mut store = Store::create(&path).unwrap();
        fill(&mut store, &meta);
        let dataset = store.load_dataset().unwrap();
        let batch = Analyzer::analyze_dataset(&dataset);

        let mut polls = 0;
        let outcome = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                ..FollowOptions::default()
            },
            |_| polls += 1,
        )
        .unwrap();
        assert_eq!(outcome.folded_pairs, 6);
        assert!(polls >= 1);
        assert!(outcome.resumed_from.is_none());
        assert_eq!(outcome.report.to_json(), batch.to_json());
        // Sequential commits arrive in plan order: at most one pair is
        // ever buffered.
        assert!(outcome.peak_buffered <= 1, "{}", outcome.peak_buffered);
    }

    #[test]
    fn one_shot_follow_of_an_incomplete_store_is_an_error() {
        let dir = TempDir::new("follow-incomplete");
        let path = dir.file("audit.yts");
        let meta = meta2x3();
        let mut store = Store::create(&path).unwrap();
        store.begin_collection(meta.clone()).unwrap();
        store
            .commit_snapshot(&TopicCommit {
                topic: Topic::Higgs,
                snapshot: 0,
                date: meta.dates[0],
                data: &data(0, 0),
                comments: None,
                videos: &[],
                quota_delta: 11,
            })
            .unwrap();
        let err = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                ..FollowOptions::default()
            },
            |_| {},
        );
        assert!(matches!(err, Err(StoreError::Plan(_))), "{err:?}");
    }

    #[test]
    fn checkpoint_crash_resume_converges_on_the_batch_report() {
        let dir = TempDir::new("follow-ckpt");
        let path = dir.file("audit.yts");
        let ckpt = dir.file("analyze.ckpt");
        let meta = meta2x3();
        let mut store = Store::create(&path).unwrap();
        fill(&mut store, &meta);
        let batch = Analyzer::analyze_dataset(&store.load_dataset().unwrap());

        // First run dies at the checkpoint kill boundary: the tmp is
        // durable but never installed, so the previous checkpoint (here:
        // none) is what a restart sees.
        faultpoint::arm("stats.pre-checkpoint", 1);
        let crashed = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                checkpoint: Some(ckpt.clone()),
                ..FollowOptions::default()
            },
            |_| {},
        );
        faultpoint::reset();
        assert!(crashed.is_err(), "armed checkpoint must trip");
        assert!(!ckpt.exists(), "the crash landed before the rename");

        // The restart starts from scratch (no checkpoint installed),
        // re-reads the log, and matches batch.
        let outcome = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                checkpoint: Some(ckpt.clone()),
                ..FollowOptions::default()
            },
            |_| {},
        )
        .unwrap();
        assert!(outcome.resumed_from.is_none());
        assert_eq!(outcome.report.to_json(), batch.to_json());
        assert!(ckpt.exists(), "a clean pass installs its checkpoint");

        // And a run resuming from the installed checkpoint folds nothing
        // new yet still reproduces the same report.
        let resumed = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                checkpoint: Some(ckpt),
                ..FollowOptions::default()
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(resumed.resumed_from, Some(6));
        assert_eq!(resumed.report.to_json(), batch.to_json());
    }

    #[test]
    fn checkpoint_from_another_plan_is_rejected() {
        let dir = TempDir::new("follow-ckpt-plan");
        let ckpt = dir.file("analyze.ckpt");
        // A checkpoint taken over a different topic set…
        let other = Analyzer::new(vec![Topic::WorldCup]);
        std::fs::write(&ckpt, other.encode_state()).unwrap();
        // …must not silently fold this store's pairs.
        let path = dir.file("audit.yts");
        let meta = meta2x3();
        let mut store = Store::create(&path).unwrap();
        fill(&mut store, &meta);
        let err = follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                checkpoint: Some(ckpt),
                ..FollowOptions::default()
            },
            |_| {},
        );
        assert!(matches!(err, Err(StoreError::Plan(_))), "{err:?}");
    }

    #[test]
    fn progress_reports_the_plan_and_the_fold_watermark() {
        let dir = TempDir::new("follow-progress");
        let path = dir.file("audit.yts");
        let meta = meta2x3();
        let mut store = Store::create(&path).unwrap();
        fill(&mut store, &meta);
        let mut last = None;
        follow_analyze(
            &path,
            &FollowOptions {
                follow: false,
                ..FollowOptions::default()
            },
            |p| last = Some(p),
        )
        .unwrap();
        assert_eq!(
            last,
            Some(FollowProgress {
                folded_pairs: 6,
                planned_pairs: Some(6),
                ended: true,
            })
        );
    }
}
