//! Quota accounting — the economics that make the paper's strategy advice
//! matter.
//!
//! The real API charges 100 units per `Search: list` call against a
//! default daily budget of 10,000 (so 100 searches/day), while ID-based
//! endpoints cost 1 unit. A full paper-style collection is 4,032 search
//! calls = 403,200 units — far beyond a default key, which is why the
//! researcher program (higher quotas) exists and why "token economy" is a
//! first-class concern. The ledger resets at midnight Pacific time,
//! modelled as a fixed UTC−7 offset (DST is ignored and documented).

use parking_lot::Mutex;
use std::collections::HashMap;
use ytaudit_types::time::{DAY, HOUR};
use ytaudit_types::Timestamp;

/// Quota cost of one call per endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// `Search: list` — 100 units.
    Search,
    /// `Videos: list` — 1 unit.
    Videos,
    /// `Channels: list` — 1 unit.
    Channels,
    /// `PlaylistItems: list` — 1 unit.
    PlaylistItems,
    /// `CommentThreads: list` — 1 unit.
    CommentThreads,
    /// `Comments: list` — 1 unit.
    Comments,
}

impl Endpoint {
    /// The documented quota cost. Every endpoint is priced explicitly —
    /// the `quota-consistency` lint rejects a wildcard arm here so a new
    /// endpoint cannot silently inherit a price.
    pub fn cost(self) -> u64 {
        match self {
            Endpoint::Search => 100,
            Endpoint::Videos => 1,
            Endpoint::Channels => 1,
            Endpoint::PlaylistItems => 1,
            Endpoint::CommentThreads => 1,
            Endpoint::Comments => 1,
        }
    }

    /// The URL path segment under `/youtube/v3/`.
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::Search => "search",
            Endpoint::Videos => "videos",
            Endpoint::Channels => "channels",
            Endpoint::PlaylistItems => "playlistItems",
            Endpoint::CommentThreads => "commentThreads",
            Endpoint::Comments => "comments",
        }
    }
}

/// The default daily quota of a newly created API client.
pub const DEFAULT_DAILY_QUOTA: u64 = 10_000;

/// The elevated quota of a researcher-program key (illustrative value;
/// actual grants vary).
pub const RESEARCHER_DAILY_QUOTA: u64 = 1_000_000;

/// Pacific time approximated as a fixed UTC−7 offset.
const PACIFIC_OFFSET: i64 = -7 * HOUR;

/// Returns the Pacific-midnight day index containing `t`.
fn pacific_day(t: Timestamp) -> i64 {
    (t.as_secs() + PACIFIC_OFFSET).div_euclid(DAY)
}

#[derive(Debug, Clone)]
struct KeyState {
    daily_limit: u64,
    used_today: u64,
    day: i64,
    lifetime_used: u64,
}

/// A thread-safe per-key quota ledger.
pub struct QuotaLedger {
    keys: Mutex<HashMap<String, KeyState>>,
    /// Limit assigned to keys seen for the first time.
    default_limit: u64,
}

/// The result of charging a quota cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Charge {
    /// The call was charged; remaining units today.
    Ok {
        /// Units left for the rest of the Pacific day.
        remaining: u64,
    },
    /// The daily budget cannot cover the call.
    Exceeded,
}

impl QuotaLedger {
    /// A ledger that grants `DEFAULT_DAILY_QUOTA` to unknown keys.
    pub fn new() -> QuotaLedger {
        QuotaLedger {
            keys: Mutex::new(HashMap::new()),
            default_limit: DEFAULT_DAILY_QUOTA,
        }
    }

    /// A ledger granting a custom default limit to unknown keys.
    pub fn with_default_limit(limit: u64) -> QuotaLedger {
        QuotaLedger {
            keys: Mutex::new(HashMap::new()),
            default_limit: limit,
        }
    }

    /// Registers (or updates) a key with an explicit daily limit — e.g.
    /// [`RESEARCHER_DAILY_QUOTA`] for a vetted research key.
    pub fn register(&self, key: &str, daily_limit: u64) {
        let mut keys = self.keys.lock();
        let state = keys.entry(key.to_string()).or_insert(KeyState {
            daily_limit,
            used_today: 0,
            day: i64::MIN,
            lifetime_used: 0,
        });
        state.daily_limit = daily_limit;
    }

    /// Attempts to charge `endpoint.cost()` units to `key` at simulated
    /// instant `now`.
    pub fn charge(&self, key: &str, endpoint: Endpoint, now: Timestamp) -> Charge {
        let mut keys = self.keys.lock();
        let state = keys.entry(key.to_string()).or_insert(KeyState {
            daily_limit: self.default_limit,
            used_today: 0,
            day: i64::MIN,
            lifetime_used: 0,
        });
        let today = pacific_day(now);
        if state.day != today {
            state.day = today;
            state.used_today = 0;
        }
        let cost = endpoint.cost();
        if state.used_today + cost > state.daily_limit {
            return Charge::Exceeded;
        }
        state.used_today += cost;
        state.lifetime_used += cost;
        Charge::Ok {
            remaining: state.daily_limit - state.used_today,
        }
    }

    /// Units used today by `key` (0 for unknown keys).
    pub fn used_today(&self, key: &str, now: Timestamp) -> u64 {
        let keys = self.keys.lock();
        match keys.get(key) {
            Some(state) if state.day == pacific_day(now) => state.used_today,
            _ => 0,
        }
    }

    /// Lifetime units used by `key`.
    pub fn lifetime_used(&self, key: &str) -> u64 {
        self.keys.lock().get(key).map_or(0, |s| s.lifetime_used)
    }
}

impl Default for QuotaLedger {
    fn default() -> QuotaLedger {
        QuotaLedger::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::from_ymd_hms(2025, 2, 9, 12, 0, 0).unwrap()
    }

    #[test]
    fn costs_match_documentation() {
        assert_eq!(Endpoint::Search.cost(), 100);
        assert_eq!(Endpoint::Videos.cost(), 1);
        assert_eq!(Endpoint::CommentThreads.cost(), 1);
    }

    #[test]
    fn default_key_allows_100_searches_per_day() {
        let ledger = QuotaLedger::new();
        for i in 0..100 {
            match ledger.charge("k", Endpoint::Search, t0()) {
                Charge::Ok { remaining } => assert_eq!(remaining, 10_000 - 100 * (i + 1)),
                Charge::Exceeded => panic!("exceeded at search {i}"),
            }
        }
        assert_eq!(ledger.charge("k", Endpoint::Search, t0()), Charge::Exceeded);
        // ID-based calls still fail once the bucket is empty...
        assert_eq!(ledger.used_today("k", t0()), 10_000);
        assert_eq!(ledger.charge("k", Endpoint::Videos, t0()), Charge::Exceeded);
    }

    #[test]
    fn id_endpoints_are_cheap() {
        let ledger = QuotaLedger::new();
        for _ in 0..9_999 {
            assert!(matches!(ledger.charge("k", Endpoint::Videos, t0()), Charge::Ok { .. }));
        }
        // One search no longer fits (9 999 + 100 > 10 000)…
        assert_eq!(ledger.charge("k", Endpoint::Search, t0()), Charge::Exceeded);
        // …but one more unit call does.
        assert!(matches!(ledger.charge("k", Endpoint::Comments, t0()), Charge::Ok { .. }));
    }

    #[test]
    fn quota_resets_at_pacific_midnight() {
        let ledger = QuotaLedger::new();
        // Exhaust on day 1.
        for _ in 0..100 {
            ledger.charge("k", Endpoint::Search, t0());
        }
        assert_eq!(ledger.charge("k", Endpoint::Search, t0()), Charge::Exceeded);
        // 06:59 UTC next day is still the same Pacific day (UTC−7).
        let before_reset = Timestamp::from_ymd_hms(2025, 2, 10, 6, 59, 0).unwrap();
        assert_eq!(ledger.charge("k", Endpoint::Search, before_reset), Charge::Exceeded);
        // 07:00 UTC is Pacific midnight: fresh budget.
        let after_reset = Timestamp::from_ymd_hms(2025, 2, 10, 7, 0, 0).unwrap();
        assert!(matches!(
            ledger.charge("k", Endpoint::Search, after_reset),
            Charge::Ok { .. }
        ));
        assert_eq!(ledger.used_today("k", after_reset), 100);
        assert_eq!(ledger.lifetime_used("k"), 10_100);
    }

    #[test]
    fn researcher_keys_get_bigger_budgets() {
        let ledger = QuotaLedger::new();
        ledger.register("research", RESEARCHER_DAILY_QUOTA);
        // A full paper-style collection: 4 032 searches = 403 200 units.
        for i in 0..4_032 {
            assert!(
                matches!(ledger.charge("research", Endpoint::Search, t0()), Charge::Ok { .. }),
                "failed at search {i}"
            );
        }
        assert_eq!(ledger.used_today("research", t0()), 403_200);
    }

    #[test]
    fn keys_are_independent() {
        let ledger = QuotaLedger::new();
        for _ in 0..100 {
            ledger.charge("a", Endpoint::Search, t0());
        }
        assert_eq!(ledger.charge("a", Endpoint::Search, t0()), Charge::Exceeded);
        assert!(matches!(ledger.charge("b", Endpoint::Search, t0()), Charge::Ok { .. }));
    }
}
