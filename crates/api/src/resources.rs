//! Wire-schema resources mirroring the YouTube Data API v3 JSON shapes.
//!
//! Fidelity notes (matching the real API, which the audit's tooling must
//! parse):
//! * all counters in `statistics` parts are **strings** on the wire
//!   (`"viewCount": "123"`), not numbers;
//! * list responses carry `kind`, `etag`, optional `nextPageToken`/
//!   `prevPageToken`, and a `pageInfo` with `totalResults` (the field the
//!   paper's Table 4 analyzes) and `resultsPerPage`;
//! * search items nest the video ID under `id.videoId` while `Videos:
//!   list` items carry a bare string `id`.

use serde::{Deserialize, Serialize};

/// `pageInfo` on every list response. `totalResults` is the noisy,
/// 1M-capped pool estimate the paper studies in §5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct PageInfo {
    /// "The total number of results in the result set" (documented max
    /// 1,000,000).
    pub total_results: u64,
    /// Number of results per page for this request.
    pub results_per_page: u32,
}

/// `snippet` of a search result or playlist item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct Snippet {
    /// RFC 3339 upload instant.
    pub published_at: String,
    /// Uploading channel ID.
    pub channel_id: String,
    /// Video title.
    pub title: String,
    /// Video description.
    pub description: String,
    /// Uploading channel title.
    pub channel_title: String,
    /// `none`, `live`, or `upcoming`; always `none` for our corpus.
    pub live_broadcast_content: String,
}

/// The `id` object of a search result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct SearchResultId {
    /// Always `youtube#video` here (`type=video` searches).
    pub kind: String,
    /// The video ID.
    pub video_id: String,
}

/// One `Search: list` item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct SearchResult {
    /// `youtube#searchResult`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Nested ID object.
    pub id: SearchResultId,
    /// Snippet part (present when `part=snippet`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub snippet: Option<Snippet>,
}

/// `Search: list` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct SearchListResponse {
    /// `youtube#searchListResponse`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Token for the next page, when more results exist.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next_page_token: Option<String>,
    /// Token for the previous page.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub prev_page_token: Option<String>,
    /// Region the request was processed for.
    pub region_code: String,
    /// Pagination metadata, including `totalResults`.
    pub page_info: PageInfo,
    /// The page of results.
    pub items: Vec<SearchResult>,
}

/// `contentDetails` of a video.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct VideoContentDetails {
    /// ISO-8601 duration, e.g. `PT4M13S`.
    pub duration: String,
    /// `hd` or `sd`.
    pub definition: String,
}

/// `statistics` of a video — all counters are strings on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct VideoStatistics {
    /// View count as a decimal string.
    pub view_count: String,
    /// Like count as a decimal string.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub like_count: Option<String>,
    /// Comment count as a decimal string.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub comment_count: Option<String>,
}

/// One `Videos: list` item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct VideoResource {
    /// `youtube#video`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Bare video ID (unlike search results).
    pub id: String,
    /// Snippet part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub snippet: Option<Snippet>,
    /// Content details part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub content_details: Option<VideoContentDetails>,
    /// Statistics part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub statistics: Option<VideoStatistics>,
}

/// `Videos: list` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct VideoListResponse {
    /// `youtube#videoListResponse`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Next-page token.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next_page_token: Option<String>,
    /// Pagination metadata.
    pub page_info: PageInfo,
    /// The page of resources. Unknown or unavailable IDs are *omitted*,
    /// not errors — exactly the behaviour Figure 4 measures.
    pub items: Vec<VideoResource>,
}

/// Channel `snippet`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ChannelSnippet {
    /// Channel title.
    pub title: String,
    /// Channel description.
    pub description: String,
    /// Channel creation instant.
    pub published_at: String,
}

/// Channel `statistics` — strings on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ChannelStatistics {
    /// Total channel views.
    pub view_count: String,
    /// Subscriber count.
    pub subscriber_count: String,
    /// Whether the subscriber count is hidden.
    pub hidden_subscriber_count: bool,
    /// Number of public videos.
    pub video_count: String,
}

/// `contentDetails.relatedPlaylists` of a channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct RelatedPlaylists {
    /// The uploads playlist (`UU…`) — the ID-based route to complete
    /// channel catalogues the paper recommends.
    pub uploads: String,
}

/// Channel `contentDetails`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ChannelContentDetails {
    /// Related playlists (uploads).
    pub related_playlists: RelatedPlaylists,
}

/// One `Channels: list` item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ChannelResource {
    /// `youtube#channel`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Channel ID.
    pub id: String,
    /// Snippet part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub snippet: Option<ChannelSnippet>,
    /// Content details part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub content_details: Option<ChannelContentDetails>,
    /// Statistics part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub statistics: Option<ChannelStatistics>,
}

/// `Channels: list` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ChannelListResponse {
    /// `youtube#channelListResponse`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Pagination metadata.
    pub page_info: PageInfo,
    /// The page of resources.
    pub items: Vec<ChannelResource>,
}

/// Playlist item `snippet.resourceId`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ResourceId {
    /// `youtube#video`.
    pub kind: String,
    /// The video ID.
    pub video_id: String,
}

/// Playlist item snippet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct PlaylistItemSnippet {
    /// Upload instant of the contained video.
    pub published_at: String,
    /// Owning channel.
    pub channel_id: String,
    /// Video title.
    pub title: String,
    /// Playlist this item belongs to.
    pub playlist_id: String,
    /// Zero-based position within the playlist.
    pub position: u32,
    /// The contained resource.
    pub resource_id: ResourceId,
}

/// One `PlaylistItems: list` item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct PlaylistItemResource {
    /// `youtube#playlistItem`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Playlist item ID.
    pub id: String,
    /// Snippet part.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub snippet: Option<PlaylistItemSnippet>,
}

/// `PlaylistItems: list` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct PlaylistItemListResponse {
    /// `youtube#playlistItemListResponse`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Next-page token.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next_page_token: Option<String>,
    /// Pagination metadata.
    pub page_info: PageInfo,
    /// The page of resources.
    pub items: Vec<PlaylistItemResource>,
}

/// Comment snippet (shared by top-level comments and replies).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentSnippet {
    /// The video the comment is on.
    pub video_id: String,
    /// Comment text.
    pub text_display: String,
    /// Commenting channel.
    pub author_channel_id: String,
    /// Likes on the comment.
    pub like_count: u64,
    /// Posting instant.
    pub published_at: String,
    /// Parent comment ID, for replies.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub parent_id: Option<String>,
}

/// A comment resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentResource {
    /// `youtube#comment`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Comment ID (replies are `parent.child`).
    pub id: String,
    /// Snippet part.
    pub snippet: CommentSnippet,
}

/// `commentThread.snippet`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentThreadSnippet {
    /// The video the thread is on.
    pub video_id: String,
    /// The thread's top-level comment.
    pub top_level_comment: CommentResource,
    /// Total number of replies (may exceed the ≤ 5 embedded in
    /// `replies.comments`; fetch the rest via `Comments: list`).
    pub total_reply_count: u64,
    /// Whether replies are possible.
    pub can_reply: bool,
}

/// Embedded replies of a comment thread (at most five).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentThreadReplies {
    /// Up to five reply comments.
    pub comments: Vec<CommentResource>,
}

/// One `CommentThreads: list` item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentThreadResource {
    /// `youtube#commentThread`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Thread ID (= top-level comment ID).
    pub id: String,
    /// Snippet part.
    pub snippet: CommentThreadSnippet,
    /// Embedded replies, when any exist.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub replies: Option<CommentThreadReplies>,
}

/// `CommentThreads: list` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentThreadListResponse {
    /// `youtube#commentThreadListResponse`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Next-page token.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next_page_token: Option<String>,
    /// Pagination metadata.
    pub page_info: PageInfo,
    /// The page of threads.
    pub items: Vec<CommentThreadResource>,
}

/// `Comments: list` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct CommentListResponse {
    /// `youtube#commentListResponse`.
    pub kind: String,
    /// Entity tag.
    pub etag: String,
    /// Next-page token.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next_page_token: Option<String>,
    /// Pagination metadata.
    pub page_info: PageInfo,
    /// The page of comments.
    pub items: Vec<CommentResource>,
}

/// One entry of the error envelope's `errors` array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ErrorItem {
    /// Human-readable message.
    pub message: String,
    /// Error domain (e.g. `youtube.quota`).
    pub domain: String,
    /// Machine-readable reason (e.g. `quotaExceeded`).
    pub reason: String,
}

/// The inner error object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct ErrorBody {
    /// HTTP status code.
    pub code: u16,
    /// Top-level message.
    pub message: String,
    /// Individual errors.
    pub errors: Vec<ErrorItem>,
    /// `Retry-After` hint in seconds, on shed (429) responses. The real
    /// API carries this as an HTTP header; the envelope mirrors it so
    /// in-process transports (which only see the body) get the hint too.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry_after_secs: Option<u64>,
}

/// The error envelope every failed Data API call returns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// The error payload.
    pub error: ErrorBody,
}

/// Computes a stable etag for a response body fragment.
pub fn etag_for(content: &str) -> String {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for b in content.bytes() {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("\"yt-sim-{acc:016x}\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_response_serializes_like_the_real_api() {
        let resp = SearchListResponse {
            kind: "youtube#searchListResponse".into(),
            etag: etag_for("x"),
            next_page_token: Some("CAUQAA".into()),
            prev_page_token: None,
            region_code: "US".into(),
            page_info: PageInfo {
                total_results: 1_000_000,
                results_per_page: 50,
            },
            items: vec![SearchResult {
                kind: "youtube#searchResult".into(),
                etag: etag_for("item"),
                id: SearchResultId {
                    kind: "youtube#video".into(),
                    video_id: "dQw4w9WgXcQ".into(),
                },
                snippet: Some(Snippet {
                    published_at: "2016-06-23T12:00:00Z".into(),
                    channel_id: "UCabc".into(),
                    title: "t".into(),
                    description: "d".into(),
                    channel_title: "ct".into(),
                    live_broadcast_content: "none".into(),
                }),
            }],
        };
        let json = serde_json::to_value(&resp).unwrap();
        assert_eq!(json["kind"], "youtube#searchListResponse");
        assert_eq!(json["pageInfo"]["totalResults"], 1_000_000);
        assert_eq!(json["items"][0]["id"]["videoId"], "dQw4w9WgXcQ");
        assert_eq!(json["items"][0]["snippet"]["publishedAt"], "2016-06-23T12:00:00Z");
        assert!(json.get("prevPageToken").is_none());
        // Round trip.
        let back: SearchListResponse = serde_json::from_value(json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn statistics_are_strings_on_the_wire() {
        let stats = VideoStatistics {
            view_count: "12345".into(),
            like_count: Some("99".into()),
            comment_count: None,
        };
        let json = serde_json::to_value(&stats).unwrap();
        assert_eq!(json["viewCount"], "12345");
        assert_eq!(json["likeCount"], "99");
        assert!(json.get("commentCount").is_none());
    }

    #[test]
    fn error_envelope_shape() {
        let err = ErrorResponse {
            error: ErrorBody {
                code: 403,
                message: "The request cannot be completed because you have exceeded your quota.".into(),
                errors: vec![ErrorItem {
                    message: "quota exceeded".into(),
                    domain: "youtube.quota".into(),
                    reason: "quotaExceeded".into(),
                }],
                retry_after_secs: None,
            },
        };
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"code\":403"));
        assert!(json.contains("\"reason\":\"quotaExceeded\""));
        assert!(!json.contains("retryAfterSecs"), "absent hint is omitted");
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.errors[0].reason, "quotaExceeded");
        assert_eq!(back.error.retry_after_secs, None);
    }

    #[test]
    fn error_envelope_carries_the_retry_after_hint() {
        let err = ErrorResponse {
            error: ErrorBody {
                code: 429,
                message: "shed".into(),
                errors: vec![ErrorItem {
                    message: "shed".into(),
                    domain: "youtube.parameter".into(),
                    reason: "rateLimitExceeded".into(),
                }],
                retry_after_secs: Some(3),
            },
        };
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"retryAfterSecs\":3"), "{json}");
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.retry_after_secs, Some(3));
    }

    #[test]
    fn etags_are_stable_and_distinct() {
        assert_eq!(etag_for("a"), etag_for("a"));
        assert_ne!(etag_for("a"), etag_for("b"));
        assert!(etag_for("a").starts_with('"'));
    }

    #[test]
    fn comment_thread_shape() {
        let comment = CommentResource {
            kind: "youtube#comment".into(),
            etag: etag_for("c"),
            id: "abc".into(),
            snippet: CommentSnippet {
                video_id: "vid".into(),
                text_display: "first!".into(),
                author_channel_id: "UCx".into(),
                like_count: 3,
                published_at: "2021-01-07T00:00:00Z".into(),
                parent_id: None,
            },
        };
        let thread = CommentThreadResource {
            kind: "youtube#commentThread".into(),
            etag: etag_for("t"),
            id: "abc".into(),
            snippet: CommentThreadSnippet {
                video_id: "vid".into(),
                top_level_comment: comment.clone(),
                total_reply_count: 2,
                can_reply: true,
            },
            replies: Some(CommentThreadReplies {
                comments: vec![CommentResource {
                    id: "abc.def".into(),
                    snippet: CommentSnippet {
                        parent_id: Some("abc".into()),
                        ..comment.snippet.clone()
                    },
                    ..comment.clone()
                }],
            }),
        };
        let json = serde_json::to_value(&thread).unwrap();
        assert_eq!(json["snippet"]["topLevelComment"]["id"], "abc");
        assert_eq!(json["replies"]["comments"][0]["snippet"]["parentId"], "abc");
        assert_eq!(json["snippet"]["totalReplyCount"], 2);
    }
}
