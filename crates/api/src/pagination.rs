//! Opaque page tokens and list slicing.
//!
//! Real Data API tokens (`CAUQAA`…) are opaque protobufs; ours are opaque
//! enough — an offset plus a hash of the originating query, so a token
//! replayed against a *different* query is rejected with
//! `invalidPageToken` just like the real API.

use ytaudit_types::{ApiErrorReason, Error, Result};

/// A decoded page token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageToken {
    /// Hash of the query this token belongs to.
    pub query_hash: u64,
    /// Item offset of the page this token starts.
    pub offset: usize,
}

impl PageToken {
    /// Encodes to the wire form.
    pub fn encode(&self) -> String {
        // Mixed into one string; the `CT` prefix nods to the real API's
        // base64 flavour without pretending to be it.
        format!("CT{:x}S{:016x}", self.offset, self.query_hash)
    }

    /// Decodes a wire token, validating it against the current query.
    pub fn decode(raw: &str, expected_query_hash: u64) -> Result<PageToken> {
        let bad = || {
            Error::api(
                ApiErrorReason::InvalidPageToken,
                format!("The request specifies an invalid page token: {raw:?}"),
            )
        };
        let rest = raw.strip_prefix("CT").ok_or_else(bad)?;
        let (offset_hex, hash_hex) = rest.split_once('S').ok_or_else(bad)?;
        let offset = usize::from_str_radix(offset_hex, 16).map_err(|_| bad())?;
        let query_hash = u64::from_str_radix(hash_hex, 16).map_err(|_| bad())?;
        if query_hash != expected_query_hash {
            return Err(bad());
        }
        Ok(PageToken { query_hash, offset })
    }
}

/// One page of a list plus its neighbours' tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Start index (inclusive) into the full result list.
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
    /// Token for the next page, if any items remain.
    pub next: Option<String>,
    /// Token for the previous page, if this is not the first.
    pub prev: Option<String>,
}

/// Slices a result list of `total` items into the page selected by
/// `token` (or the first page), `page_size` items at a time.
pub fn paginate(
    total: usize,
    page_size: usize,
    token: Option<&str>,
    query_hash: u64,
) -> Result<Page> {
    let offset = match token {
        Some(raw) => PageToken::decode(raw, query_hash)?.offset,
        None => 0,
    };
    if offset > total {
        return Err(Error::api(
            ApiErrorReason::InvalidPageToken,
            "The request specifies a page token past the end of the result set.",
        ));
    }
    let end = (offset + page_size).min(total);
    let next = (end < total).then(|| {
        PageToken {
            query_hash,
            offset: end,
        }
        .encode()
    });
    let prev = (offset > 0).then(|| {
        PageToken {
            query_hash,
            offset: offset.saturating_sub(page_size),
        }
        .encode()
    });
    Ok(Page {
        start: offset,
        end,
        next,
        prev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        let token = PageToken {
            query_hash: 0xDEADBEEF,
            offset: 150,
        };
        let wire = token.encode();
        assert_eq!(PageToken::decode(&wire, 0xDEADBEEF).unwrap(), token);
    }

    #[test]
    fn token_rejects_other_query() {
        let wire = PageToken {
            query_hash: 1,
            offset: 50,
        }
        .encode();
        let err = PageToken::decode(&wire, 2).unwrap_err();
        assert_eq!(err.api_reason(), Some(ApiErrorReason::InvalidPageToken));
    }

    #[test]
    fn token_rejects_garbage() {
        for raw in ["", "nonsense", "CT", "CTxxSyy", "CT10", "XY1S0000000000000001"] {
            assert!(PageToken::decode(raw, 1).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn pagination_walks_the_whole_list() {
        let total = 137;
        let page_size = 50;
        let mut seen = 0;
        let mut token: Option<String> = None;
        let mut pages = 0;
        loop {
            let page = paginate(total, page_size, token.as_deref(), 9).unwrap();
            seen += page.end - page.start;
            pages += 1;
            match page.next {
                Some(next) => token = Some(next),
                None => break,
            }
        }
        assert_eq!(seen, total);
        assert_eq!(pages, 3);
    }

    #[test]
    fn pages_partition_without_overlap() {
        let total = 120;
        let first = paginate(total, 50, None, 3).unwrap();
        assert_eq!((first.start, first.end), (0, 50));
        assert!(first.prev.is_none());
        let second = paginate(total, 50, first.next.as_deref(), 3).unwrap();
        assert_eq!((second.start, second.end), (50, 100));
        assert!(second.prev.is_some());
        let third = paginate(total, 50, second.next.as_deref(), 3).unwrap();
        assert_eq!((third.start, third.end), (100, 120));
        assert!(third.next.is_none());
        // Previous token of page 2 goes back to page 1.
        let back = paginate(total, 50, second.prev.as_deref(), 3).unwrap();
        assert_eq!((back.start, back.end), (0, 50));
    }

    #[test]
    fn empty_list_has_single_empty_page() {
        let page = paginate(0, 50, None, 1).unwrap();
        assert_eq!((page.start, page.end), (0, 0));
        assert!(page.next.is_none());
        assert!(page.prev.is_none());
    }
}
