//! HTTP binding: serves the simulated Data API over `ytaudit-net`.
//!
//! Routes mirror the real service (`GET /youtube/v3/<endpoint>?…&key=K`),
//! plus two simulation affordances:
//!
//! * the `X-Sim-Time` request header overrides the service clock for that
//!   request (RFC 3339), letting an HTTP client time-travel per request;
//! * `POST /admin/clock` with `{"now": "…"}` moves the shared clock, and
//!   `GET /admin/clock` reads it.

use crate::quota::Endpoint;
use crate::service::{error_response, ApiRequest, ApiService};
use std::sync::Arc;
use ytaudit_net::server::{Server, ServerConfig, ServerHandle};
use ytaudit_net::{Request, Response, StatusCode};
use ytaudit_types::{ApiErrorReason, Error, Timestamp};

/// Binds `service` on `addr` (use `127.0.0.1:0` for an ephemeral port).
pub fn serve(service: Arc<ApiService>, addr: &str) -> ytaudit_net::Result<ServerHandle> {
    serve_with_config(service, addr, ServerConfig::default())
}

/// Binds with explicit server configuration.
pub fn serve_with_config(
    service: Arc<ApiService>,
    addr: &str,
    config: ServerConfig,
) -> ytaudit_net::Result<ServerHandle> {
    let handler = Arc::new(move |req: &Request| route(&service, req));
    Server::bind(addr, handler, config)
}

/// Maps a request path to its API endpoint, or `None` for anything that
/// is not a `/youtube/v3/<endpoint>` route. Front ends (e.g. the tenant
/// admission layer in `ytaudit-sched`) use this to price a request in
/// quota units *before* deciding whether to route it at all.
pub fn endpoint_for_path(path: &str) -> Option<Endpoint> {
    let rest = path.strip_prefix("/youtube/v3/")?;
    match rest {
        "search" => Some(Endpoint::Search),
        "videos" => Some(Endpoint::Videos),
        "channels" => Some(Endpoint::Channels),
        "playlistItems" => Some(Endpoint::PlaylistItems),
        "commentThreads" => Some(Endpoint::CommentThreads),
        "comments" => Some(Endpoint::Comments),
        _ => None,
    }
}

/// Routes one parsed request to the service and renders the response.
/// Public so alternative front ends (the event-loop server, the tenant
/// admission layer) can reuse the exact routing table the blocking
/// server uses.
pub fn route(service: &ApiService, req: &Request) -> Response {
    match (req.method, req.path.as_str()) {
        (ytaudit_net::Method::Get, "/healthz") => Response::text(StatusCode::OK, "ok"),
        (ytaudit_net::Method::Get, "/admin/clock") => clock_body(service),
        (ytaudit_net::Method::Post, "/admin/clock") => set_clock(service, req),
        (ytaudit_net::Method::Get, path) if path.starts_with("/youtube/v3/") => {
            let endpoint = match endpoint_for_path(path) {
                Some(endpoint) => endpoint,
                None => {
                    let other = &path["/youtube/v3/".len()..];
                    let (code, body) = error_response(&Error::api(
                        ApiErrorReason::NotFound,
                        format!("Unknown endpoint {other:?}."),
                    ));
                    return Response::json(StatusCode(code), body.into_bytes());
                }
            };
            api_call(service, req, endpoint)
        }
        (_, path) if path.starts_with("/youtube/v3/") || path.starts_with("/admin/") => {
            Response::text(StatusCode::METHOD_NOT_ALLOWED, "method not allowed")
        }
        _ => {
            let (code, body) = error_response(&Error::api(
                ApiErrorReason::NotFound,
                format!("No route for {:?}.", req.path),
            ));
            Response::json(StatusCode(code), body.into_bytes())
        }
    }
}

fn api_call(service: &ApiService, req: &Request, endpoint: Endpoint) -> Response {
    // The `key` parameter authenticates; everything else is endpoint
    // parameters.
    let mut api_key = None;
    let mut params = Vec::new();
    for (k, v) in req.query.pairs() {
        if k == "key" {
            api_key = Some(v.clone());
        } else {
            params.push((k.clone(), v.clone()));
        }
    }
    let now_override = match req.headers.get("x-sim-time") {
        Some(raw) => match Timestamp::parse_rfc3339(raw) {
            Ok(t) => Some(t),
            Err(_) => {
                let (code, body) = error_response(&Error::api(
                    ApiErrorReason::InvalidParameter,
                    format!("Malformed X-Sim-Time header: {raw:?}"),
                ));
                return Response::json(StatusCode(code), body.into_bytes());
            }
        },
        None => None,
    };
    let (status, body) = service.handle(&ApiRequest {
        endpoint,
        params,
        api_key,
        now_override,
    });
    Response::json(StatusCode(status), body.into_bytes())
}

fn clock_body(service: &ApiService) -> Response {
    Response::json(
        StatusCode::OK,
        format!("{{\"now\":\"{}\"}}", service.clock().now().to_rfc3339()).into_bytes(),
    )
}

fn set_clock(service: &ApiService, req: &Request) -> Response {
    let parsed: Result<serde_json::Value, _> = serde_json::from_slice(&req.body);
    let now_text = parsed
        .ok()
        .and_then(|v| v.get("now").and_then(|n| n.as_str().map(String::from)));
    match now_text.and_then(|t| Timestamp::parse_rfc3339(&t).ok()) {
        Some(t) => {
            service.clock().set(t);
            clock_body(service)
        }
        None => {
            let (code, body) = error_response(&Error::api(
                ApiErrorReason::InvalidParameter,
                "POST /admin/clock expects {\"now\": \"<RFC 3339>\"}.",
            ));
            Response::json(StatusCode(code), body.into_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{ErrorResponse, SearchListResponse, VideoListResponse};
    use ytaudit_net::HttpClient;
    use ytaudit_platform::{Platform, SimClock};
    use ytaudit_types::Topic;

    fn spawn() -> (ServerHandle, Arc<ApiService>, HttpClient) {
        let platform = Arc::new(Platform::small(0.25));
        let service = Arc::new(ApiService::new(platform, SimClock::at_audit_start()));
        service.quota().register("k", 100_000_000);
        let handle = serve(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (handle, service, HttpClient::new())
    }

    #[test]
    fn healthz_and_clock() {
        let (server, _svc, client) = spawn();
        let base = server.base_url();
        let health = client.get(&format!("{base}/healthz")).unwrap();
        assert_eq!(health.status, StatusCode::OK);
        let clock = client.get(&format!("{base}/admin/clock")).unwrap();
        assert!(clock.body_text().unwrap().contains("2025-02-09T00:00:00Z"));
        let set = client
            .post(
                &format!("{base}/admin/clock"),
                br#"{"now":"2025-04-30T00:00:00Z"}"#.to_vec(),
            )
            .unwrap();
        assert_eq!(set.status, StatusCode::OK);
        assert!(set.body_text().unwrap().contains("2025-04-30"));
        let bad = client
            .post(&format!("{base}/admin/clock"), b"not json".to_vec())
            .unwrap();
        assert_eq!(bad.status, StatusCode::BAD_REQUEST);
        server.shutdown();
    }

    #[test]
    fn search_over_the_wire() {
        let (server, _svc, client) = spawn();
        let base = server.base_url();
        let spec = Topic::Higgs.spec();
        let url = format!(
            "{base}/youtube/v3/search?part=snippet&q={}&type=video&order=date&maxResults=50&publishedAfter={}&publishedBefore={}&key=k",
            ytaudit_net::url::encode_component(spec.query),
            ytaudit_net::url::encode_component(&Topic::Higgs.window_start().to_rfc3339()),
            ytaudit_net::url::encode_component(&Topic::Higgs.window_end().to_rfc3339()),
        );
        let resp = client.get(&url).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{}", resp.body_text().unwrap());
        let parsed: SearchListResponse = serde_json::from_slice(&resp.body).unwrap();
        assert!(!parsed.items.is_empty());
        assert!(parsed.page_info.total_results > 1_000);
        server.shutdown();
    }

    #[test]
    fn sim_time_header_time_travels() {
        let (server, svc, client) = spawn();
        let base = server.base_url();
        let video = svc.platform().corpus().topics[0].videos[0].clone();
        let url = ytaudit_net::Url::parse(&format!(
            "{base}/youtube/v3/videos?part=id&id={}&key=k",
            video.id
        ))
        .unwrap();
        let req = ytaudit_net::Request::get(url.path.clone())
            .with_query(url.query.clone())
            .with_header("x-sim-time", "2025-03-15T00:00:00Z");
        let resp = client.send(&url, &req).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        let _parsed: VideoListResponse = serde_json::from_slice(&resp.body).unwrap();
        // Malformed header is a 400.
        let bad = ytaudit_net::Request::get(url.path.clone())
            .with_query(url.query.clone())
            .with_header("x-sim-time", "not-a-time");
        let resp = client.send(&url, &bad).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        server.shutdown();
    }

    #[test]
    fn missing_key_and_unknown_routes() {
        let (server, _svc, client) = spawn();
        let base = server.base_url();
        let no_key = client
            .get(&format!("{base}/youtube/v3/videos?part=id&id=abc"))
            .unwrap();
        assert_eq!(no_key.status, StatusCode::FORBIDDEN);
        let err: ErrorResponse = serde_json::from_slice(&no_key.body).unwrap();
        assert_eq!(err.error.errors[0].reason, "forbidden");
        let unknown = client
            .get(&format!("{base}/youtube/v3/subscriptions?key=k"))
            .unwrap();
        assert_eq!(unknown.status, StatusCode::NOT_FOUND);
        let nothing = client.get(&format!("{base}/nope")).unwrap();
        assert_eq!(nothing.status, StatusCode::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn post_to_api_endpoint_is_405() {
        let (server, _svc, client) = spawn();
        let base = server.base_url();
        let resp = client
            .post(&format!("{base}/youtube/v3/search?key=k"), b"{}".to_vec())
            .unwrap();
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
        server.shutdown();
    }
}
