//! Request-parameter parsing and validation for each endpoint, with the
//! real API's error reasons (`invalidParameter`, `invalidSearchFilter`).

use ytaudit_platform::{SearchOrder, SearchParams};
use ytaudit_types::topic::tokenize;
use ytaudit_types::{ApiErrorReason, ChannelId, Error, Result, Timestamp};

/// Raw key/value pairs, as they come off a query string.
pub type RawParams = [(String, String)];

/// Looks up the first value of `key`.
pub fn get<'a>(params: &'a RawParams, key: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn invalid(name: &str, detail: impl std::fmt::Display) -> Error {
    Error::api(
        ApiErrorReason::InvalidParameter,
        format!("Invalid value for parameter {name:?}: {detail}"),
    )
}

/// Validates the `part` parameter: required, and every requested part must
/// be one of `allowed`.
pub fn parse_part(params: &RawParams, allowed: &[&str]) -> Result<Vec<String>> {
    let raw = get(params, "part").ok_or_else(|| {
        Error::api(
            ApiErrorReason::InvalidParameter,
            "Required parameter 'part' is missing.",
        )
    })?;
    let parts: Vec<String> = raw
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    if parts.is_empty() {
        return Err(invalid("part", "no parts requested"));
    }
    for part in &parts {
        if !allowed.contains(&part.as_str()) {
            return Err(invalid("part", format!("unknown part {part:?}")));
        }
    }
    Ok(parts)
}

/// Parses `maxResults` with endpoint-specific default and maximum.
pub fn parse_max_results(params: &RawParams, default: u32, max: u32) -> Result<u32> {
    match get(params, "maxResults") {
        None => Ok(default),
        Some(raw) => {
            let value: u32 = raw.parse().map_err(|_| invalid("maxResults", raw))?;
            if value > max {
                return Err(invalid(
                    "maxResults",
                    format!("{value} exceeds the maximum of {max}"),
                ));
            }
            Ok(value)
        }
    }
}

/// Parses an RFC 3339 timestamp parameter.
fn parse_time(params: &RawParams, name: &str) -> Result<Option<Timestamp>> {
    match get(params, name) {
        None => Ok(None),
        Some(raw) => Timestamp::parse_rfc3339(raw)
            .map(Some)
            .map_err(|_| invalid(name, raw)),
    }
}

/// Comma-separated ID list (`id=a,b,c`), also accepting repeated `id`
/// parameters the way the real API does.
pub fn parse_id_list(params: &RawParams, name: &str) -> Result<Vec<String>> {
    let mut ids = Vec::new();
    for (k, v) in params.iter() {
        if k == name {
            ids.extend(
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from),
            );
        }
    }
    if ids.is_empty() {
        return Err(Error::api(
            ApiErrorReason::InvalidParameter,
            format!("Required parameter {name:?} is missing."),
        ));
    }
    if ids.len() > 50 {
        return Err(invalid(name, "at most 50 IDs per request"));
    }
    Ok(ids)
}

/// The fully validated `Search: list` request.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// Requested parts.
    pub parts: Vec<String>,
    /// Sampler-facing parameters.
    pub search: SearchParams,
    /// Page size (1–50, default 5).
    pub max_results: u32,
    /// Raw page token.
    pub page_token: Option<String>,
}

/// Parses and validates a search request.
pub fn parse_search(params: &RawParams) -> Result<SearchRequest> {
    let parts = parse_part(params, &["id", "snippet"])?;
    let max_results = parse_max_results(params, 5, 50)?;
    let order = match get(params, "order") {
        None | Some("relevance") => SearchOrder::Relevance,
        Some("date") => SearchOrder::Date,
        Some("viewCount") => SearchOrder::ViewCount,
        Some(other) => return Err(invalid("order", other)),
    };
    if let Some(kind) = get(params, "type") {
        if kind != "video" {
            // We only model video search; the real API would accept
            // channel/playlist types.
            return Err(Error::api(
                ApiErrorReason::InvalidSearchFilter,
                format!("Unsupported search type {kind:?}; this service models type=video."),
            ));
        }
    }
    if let Some(safe) = get(params, "safeSearch") {
        if !matches!(safe, "none" | "moderate" | "strict") {
            return Err(invalid("safeSearch", safe));
        }
    }
    let q = get(params, "q").unwrap_or("");
    let tokens = tokenize(q);
    let channel_id = get(params, "channelId").map(ChannelId::new);
    if tokens.is_empty() && channel_id.is_none() {
        return Err(Error::api(
            ApiErrorReason::InvalidSearchFilter,
            "A search request must specify at least a keyword query or a channelId filter.",
        ));
    }
    let published_after = parse_time(params, "publishedAfter")?;
    let published_before = parse_time(params, "publishedBefore")?;
    if let (Some(after), Some(before)) = (published_after, published_before) {
        if after >= before {
            return Err(invalid(
                "publishedAfter",
                "publishedAfter must precede publishedBefore",
            ));
        }
    }
    Ok(SearchRequest {
        parts,
        search: SearchParams {
            tokens,
            published_after,
            published_before,
            channel_id,
            order,
        },
        max_results,
        page_token: get(params, "pageToken").map(String::from),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parses_the_papers_exact_query() {
        // Appendix A's general parameters.
        let params = raw(&[
            ("part", "snippet"),
            ("maxResults", "50"),
            ("order", "date"),
            ("safeSearch", "none"),
            ("publishedAfter", "2016-06-09T00:00:00Z"),
            ("publishedBefore", "2016-07-07T00:00:00Z"),
            ("type", "video"),
            ("q", "brexit referendum"),
        ]);
        let req = parse_search(&params).unwrap();
        assert_eq!(req.max_results, 50);
        assert_eq!(req.search.order, SearchOrder::Date);
        assert_eq!(req.search.tokens, vec!["brexit", "referendum"]);
        assert_eq!(
            req.search.published_after.unwrap().to_rfc3339(),
            "2016-06-09T00:00:00Z"
        );
        assert!(req.search.channel_id.is_none());
    }

    #[test]
    fn part_is_required() {
        let err = parse_search(&raw(&[("q", "x")])).unwrap_err();
        assert_eq!(err.api_reason(), Some(ApiErrorReason::InvalidParameter));
        let err2 = parse_part(&raw(&[("part", "nonsense")]), &["snippet"]).unwrap_err();
        assert_eq!(err2.api_reason(), Some(ApiErrorReason::InvalidParameter));
        assert!(parse_part(&raw(&[("part", "snippet,id")]), &["id", "snippet"]).is_ok());
    }

    #[test]
    fn max_results_bounds() {
        assert_eq!(parse_max_results(&raw(&[]), 5, 50).unwrap(), 5);
        assert_eq!(
            parse_max_results(&raw(&[("maxResults", "50")]), 5, 50).unwrap(),
            50
        );
        assert!(parse_max_results(&raw(&[("maxResults", "51")]), 5, 50).is_err());
        assert!(parse_max_results(&raw(&[("maxResults", "-1")]), 5, 50).is_err());
        assert!(parse_max_results(&raw(&[("maxResults", "abc")]), 5, 50).is_err());
    }

    #[test]
    fn rejects_bad_filters() {
        // Neither q nor channelId.
        let err = parse_search(&raw(&[("part", "snippet")])).unwrap_err();
        assert_eq!(err.api_reason(), Some(ApiErrorReason::InvalidSearchFilter));
        // Unsupported type.
        let err = parse_search(&raw(&[("part", "snippet"), ("q", "x"), ("type", "playlist")]))
            .unwrap_err();
        assert_eq!(err.api_reason(), Some(ApiErrorReason::InvalidSearchFilter));
        // Bad order.
        assert!(parse_search(&raw(&[("part", "snippet"), ("q", "x"), ("order", "rating0")])).is_err());
        // Bad timestamps.
        assert!(parse_search(&raw(&[
            ("part", "snippet"),
            ("q", "x"),
            ("publishedAfter", "yesterday")
        ]))
        .is_err());
        // Inverted window.
        assert!(parse_search(&raw(&[
            ("part", "snippet"),
            ("q", "x"),
            ("publishedAfter", "2020-01-02T00:00:00Z"),
            ("publishedBefore", "2020-01-01T00:00:00Z"),
        ]))
        .is_err());
    }

    #[test]
    fn channel_only_search_is_allowed() {
        let req = parse_search(&raw(&[("part", "id"), ("channelId", "UCabc")])).unwrap();
        assert!(req.search.tokens.is_empty());
        assert_eq!(req.search.channel_id.unwrap().as_str(), "UCabc");
    }

    #[test]
    fn id_lists_parse_both_styles() {
        let ids = parse_id_list(&raw(&[("id", "a,b"), ("id", "c")]), "id").unwrap();
        assert_eq!(ids, vec!["a", "b", "c"]);
        assert!(parse_id_list(&raw(&[]), "id").is_err());
        let many: Vec<(String, String)> = (0..51).map(|i| ("id".to_string(), format!("v{i}"))).collect();
        assert!(parse_id_list(&many, "id").is_err());
    }
}
