//! The Data API service: quota, validation, dispatch, projection of
//! platform records into wire resources, and fault injection.

use crate::pagination::paginate;
use crate::params::{
    get, parse_id_list, parse_max_results, parse_part, parse_search, RawParams,
};
use crate::quota::{Charge, Endpoint, QuotaLedger};
use crate::resources::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ytaudit_platform::hash::{hash_bytes, mix_all, unit_f64};
use ytaudit_platform::{Platform, SimClock};
use ytaudit_types::{
    ApiErrorReason, Channel, ChannelId, Comment, CommentId, Error, PlaylistId, Result, Timestamp,
    Video, VideoId,
};

/// Fault-injection knobs.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Per-(video, request-day) probability that `Videos: list` silently
    /// omits a requested ID — the non-systematic metadata gaps of
    /// Figure 4. Deterministic in (seed, video, day).
    pub metadata_miss_rate: f64,
    /// Probability that any call fails with a transient `backendError`
    /// (HTTP 500). Drawn from a request counter, so an immediate retry
    /// succeeds — exercising the client's retry policy.
    pub backend_error_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            metadata_miss_rate: 0.012,
            backend_error_rate: 0.0,
        }
    }
}

/// A request as both transports (in-process and HTTP) present it.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Which endpoint is being called.
    pub endpoint: Endpoint,
    /// Raw query parameters (decoded).
    pub params: Vec<(String, String)>,
    /// The caller's API key (`key` query parameter).
    pub api_key: Option<String>,
    /// Explicit simulated request time; `None` uses the service clock.
    pub now_override: Option<Timestamp>,
}

/// The simulated YouTube Data API v3.
pub struct ApiService {
    platform: Arc<Platform>,
    clock: SimClock,
    quota: QuotaLedger,
    faults: FaultConfig,
    request_counter: AtomicU64,
}

impl ApiService {
    /// Builds the service over a platform with a clock and default quota
    /// and fault settings.
    pub fn new(platform: Arc<Platform>, clock: SimClock) -> ApiService {
        ApiService {
            platform,
            clock,
            quota: QuotaLedger::new(),
            faults: FaultConfig::default(),
            request_counter: AtomicU64::new(0),
        }
    }

    /// Overrides the fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> ApiService {
        self.faults = faults;
        self
    }

    /// Access to the quota ledger (to register researcher keys).
    pub fn quota(&self) -> &QuotaLedger {
        &self.quota
    }

    /// The service clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Handles one request, returning the HTTP status and JSON body.
    pub fn handle(&self, request: &ApiRequest) -> (u16, String) {
        match self.dispatch(request) {
            Ok(body) => (200, body),
            Err(err) => error_response(&err),
        }
    }

    fn dispatch(&self, request: &ApiRequest) -> Result<String> {
        let now = request.now_override.unwrap_or_else(|| self.clock.now());
        let key = request.api_key.as_deref().ok_or_else(|| {
            Error::api(
                ApiErrorReason::Forbidden,
                "The request is missing a valid API key.",
            )
        })?;
        if key.is_empty() {
            return Err(Error::api(
                ApiErrorReason::Forbidden,
                "The request is missing a valid API key.",
            ));
        }
        // Transient backend failures happen before quota is charged.
        if self.faults.backend_error_rate > 0.0 {
            let count = self.request_counter.fetch_add(1, Ordering::Relaxed);
            if unit_f64(mix_all(&[count, 0xFA_11])) < self.faults.backend_error_rate {
                return Err(Error::api(
                    ApiErrorReason::BackendError,
                    "Backend Error (transient).",
                ));
            }
        }
        match self.quota.charge(key, request.endpoint, now) {
            Charge::Ok { .. } => {}
            Charge::Exceeded => {
                return Err(Error::api(
                    ApiErrorReason::QuotaExceeded,
                    "The request cannot be completed because you have exceeded your quota.",
                ))
            }
        }
        match request.endpoint {
            Endpoint::Search => self.search_list(&request.params, now),
            Endpoint::Videos => self.videos_list(&request.params, now),
            Endpoint::Channels => self.channels_list(&request.params),
            Endpoint::PlaylistItems => self.playlist_items_list(&request.params, now),
            Endpoint::CommentThreads => self.comment_threads_list(&request.params, now),
            Endpoint::Comments => self.comments_list(&request.params, now),
        }
    }

    fn snippet_for(&self, video: &Video) -> Snippet {
        let channel_title = self
            .platform
            .channel(&video.channel_id)
            .map(|c| c.title.clone())
            .unwrap_or_default();
        Snippet {
            published_at: video.published_at.to_rfc3339(),
            channel_id: video.channel_id.as_str().to_string(),
            title: video.title.clone(),
            description: video.description.clone(),
            channel_title,
            live_broadcast_content: "none".to_string(),
        }
    }

    fn search_list(&self, params: &RawParams, now: Timestamp) -> Result<String> {
        let request = parse_search(params)?;
        let outcome = self.platform.search(&request.search, now);
        let query_hash = ytaudit_platform::search::query_hash(&request.search);
        // The documented search limits: at most 50 results per page and at
        // most 10 pages — so small page sizes genuinely see fewer total
        // results, one of the endpoint's quieter sharp edges.
        let reachable = outcome
            .video_ids
            .len()
            .min(request.max_results as usize * 10);
        let mut page = paginate(
            reachable,
            request.max_results as usize,
            request.page_token.as_deref(),
            query_hash,
        )?;
        page.next = page
            .next
            .filter(|_| page.end < reachable);
        let want_snippet = request.parts.iter().any(|p| p == "snippet");
        let items: Vec<SearchResult> = outcome.video_ids[page.start..page.end]
            .iter()
            .map(|id| {
                let snippet = if want_snippet {
                    self.platform.video(id, now).map(|v| self.snippet_for(v))
                } else {
                    None
                };
                SearchResult {
                    kind: "youtube#searchResult".into(),
                    etag: etag_for(id.as_str()),
                    id: SearchResultId {
                        kind: "youtube#video".into(),
                        video_id: id.as_str().to_string(),
                    },
                    snippet,
                }
            })
            .collect();
        let response = SearchListResponse {
            kind: "youtube#searchListResponse".into(),
            etag: etag_for(&format!("search{query_hash}{now}{}", page.start)),
            next_page_token: page.next,
            prev_page_token: page.prev,
            region_code: "US".into(),
            page_info: PageInfo {
                total_results: outcome.total_results,
                results_per_page: request.max_results,
            },
            items,
        };
        encode(&response)
    }

    fn videos_list(&self, params: &RawParams, now: Timestamp) -> Result<String> {
        let parts = parse_part(params, &["id", "snippet", "contentDetails", "statistics"])?;
        let ids = parse_id_list(params, "id")?;
        let day = now.floor_day().as_secs() as u64;
        let mut items = Vec::new();
        for raw_id in &ids {
            let id = VideoId::new(raw_id.clone());
            let Some(video) = self.platform.video(&id, now) else {
                continue; // unknown or deleted: silently omitted
            };
            // Non-systematic metadata misses (Figure 4): a fresh draw per
            // (video, request day).
            let miss = unit_f64(mix_all(&[hash_bytes(raw_id.as_bytes()), day, 0x4D495353]));
            if miss < self.faults.metadata_miss_rate {
                continue;
            }
            items.push(self.video_resource(video, &parts));
        }
        let response = VideoListResponse {
            kind: "youtube#videoListResponse".into(),
            etag: etag_for(&format!("videos{}{}", ids.join(","), now)),
            next_page_token: None,
            page_info: PageInfo {
                total_results: items.len() as u64,
                results_per_page: items.len() as u32,
            },
            items,
        };
        encode(&response)
    }

    fn video_resource(&self, video: &Video, parts: &[String]) -> VideoResource {
        let has = |p: &str| parts.iter().any(|x| x == p);
        VideoResource {
            kind: "youtube#video".into(),
            etag: etag_for(video.id.as_str()),
            id: video.id.as_str().to_string(),
            snippet: has("snippet").then(|| self.snippet_for(video)),
            content_details: has("contentDetails").then(|| VideoContentDetails {
                duration: video.duration.format(),
                definition: video.definition.as_str().to_string(),
            }),
            statistics: has("statistics").then(|| VideoStatistics {
                view_count: video.stats.views.to_string(),
                like_count: Some(video.stats.likes.to_string()),
                comment_count: Some(video.stats.comments.to_string()),
            }),
        }
    }

    fn channels_list(&self, params: &RawParams) -> Result<String> {
        let parts = parse_part(params, &["id", "snippet", "contentDetails", "statistics"])?;
        let ids = parse_id_list(params, "id")?;
        let has = |p: &str| parts.iter().any(|x| x == p);
        let mut items = Vec::new();
        for raw_id in &ids {
            let id = ChannelId::new(raw_id.clone());
            let Some(channel) = self.platform.channel(&id) else {
                continue;
            };
            items.push(self.channel_resource(channel, &has));
        }
        let response = ChannelListResponse {
            kind: "youtube#channelListResponse".into(),
            etag: etag_for(&format!("channels{}", ids.join(","))),
            page_info: PageInfo {
                total_results: items.len() as u64,
                results_per_page: items.len() as u32,
            },
            items,
        };
        encode(&response)
    }

    fn channel_resource(&self, channel: &Channel, has: &dyn Fn(&str) -> bool) -> ChannelResource {
        ChannelResource {
            kind: "youtube#channel".into(),
            etag: etag_for(channel.id.as_str()),
            id: channel.id.as_str().to_string(),
            snippet: has("snippet").then(|| ChannelSnippet {
                title: channel.title.clone(),
                description: String::new(),
                published_at: channel.published_at.to_rfc3339(),
            }),
            content_details: has("contentDetails").then(|| ChannelContentDetails {
                related_playlists: RelatedPlaylists {
                    uploads: channel.id.uploads_playlist().as_str().to_string(),
                },
            }),
            statistics: has("statistics").then(|| ChannelStatistics {
                view_count: channel.stats.views.to_string(),
                subscriber_count: channel.stats.subscribers.to_string(),
                hidden_subscriber_count: false,
                video_count: channel.stats.video_count.to_string(),
            }),
        }
    }

    fn playlist_items_list(&self, params: &RawParams, now: Timestamp) -> Result<String> {
        let parts = parse_part(params, &["id", "snippet", "contentDetails"])?;
        let playlist_raw = get(params, "playlistId").ok_or_else(|| {
            Error::api(
                ApiErrorReason::InvalidParameter,
                "Required parameter 'playlistId' is missing.",
            )
        })?;
        let max_results = parse_max_results(params, 5, 50)?;
        let playlist = PlaylistId::new(playlist_raw);
        let videos = self.platform.playlist_items(&playlist, now).ok_or_else(|| {
            Error::api(
                ApiErrorReason::NotFound,
                format!("The playlist identified with the request's playlistId parameter cannot be found: {playlist_raw:?}"),
            )
        })?;
        let query_hash = hash_bytes(playlist_raw.as_bytes());
        let page = paginate(
            videos.len(),
            max_results as usize,
            get(params, "pageToken"),
            query_hash,
        )?;
        let want_snippet = parts.iter().any(|p| p == "snippet");
        let items: Vec<PlaylistItemResource> = videos[page.start..page.end]
            .iter()
            .enumerate()
            .map(|(offset, video)| {
                let position = (page.start + offset) as u32;
                PlaylistItemResource {
                    kind: "youtube#playlistItem".into(),
                    etag: etag_for(&format!("{}#{position}", video.id)),
                    id: format!("PLI-{}-{position}", video.id),
                    snippet: want_snippet.then(|| PlaylistItemSnippet {
                        published_at: video.published_at.to_rfc3339(),
                        channel_id: video.channel_id.as_str().to_string(),
                        title: video.title.clone(),
                        playlist_id: playlist_raw.to_string(),
                        position,
                        resource_id: ResourceId {
                            kind: "youtube#video".into(),
                            video_id: video.id.as_str().to_string(),
                        },
                    }),
                }
            })
            .collect();
        let response = PlaylistItemListResponse {
            kind: "youtube#playlistItemListResponse".into(),
            etag: etag_for(&format!("pli{playlist_raw}{}", page.start)),
            next_page_token: page.next,
            page_info: PageInfo {
                total_results: videos.len() as u64,
                results_per_page: max_results,
            },
            items,
        };
        encode(&response)
    }

    fn comment_resource(&self, comment: &Comment) -> CommentResource {
        CommentResource {
            kind: "youtube#comment".into(),
            etag: etag_for(comment.id.as_str()),
            id: comment.id.as_str().to_string(),
            snippet: CommentSnippet {
                video_id: comment.video_id.as_str().to_string(),
                text_display: comment.text.clone(),
                author_channel_id: comment.author_channel_id.as_str().to_string(),
                like_count: comment.like_count,
                published_at: comment.published_at.to_rfc3339(),
                parent_id: comment.id.parent().map(|p| p.as_str().to_string()),
            },
        }
    }

    fn comment_threads_list(&self, params: &RawParams, now: Timestamp) -> Result<String> {
        let _parts = parse_part(params, &["id", "snippet", "replies"])?;
        let video_raw = get(params, "videoId").ok_or_else(|| {
            Error::api(
                ApiErrorReason::InvalidParameter,
                "Required parameter 'videoId' is missing.",
            )
        })?;
        let max_results = parse_max_results(params, 20, 100)?;
        let video_id = VideoId::new(video_raw);
        if self.platform.video(&video_id, now).is_none() {
            return Err(Error::api(
                ApiErrorReason::NotFound,
                format!("The video identified by the request's videoId parameter cannot be found: {video_raw:?}"),
            ));
        }
        let threads = self.platform.comment_threads(&video_id, now);
        let query_hash = hash_bytes(video_raw.as_bytes());
        let page = paginate(
            threads.len(),
            max_results as usize,
            get(params, "pageToken"),
            query_hash,
        )?;
        let items: Vec<CommentThreadResource> = threads[page.start..page.end]
            .iter()
            .map(|thread| {
                let replies = (!thread.replies.is_empty()).then(|| CommentThreadReplies {
                    comments: thread
                        .replies
                        .iter()
                        .map(|r| self.comment_resource(r))
                        .collect(),
                });
                CommentThreadResource {
                    kind: "youtube#commentThread".into(),
                    etag: etag_for(thread.top_level.id.as_str()),
                    id: thread.top_level.id.as_str().to_string(),
                    snippet: CommentThreadSnippet {
                        video_id: video_raw.to_string(),
                        top_level_comment: self.comment_resource(thread.top_level),
                        total_reply_count: thread.replies.len() as u64,
                        can_reply: true,
                    },
                    replies,
                }
            })
            .collect();
        let response = CommentThreadListResponse {
            kind: "youtube#commentThreadListResponse".into(),
            etag: etag_for(&format!("ct{video_raw}{}", page.start)),
            next_page_token: page.next,
            page_info: PageInfo {
                total_results: threads.len() as u64,
                results_per_page: max_results,
            },
            items,
        };
        encode(&response)
    }

    fn comments_list(&self, params: &RawParams, now: Timestamp) -> Result<String> {
        let _parts = parse_part(params, &["id", "snippet"])?;
        let parent_raw = get(params, "parentId").ok_or_else(|| {
            Error::api(
                ApiErrorReason::InvalidParameter,
                "Required parameter 'parentId' is missing.",
            )
        })?;
        let max_results = parse_max_results(params, 20, 100)?;
        let parent = CommentId::new(parent_raw);
        if self.platform.comment(&parent, now).is_none() {
            return Err(Error::api(
                ApiErrorReason::NotFound,
                format!("The comment identified by the request's parentId parameter cannot be found: {parent_raw:?}"),
            ));
        }
        let replies = self.platform.comments_by_parent(&parent, now);
        let query_hash = hash_bytes(parent_raw.as_bytes());
        let page = paginate(
            replies.len(),
            max_results as usize,
            get(params, "pageToken"),
            query_hash,
        )?;
        let items: Vec<CommentResource> = replies[page.start..page.end]
            .iter()
            .map(|c| self.comment_resource(c))
            .collect();
        let response = CommentListResponse {
            kind: "youtube#commentListResponse".into(),
            etag: etag_for(&format!("cm{parent_raw}{}", page.start)),
            next_page_token: page.next,
            page_info: PageInfo {
                total_results: replies.len() as u64,
                results_per_page: max_results,
            },
            items,
        };
        encode(&response)
    }
}

fn encode<T: serde::Serialize>(value: &T) -> Result<String> {
    serde_json::to_string(value).map_err(|e| Error::Decode(e.to_string()))
}

/// Renders an error as the (status, JSON envelope) pair the wire carries.
pub fn error_response(err: &Error) -> (u16, String) {
    let (code, reason, message) = match err {
        Error::Api {
            reason, message, ..
        } => (reason.http_status(), reason.as_str(), message.clone()),
        other => (500, "backendError", other.to_string()),
    };
    let envelope = ErrorResponse {
        error: ErrorBody {
            code,
            message: message.clone(),
            errors: vec![ErrorItem {
                message,
                domain: match reason {
                    "quotaExceeded" => "youtube.quota".to_string(),
                    _ => "youtube.parameter".to_string(),
                },
                reason: reason.to_string(),
            }],
            retry_after_secs: err.retry_after_secs(),
        },
    };
    (
        code,
        serde_json::to_string(&envelope).unwrap_or_else(|_| "{}".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::Topic;

    fn service() -> ApiService {
        let platform = Arc::new(Platform::small(0.3));
        ApiService::new(platform, SimClock::at_audit_start())
    }

    fn raw(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn request(endpoint: Endpoint, pairs: &[(&str, &str)]) -> ApiRequest {
        ApiRequest {
            endpoint,
            params: raw(pairs),
            api_key: Some("test-key".into()),
            now_override: None,
        }
    }

    #[test]
    fn search_returns_paged_results() {
        let svc = service();
        svc.quota().register("test-key", 1_000_000);
        let spec = Topic::Grammys.spec();
        let req = request(
            Endpoint::Search,
            &[
                ("part", "snippet"),
                ("q", spec.query),
                ("order", "date"),
                ("type", "video"),
                ("maxResults", "50"),
                ("publishedAfter", &Topic::Grammys.window_start().to_rfc3339()),
                ("publishedBefore", &Topic::Grammys.window_end().to_rfc3339()),
            ],
        );
        let (status, body) = svc.handle(&req);
        assert_eq!(status, 200, "{body}");
        let parsed: SearchListResponse = serde_json::from_str(&body).unwrap();
        assert!(!parsed.items.is_empty());
        assert!(parsed.items.len() <= 50);
        assert!(parsed.page_info.total_results > 1_000);
        for item in &parsed.items {
            assert_eq!(item.id.kind, "youtube#video");
            let snippet = item.snippet.as_ref().expect("asked for snippet");
            assert!(!snippet.channel_id.is_empty());
        }
        // Walk the pagination to the end; every page parses.
        let mut token = parsed.next_page_token.clone();
        let mut total = parsed.items.len();
        while let Some(t) = token {
            let mut pairs = req.params.clone();
            pairs.push(("pageToken".into(), t));
            let (status, body) = svc.handle(&ApiRequest {
                params: pairs,
                ..req.clone()
            });
            assert_eq!(status, 200, "{body}");
            let page: SearchListResponse = serde_json::from_str(&body).unwrap();
            total += page.items.len();
            token = page.next_page_token;
        }
        assert!(total <= 500, "API caps search results at 500, got {total}");
        assert!(total > 50);
    }

    #[test]
    fn missing_key_is_forbidden() {
        let svc = service();
        let mut req = request(Endpoint::Videos, &[("part", "snippet"), ("id", "abc")]);
        req.api_key = None;
        let (status, body) = svc.handle(&req);
        assert_eq!(status, 403);
        assert!(body.contains("forbidden"));
    }

    #[test]
    fn quota_exhaustion_returns_403_envelope() {
        let svc = service();
        let pairs = [
            ("part", "id"),
            ("q", "higgs boson"),
            ("type", "video"),
        ];
        // Default quota: 100 searches.
        for _ in 0..100 {
            let (status, _) = svc.handle(&request(Endpoint::Search, &pairs));
            assert_eq!(status, 200);
        }
        let (status, body) = svc.handle(&request(Endpoint::Search, &pairs));
        assert_eq!(status, 403);
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(err.error.errors[0].reason, "quotaExceeded");
        assert_eq!(err.error.errors[0].domain, "youtube.quota");
    }

    #[test]
    fn videos_list_projects_all_parts() {
        let svc = service();
        let video = svc.platform().corpus().topics[0].videos[0].clone();
        let req = request(
            Endpoint::Videos,
            &[
                ("part", "snippet,contentDetails,statistics"),
                ("id", video.id.as_str()),
            ],
        );
        let (status, body) = svc.handle(&req);
        assert_eq!(status, 200, "{body}");
        let parsed: VideoListResponse = serde_json::from_str(&body).unwrap();
        // Either returned in full, or (rarely) hit the metadata-miss
        // fault; both are API-faithful. Retry across days to make the
        // assertion deterministic.
        let item = if parsed.items.is_empty() {
            let mut alt = None;
            for day in 1..10 {
                let (s2, b2) = svc.handle(&ApiRequest {
                    now_override: Some(svc.clock().now().add_days(day)),
                    ..req.clone()
                });
                assert_eq!(s2, 200);
                let p2: VideoListResponse = serde_json::from_str(&b2).unwrap();
                if let Some(first) = p2.items.into_iter().next() {
                    alt = Some(first);
                    break;
                }
            }
            alt.expect("metadata misses are non-systematic")
        } else {
            parsed.items.into_iter().next().unwrap()
        };
        assert_eq!(item.id, video.id.as_str());
        assert_eq!(
            item.statistics.as_ref().unwrap().view_count,
            video.stats.views.to_string()
        );
        assert_eq!(
            item.content_details.as_ref().unwrap().duration,
            video.duration.format()
        );
        assert_eq!(
            item.snippet.as_ref().unwrap().published_at,
            video.published_at.to_rfc3339()
        );
    }

    #[test]
    fn unknown_video_ids_are_omitted_not_errors() {
        let svc = service();
        let (status, body) = svc.handle(&request(
            Endpoint::Videos,
            &[("part", "id"), ("id", "doesnotexist00")],
        ));
        assert_eq!(status, 200);
        let parsed: VideoListResponse = serde_json::from_str(&body).unwrap();
        assert!(parsed.items.is_empty());
    }

    #[test]
    fn channels_and_uploads_pipeline() {
        let svc = service();
        let channel = svc.platform().corpus().channels[0].clone();
        let (status, body) = svc.handle(&request(
            Endpoint::Channels,
            &[
                ("part", "snippet,contentDetails,statistics"),
                ("id", channel.id.as_str()),
            ],
        ));
        assert_eq!(status, 200, "{body}");
        let parsed: ChannelListResponse = serde_json::from_str(&body).unwrap();
        let uploads = parsed.items[0]
            .content_details
            .as_ref()
            .unwrap()
            .related_playlists
            .uploads
            .clone();
        assert!(uploads.starts_with("UU"));
        // Now page through the uploads playlist.
        let (status, body) = svc.handle(&request(
            Endpoint::PlaylistItems,
            &[("part", "snippet"), ("playlistId", &uploads), ("maxResults", "50")],
        ));
        assert_eq!(status, 200, "{body}");
        let items: PlaylistItemListResponse = serde_json::from_str(&body).unwrap();
        for item in &items.items {
            assert_eq!(item.snippet.as_ref().unwrap().channel_id, channel.id.as_str());
        }
    }

    #[test]
    fn unknown_playlist_is_404() {
        let svc = service();
        let (status, body) = svc.handle(&request(
            Endpoint::PlaylistItems,
            &[("part", "snippet"), ("playlistId", "UUnope")],
        ));
        assert_eq!(status, 404);
        assert!(body.contains("notFound"));
    }

    #[test]
    fn comment_threads_round_trip() {
        let svc = service();
        // A video with comments.
        let video = svc
            .platform()
            .corpus()
            .topics
            .iter()
            .flat_map(|t| &t.videos)
            .find(|v| !svc.platform().comment_threads(&v.id, svc.clock().now().add_days(60)).is_empty())
            .expect("some video has threads")
            .clone();
        let now_override = Some(svc.clock().now().add_days(60));
        let (status, body) = svc.handle(&ApiRequest {
            now_override,
            ..request(
                Endpoint::CommentThreads,
                &[("part", "snippet,replies"), ("videoId", video.id.as_str()), ("maxResults", "100")],
            )
        });
        assert_eq!(status, 200, "{body}");
        let parsed: CommentThreadListResponse = serde_json::from_str(&body).unwrap();
        assert!(!parsed.items.is_empty());
        for thread in &parsed.items {
            assert_eq!(thread.snippet.video_id, video.id.as_str());
            if let Some(replies) = &thread.replies {
                assert!(replies.comments.len() <= 5);
                // Comments: list agrees with the embedded replies.
                let (status, body) = svc.handle(&ApiRequest {
                    now_override,
                    ..request(
                        Endpoint::Comments,
                        &[("part", "snippet"), ("parentId", &thread.id), ("maxResults", "100")],
                    )
                });
                assert_eq!(status, 200);
                let listed: CommentListResponse = serde_json::from_str(&body).unwrap();
                assert_eq!(listed.items.len(), replies.comments.len());
                return;
            }
        }
    }

    #[test]
    fn backend_errors_are_transient_500s() {
        let platform = Arc::new(Platform::small(0.2));
        let svc = ApiService::new(platform, SimClock::at_audit_start()).with_faults(FaultConfig {
            metadata_miss_rate: 0.0,
            backend_error_rate: 0.5,
        });
        svc.quota().register("test-key", 100_000_000);
        let req = request(Endpoint::Videos, &[("part", "id"), ("id", "whatever")]);
        let mut saw_500 = false;
        let mut saw_200 = false;
        for _ in 0..64 {
            let (status, _) = svc.handle(&req);
            match status {
                500 => saw_500 = true,
                200 => saw_200 = true,
                other => panic!("unexpected status {other}"),
            }
        }
        assert!(saw_500 && saw_200, "both outcomes should occur at 50%");
    }

    #[test]
    fn invalid_page_token_is_rejected() {
        let svc = service();
        let (status, body) = svc.handle(&request(
            Endpoint::Search,
            &[
                ("part", "id"),
                ("q", "higgs boson"),
                ("type", "video"),
                ("pageToken", "garbage"),
            ],
        ));
        assert_eq!(status, 400);
        assert!(body.contains("invalidPageToken"));
    }
}
