//! # ytaudit-api
//!
//! A high-fidelity simulation of the YouTube Data API v3 surface the paper
//! audits: the six list endpoints (`search`, `videos`, `channels`,
//! `playlistItems`, `commentThreads`, `comments`), quota accounting with
//! the real cost model (100 units per search, 1 per ID lookup, Pacific-
//! midnight reset), opaque pagination tokens, the JSON wire schemas
//! (string-typed counters and all), the documented error envelopes, and an
//! HTTP binding over `ytaudit-net`.
//!
//! The *undocumented* behaviour — density-gated, rolling-window-randomized
//! search sampling — lives in `ytaudit-platform`; this crate only projects
//! it onto the wire, exactly the vantage point a researcher has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod pagination;
pub mod params;
pub mod quota;
pub mod resources;
pub mod service;

pub use http::{endpoint_for_path, route, serve, serve_with_config};
pub use quota::{Endpoint, QuotaLedger, DEFAULT_DAILY_QUOTA, RESEARCHER_DAILY_QUOTA};
pub use service::{ApiRequest, ApiService, FaultConfig};
