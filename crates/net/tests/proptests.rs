//! Property-based tests for the HTTP codec layers.

use proptest::prelude::*;
use std::io::Cursor;
use ytaudit_net::framing::{write_chunked, write_request, write_response, FrameLimits, MessageReader};
use ytaudit_net::url::{decode_component, encode_component, QueryString};
use ytaudit_net::{Request, Response, StatusCode};

proptest! {
    /// Percent-encoding round-trips arbitrary Unicode text.
    #[test]
    fn percent_codec_round_trip(raw in ".*") {
        let encoded = encode_component(&raw);
        prop_assert_eq!(decode_component(&encoded).unwrap(), raw);
    }

    /// Encoded components never contain separators that would corrupt a
    /// query string.
    #[test]
    fn encoded_component_is_inert(raw in ".*") {
        let encoded = encode_component(&raw);
        prop_assert!(!encoded.contains('&'));
        prop_assert!(!encoded.contains('='));
        prop_assert!(!encoded.contains('#'));
        prop_assert!(!encoded.contains(' '));
        prop_assert!(encoded.is_ascii());
    }

    /// Query strings round-trip arbitrary key/value pairs.
    #[test]
    fn query_string_round_trip(pairs in proptest::collection::vec((".*", ".*"), 0..8)) {
        let qs: QueryString = pairs.iter().cloned().collect();
        let parsed = QueryString::parse(&qs.encode()).unwrap();
        // Keys that encode to the empty string ("" keys with "" values)
        // still round-trip because `k=` is emitted explicitly.
        prop_assert_eq!(parsed.pairs(), qs.pairs());
    }

    /// The canonical form is insensitive to pair order.
    #[test]
    fn canonical_is_order_insensitive(pairs in proptest::collection::vec(("[a-z]{1,4}", "[a-z0-9]{0,6}"), 0..6)) {
        let qs: QueryString = pairs.iter().cloned().collect();
        let mut reversed = pairs.clone();
        reversed.reverse();
        let qs_rev: QueryString = reversed.into_iter().collect();
        // Reversing changes relative order of *distinct* keys only; values
        // under the same key reverse too, so compare multisets per key.
        let canon_a_full = qs.canonical();
        let canon_b_full = qs_rev.canonical();
        let mut canon_a: Vec<&str> = canon_a_full.split('&').filter(|s| !s.is_empty()).collect();
        let mut canon_b: Vec<&str> = canon_b_full.split('&').filter(|s| !s.is_empty()).collect();
        canon_a.sort_unstable();
        canon_b.sort_unstable();
        prop_assert_eq!(canon_a, canon_b);
    }

    /// Any response body survives write→read framing, across the
    /// content-length/chunked threshold.
    #[test]
    fn response_framing_round_trip(body in proptest::collection::vec(any::<u8>(), 0..200_000), keep_alive in any::<bool>()) {
        let resp = Response::json(StatusCode::OK, body.clone());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, keep_alive).unwrap();
        let parsed = MessageReader::new(Cursor::new(wire))
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        prop_assert_eq!(parsed.body, body);
        prop_assert_eq!(parsed.status, StatusCode::OK);
    }

    /// Any request (path, query, body) survives write→read framing.
    #[test]
    fn request_framing_round_trip(
        path_seg in "[a-zA-Z0-9_/-]{0,40}",
        pairs in proptest::collection::vec(("[a-zA-Z]{1,8}", ".{0,20}"), 0..6),
        body in proptest::collection::vec(any::<u8>(), 0..4_096),
    ) {
        let query: QueryString = pairs.iter().cloned().collect();
        let req = Request::post(format!("/{path_seg}"), body.clone()).with_query(query.clone());
        let mut wire = Vec::new();
        write_request(&mut wire, &req, "localhost:1").unwrap();
        let parsed = MessageReader::new(Cursor::new(wire))
            .read_request(&FrameLimits::default())
            .unwrap()
            .unwrap();
        prop_assert_eq!(parsed.path, format!("/{path_seg}"));
        prop_assert_eq!(parsed.query.pairs(), query.pairs());
        prop_assert_eq!(parsed.body, body);
    }

    /// The chunked encoder always produces a stream the decoder accepts,
    /// regardless of body size relative to chunk boundaries.
    #[test]
    fn chunked_codec_round_trip(body in proptest::collection::vec(any::<u8>(), 0..100_000)) {
        let mut wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        write_chunked(&mut wire, &body).unwrap();
        let parsed = MessageReader::new(Cursor::new(wire))
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        prop_assert_eq!(parsed.body, body);
    }

    /// Truncating a framed response anywhere before the end never panics
    /// and never yields a *successful* full-body parse with missing bytes.
    #[test]
    fn truncated_responses_fail_safely(body in proptest::collection::vec(any::<u8>(), 1..2_000), cut_fraction in 0.0f64..1.0) {
        let resp = Response::json(StatusCode::OK, body.clone());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let cut = ((wire.len() - 1) as f64 * cut_fraction) as usize;
        let truncated = &wire[..cut];
        if let Ok(parsed) = MessageReader::new(Cursor::new(truncated.to_vec()))
            .read_response(&FrameLimits::default(), false)
        {
            // Any error is acceptable; panics are not — and a *successful*
            // parse must never silently drop bytes.
            prop_assert_eq!(parsed.body.len(), body.len(), "a successful parse must have the full body");
        }
    }
}
