//! Property-based tests for the HTTP codec layers, plus a seeded
//! sequence test for the pipelined client (plain `#[test]`, seeded via
//! `YTAUDIT_PROP_SEED` like the workspace's shard-equivalence suite).

use proptest::prelude::*;
use std::io::Cursor;
use ytaudit_net::framing::{write_chunked, write_request, write_response, FrameLimits, MessageReader};
use ytaudit_net::url::{decode_component, encode_component, QueryString};
use ytaudit_net::{Request, Response, StatusCode};

proptest! {
    /// Percent-encoding round-trips arbitrary Unicode text.
    #[test]
    fn percent_codec_round_trip(raw in ".*") {
        let encoded = encode_component(&raw);
        prop_assert_eq!(decode_component(&encoded).unwrap(), raw);
    }

    /// Encoded components never contain separators that would corrupt a
    /// query string.
    #[test]
    fn encoded_component_is_inert(raw in ".*") {
        let encoded = encode_component(&raw);
        prop_assert!(!encoded.contains('&'));
        prop_assert!(!encoded.contains('='));
        prop_assert!(!encoded.contains('#'));
        prop_assert!(!encoded.contains(' '));
        prop_assert!(encoded.is_ascii());
    }

    /// Query strings round-trip arbitrary key/value pairs.
    #[test]
    fn query_string_round_trip(pairs in proptest::collection::vec((".*", ".*"), 0..8)) {
        let qs: QueryString = pairs.iter().cloned().collect();
        let parsed = QueryString::parse(&qs.encode()).unwrap();
        // Keys that encode to the empty string ("" keys with "" values)
        // still round-trip because `k=` is emitted explicitly.
        prop_assert_eq!(parsed.pairs(), qs.pairs());
    }

    /// The canonical form is insensitive to pair order.
    #[test]
    fn canonical_is_order_insensitive(pairs in proptest::collection::vec(("[a-z]{1,4}", "[a-z0-9]{0,6}"), 0..6)) {
        let qs: QueryString = pairs.iter().cloned().collect();
        let mut reversed = pairs.clone();
        reversed.reverse();
        let qs_rev: QueryString = reversed.into_iter().collect();
        // Reversing changes relative order of *distinct* keys only; values
        // under the same key reverse too, so compare multisets per key.
        let canon_a_full = qs.canonical();
        let canon_b_full = qs_rev.canonical();
        let mut canon_a: Vec<&str> = canon_a_full.split('&').filter(|s| !s.is_empty()).collect();
        let mut canon_b: Vec<&str> = canon_b_full.split('&').filter(|s| !s.is_empty()).collect();
        canon_a.sort_unstable();
        canon_b.sort_unstable();
        prop_assert_eq!(canon_a, canon_b);
    }

    /// Any response body survives write→read framing, across the
    /// content-length/chunked threshold.
    #[test]
    fn response_framing_round_trip(body in proptest::collection::vec(any::<u8>(), 0..200_000), keep_alive in any::<bool>()) {
        let resp = Response::json(StatusCode::OK, body.clone());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, keep_alive).unwrap();
        let parsed = MessageReader::new(Cursor::new(wire))
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        prop_assert_eq!(parsed.body, body);
        prop_assert_eq!(parsed.status, StatusCode::OK);
    }

    /// Any request (path, query, body) survives write→read framing.
    #[test]
    fn request_framing_round_trip(
        path_seg in "[a-zA-Z0-9_/-]{0,40}",
        pairs in proptest::collection::vec(("[a-zA-Z]{1,8}", ".{0,20}"), 0..6),
        body in proptest::collection::vec(any::<u8>(), 0..4_096),
    ) {
        let query: QueryString = pairs.iter().cloned().collect();
        let req = Request::post(format!("/{path_seg}"), body.clone()).with_query(query.clone());
        let mut wire = Vec::new();
        write_request(&mut wire, &req, "localhost:1").unwrap();
        let parsed = MessageReader::new(Cursor::new(wire))
            .read_request(&FrameLimits::default())
            .unwrap()
            .unwrap();
        prop_assert_eq!(parsed.path, format!("/{path_seg}"));
        prop_assert_eq!(parsed.query.pairs(), query.pairs());
        prop_assert_eq!(parsed.body, body);
    }

    /// The chunked encoder always produces a stream the decoder accepts,
    /// regardless of body size relative to chunk boundaries.
    #[test]
    fn chunked_codec_round_trip(body in proptest::collection::vec(any::<u8>(), 0..100_000)) {
        let mut wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        write_chunked(&mut wire, &body).unwrap();
        let parsed = MessageReader::new(Cursor::new(wire))
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        prop_assert_eq!(parsed.body, body);
    }

    /// Truncating a framed response anywhere before the end never panics
    /// and never yields a *successful* full-body parse with missing bytes.
    #[test]
    fn truncated_responses_fail_safely(body in proptest::collection::vec(any::<u8>(), 1..2_000), cut_fraction in 0.0f64..1.0) {
        let resp = Response::json(StatusCode::OK, body.clone());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let cut = ((wire.len() - 1) as f64 * cut_fraction) as usize;
        let truncated = &wire[..cut];
        if let Ok(parsed) = MessageReader::new(Cursor::new(truncated.to_vec()))
            .read_response(&FrameLimits::default(), false)
        {
            // Any error is acceptable; panics are not — and a *successful*
            // parse must never silently drop bytes.
            prop_assert_eq!(parsed.body.len(), body.len(), "a successful parse must have the full body");
        }
    }
}

/// Seeded sequence test for the pipelined client: random request
/// sequences with `Connection: close` and stall points sprinkled in,
/// driven at every depth 1..=8, must yield byte-for-byte the responses
/// a plain sequential client gets. Written as a plain `#[test]` so the
/// seed rotation matches the workspace's shard-equivalence pattern
/// (`YTAUDIT_PROP_SEED`, numeric or hashed commit SHA).
mod pipelining {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use ytaudit_net::{
        HttpClient, Request, Response, Server, ServerConfig, ServerHandle, StatusCode, Url,
    };

    /// The fixed property-test seed; CI rotates it via `YTAUDIT_PROP_SEED`.
    const DEFAULT_PROP_SEED: u64 = 0x5EED_CAFE_D15C_0DE5;

    /// A splitmix64 step — the test's only entropy source, fully
    /// determined by the seed.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn prop_seed() -> u64 {
        match std::env::var("YTAUDIT_PROP_SEED") {
            Ok(raw) => raw.parse().unwrap_or_else(|_| {
                raw.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                })
            }),
            Err(_) => DEFAULT_PROP_SEED,
        }
    }

    /// A deterministic server: the response body is a pure function of
    /// the request, `/close/…` paths answer with `Connection: close`,
    /// and `/stall/…` paths delay briefly before answering (a stall
    /// point inside the pipeline, not a protocol event).
    fn scripted_server() -> (ServerHandle, Arc<AtomicU64>) {
        let hits = Arc::new(AtomicU64::new(0));
        let hits_clone = Arc::clone(&hits);
        let handler = Arc::new(move |req: &Request| {
            hits_clone.fetch_add(1, Ordering::SeqCst);
            let body = format!(
                "{} {}?{} [{}]",
                req.method.as_str(),
                req.path,
                req.query.encode(),
                String::from_utf8_lossy(&req.body)
            );
            if req.path.starts_with("/stall/") {
                std::thread::sleep(Duration::from_millis(3));
            }
            let response = Response::text(StatusCode::OK, body);
            if req.path.starts_with("/close/") {
                response.with_header("connection", "close")
            } else {
                response
            }
        });
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        (server, hits)
    }

    /// One random request: mostly pipelinable GETs across plain, close,
    /// and stall paths, with an occasional POST (which the client must
    /// route around the pipeline, never through it).
    fn random_request(state: &mut u64, i: usize) -> Request {
        let x = next(state);
        let flavor = x % 10;
        let token = next(state) % 1_000_000;
        if flavor == 9 {
            return Request::post(format!("/echo/{i}"), format!("p{token}").into_bytes());
        }
        let path = match flavor {
            7 => format!("/close/{i}"),
            8 => format!("/stall/{i}"),
            _ => format!("/ok/{i}"),
        };
        Request::get(path).with_query([("t".to_string(), token.to_string())].into_iter().collect())
    }

    #[test]
    fn random_sequences_match_sequential_client_byte_for_byte() {
        let seed = prop_seed();
        let (server, _hits) = scripted_server();
        let url = Url::parse(&server.base_url()).unwrap();
        let mut state = seed;
        for round in 0..12u64 {
            let depth = (round as usize % 8) + 1;
            let len = 1 + (next(&mut state) % 20) as usize;
            let requests: Vec<Request> = (0..len).map(|i| random_request(&mut state, i)).collect();

            let sequential = HttpClient::new();
            let expected: Vec<Response> = requests
                .iter()
                .map(|r| sequential.send(&url, r).unwrap())
                .collect();

            let pipelined = HttpClient::new();
            let got = pipelined.send_pipelined(&url, &requests, depth);
            assert_eq!(got.len(), requests.len(), "seed {seed:#x} round {round}");
            for (i, (result, reference)) in got.into_iter().zip(&expected).enumerate() {
                let response = result.unwrap_or_else(|e| {
                    panic!("seed {seed:#x} round {round} depth {depth} slot {i}: {e}")
                });
                assert_eq!(
                    response.status, reference.status,
                    "seed {seed:#x} round {round} depth {depth} slot {i}"
                );
                assert_eq!(
                    response.body, reference.body,
                    "seed {seed:#x} round {round} depth {depth} slot {i}"
                );
            }
            assert!(
                pipelined.pool_stats().pipeline_depth_hwm() <= depth as u64,
                "seed {seed:#x} round {round}: depth hwm {} exceeds requested {depth}",
                pipelined.pool_stats().pipeline_depth_hwm()
            );
        }
        server.shutdown();
    }
}
