//! HTTP/1.1 pipelining: keep several requests written ahead on one
//! connection while responses are read back in order.
//!
//! The audit's collection workload is thousands of *small* sequential
//! `Search: list` calls, so per-request round-trip latency — not
//! bandwidth — bounds how fast a snapshot completes. A
//! [`PipelinedConn`] hides that latency by writing up to `max_in_flight`
//! requests before the first response arrives; HTTP/1.1 guarantees the
//! server answers in request order, so matching responses back to
//! requests is a FIFO queue.
//!
//! The state machine is strict about what may ride a pipeline:
//!
//! * **Only idempotent methods are pipelined.** A non-idempotent request
//!   (POST) may be submitted only on an *empty* pipeline, and nothing
//!   may be submitted behind it until its response arrives — so a
//!   non-idempotent request can never end up written-but-unanswered
//!   behind other traffic, which is the one state that would force an
//!   unsafe replay.
//! * **A `Connection: close` response closes the tap.** Requests already
//!   written behind it will never be answered (RFC 9112 §9.6); the
//!   connection reports them via [`PipelinedConn::unanswered`] so the
//!   caller can resubmit them on a fresh connection.
//! * **A read error poisons the connection; a write error only kills the
//!   write side.** After a failed write nothing further may be submitted,
//!   but responses to requests already on the wire may still be drained —
//!   a server that answers then closes (with later pipelined requests
//!   unread in its buffer) produces exactly this shape. After a read
//!   error the stream position is unknown and nothing more can be
//!   trusted; the caller resubmits the unanswered requests elsewhere.

use crate::framing::{write_request, FrameLimits, MessageReader};
use crate::message::{Method, Request, Response};
use crate::{NetError, Result};
use std::collections::VecDeque;
use std::net::TcpStream;

/// Why a [`PipelinedConn`] refused a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitRefusal {
    /// `max_in_flight` requests are already written and unanswered.
    Full,
    /// A response announced `Connection: close` (or an error poisoned
    /// the connection); nothing further will be answered.
    Closed,
    /// The request is non-idempotent and the pipeline is not empty, or
    /// a non-idempotent request is already in flight.
    NotPipelinable,
}

/// One keep-alive connection with bounded request pipelining.
///
/// Built from a connected [`TcpStream`] (or from an already-buffered
/// reader/writer pair via [`PipelinedConn::from_parts`], so pooled
/// connections keep their buffered bytes). Writes go through `submit`,
/// reads through `read_next`; responses come back strictly in request
/// order.
pub struct PipelinedConn {
    reader: MessageReader<TcpStream>,
    writer: TcpStream,
    /// Methods of requests written but not yet answered, in wire order.
    pending: VecDeque<Method>,
    max_in_flight: usize,
    /// A response carried `Connection: close`: the server will answer
    /// nothing written after it.
    closing: bool,
    /// A write failed: nothing more can be submitted, but responses to
    /// requests already written may still be drained.
    write_dead: bool,
    /// A read failed: the stream position is unknown.
    poisoned: bool,
}

impl PipelinedConn {
    /// Wraps a connected stream, cloning the write half.
    pub fn from_stream(stream: TcpStream, max_in_flight: usize) -> Result<PipelinedConn> {
        let writer = stream.try_clone()?;
        Ok(PipelinedConn::from_parts(
            MessageReader::new(stream),
            writer,
            max_in_flight,
        ))
    }

    /// Wraps an existing buffered reader and write half — how a pooled
    /// keep-alive connection becomes pipelined without losing bytes the
    /// reader already buffered.
    pub fn from_parts(
        reader: MessageReader<TcpStream>,
        writer: TcpStream,
        max_in_flight: usize,
    ) -> PipelinedConn {
        PipelinedConn {
            reader,
            writer,
            pending: VecDeque::new(),
            max_in_flight: max_in_flight.max(1),
            closing: false,
            write_dead: false,
            poisoned: false,
        }
    }

    /// The configured depth bound.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Requests written but not yet answered.
    pub fn unanswered(&self) -> usize {
        self.pending.len()
    }

    /// Whether the connection can still carry traffic (no close
    /// announced, no error observed).
    pub fn is_open(&self) -> bool {
        !self.closing && !self.write_dead && !self.poisoned
    }

    /// Why `method` cannot be submitted right now, or `None` if it can.
    pub fn refusal(&self, method: Method) -> Option<SubmitRefusal> {
        if !self.is_open() {
            return Some(SubmitRefusal::Closed);
        }
        if self.pending.len() >= self.max_in_flight {
            return Some(SubmitRefusal::Full);
        }
        if !self.pending.is_empty()
            && (!method.is_idempotent() || self.pending.iter().any(|m| !m.is_idempotent()))
        {
            return Some(SubmitRefusal::NotPipelinable);
        }
        None
    }

    /// Whether `method` may be submitted right now.
    pub fn can_submit(&self, method: Method) -> bool {
        self.refusal(method).is_none()
    }

    /// Writes `request` onto the connection without waiting for earlier
    /// responses. Fails (without writing) if [`can_submit`] is false; a
    /// write error kills the write side only — responses to requests
    /// already written may still be drained with [`read_next`].
    ///
    /// [`can_submit`]: PipelinedConn::can_submit
    /// [`read_next`]: PipelinedConn::read_next
    pub fn submit(&mut self, request: &Request, host: &str) -> Result<()> {
        if let Some(refusal) = self.refusal(request.method) {
            return Err(NetError::Protocol(format!(
                "pipeline refused {} request: {refusal:?}",
                request.method
            )));
        }
        match write_request(&mut self.writer, request, host) {
            Ok(()) => {
                self.pending.push_back(request.method);
                Ok(())
            }
            Err(err) => {
                self.write_dead = true;
                Err(err)
            }
        }
    }

    /// Reads the response to the oldest unanswered request. A response
    /// carrying `Connection: close` marks the connection closing (its
    /// own bytes are still valid); a read error poisons the connection
    /// and leaves the unanswered count untouched, so the caller knows
    /// exactly which requests still need a home.
    pub fn read_next(&mut self, limits: &FrameLimits) -> Result<Response> {
        if self.poisoned {
            return Err(NetError::Protocol(
                "pipelined connection is poisoned by an earlier error".into(),
            ));
        }
        let Some(&front) = self.pending.front() else {
            return Err(NetError::Protocol(
                "no pipelined request awaiting a response".into(),
            ));
        };
        if self.closing {
            return Err(NetError::UnexpectedEof(
                "connection announced close; pipelined request will not be answered".into(),
            ));
        }
        match self.reader.read_response(limits, front == Method::Head) {
            Ok(response) => {
                self.pending.pop_front();
                if response.headers.wants_close() {
                    self.closing = true;
                }
                Ok(response)
            }
            Err(err) => {
                self.poisoned = true;
                Err(err)
            }
        }
    }

    /// Tears the connection back into its reader/writer parts (for
    /// returning an idle, still-open connection to a pool). Callers
    /// should only pool a connection that [`is_open`] with zero
    /// [`unanswered`] requests.
    ///
    /// [`is_open`]: PipelinedConn::is_open
    /// [`unanswered`]: PipelinedConn::unanswered
    pub fn into_parts(self) -> (MessageReader<TcpStream>, TcpStream) {
        (self.reader, self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::write_response;
    use crate::message::StatusCode;
    use crate::server::{Handler, Server, ServerConfig};
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::Arc;

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request| Response::text(StatusCode::OK, format!("echo {}", req.path)))
    }

    fn connect(addr: std::net::SocketAddr, depth: usize) -> PipelinedConn {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        PipelinedConn::from_stream(stream, depth).unwrap()
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let server = Server::bind("127.0.0.1:0", echo_handler(), ServerConfig::default()).unwrap();
        let mut conn = connect(server.local_addr(), 4);
        for i in 0..4 {
            conn.submit(&Request::get(format!("/p{i}")), "h").unwrap();
        }
        assert_eq!(conn.unanswered(), 4);
        assert!(!conn.can_submit(Method::Get), "depth bound enforced");
        for i in 0..4 {
            let resp = conn.read_next(&FrameLimits::default()).unwrap();
            assert_eq!(resp.body_text().unwrap(), format!("echo /p{i}"));
        }
        assert_eq!(conn.unanswered(), 0);
        assert!(conn.is_open());
        server.shutdown();
    }

    #[test]
    fn non_idempotent_requests_are_never_pipelined() {
        let server = Server::bind("127.0.0.1:0", echo_handler(), ServerConfig::default()).unwrap();
        let mut conn = connect(server.local_addr(), 4);
        // A POST on an empty pipeline is fine…
        conn.submit(&Request::post("/admin", b"x".to_vec()), "h")
            .unwrap();
        // …but nothing may ride behind it, idempotent or not.
        assert_eq!(
            conn.refusal(Method::Get),
            Some(SubmitRefusal::NotPipelinable)
        );
        assert!(conn.submit(&Request::get("/g"), "h").is_err());
        conn.read_next(&FrameLimits::default()).unwrap();
        // And a POST may not join a non-empty pipeline.
        conn.submit(&Request::get("/g"), "h").unwrap();
        assert_eq!(
            conn.refusal(Method::Post),
            Some(SubmitRefusal::NotPipelinable)
        );
        conn.read_next(&FrameLimits::default()).unwrap();
        server.shutdown();
    }

    #[test]
    fn connection_close_response_stops_the_pipeline() {
        // A scripted server: answers the first request with
        // `Connection: close`, then closes — the two pipelined requests
        // behind it are never answered.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let script = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Drain all three requests before closing: dropping the
            // socket with unread bytes would RST and destroy the
            // buffered response instead of FIN-ing after it.
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            while buf.windows(4).filter(|w| w == b"\r\n\r\n").count() < 3 {
                let n = sock.read(&mut chunk).unwrap();
                assert!(n > 0, "client closed before sending all requests");
                buf.extend_from_slice(&chunk[..n]);
            }
            let resp = Response::text(StatusCode::OK, "first");
            write_response(&mut sock, &resp, false).unwrap();
        });
        let mut conn = connect(addr, 3);
        for i in 0..3 {
            conn.submit(&Request::get(format!("/c{i}")), "h").unwrap();
        }
        let first = conn.read_next(&FrameLimits::default()).unwrap();
        assert_eq!(first.body_text().unwrap(), "first");
        assert!(!conn.is_open());
        assert_eq!(conn.unanswered(), 2, "two requests left unanswered");
        // Further reads report the close instead of hanging.
        let err = conn.read_next(&FrameLimits::default()).unwrap_err();
        assert!(matches!(err, NetError::UnexpectedEof(_)), "{err:?}");
        assert!(conn.submit(&Request::get("/x"), "h").is_err());
        script.join().unwrap();
    }

    #[test]
    fn truncated_response_poisons_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let script = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Drain both requests first so the close after the partial
            // write is a FIN, not an RST that eats the partial bytes.
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            while buf.windows(4).filter(|w| w == b"\r\n\r\n").count() < 2 {
                let n = sock.read(&mut chunk).unwrap();
                assert!(n > 0, "client closed before sending all requests");
                buf.extend_from_slice(&chunk[..n]);
            }
            // A half-written response, then a hard close.
            sock.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\nshort")
                .unwrap();
        });
        let mut conn = connect(addr, 2);
        conn.submit(&Request::get("/a"), "h").unwrap();
        conn.submit(&Request::get("/b"), "h").unwrap();
        let err = conn.read_next(&FrameLimits::default()).unwrap_err();
        assert!(matches!(err, NetError::UnexpectedEof(_)), "{err:?}");
        assert!(!conn.is_open());
        // The unanswered count still covers both requests: neither got
        // a full response, both need resubmission elsewhere.
        assert_eq!(conn.unanswered(), 2);
        script.join().unwrap();
    }

    #[test]
    fn head_responses_are_framed_without_bodies() {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| {
            let mut resp = Response::text(StatusCode::OK, "");
            resp.headers.set("content-length", "10");
            resp
        });
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let mut conn = connect(server.local_addr(), 2);
        let head = Request {
            method: Method::Head,
            path: "/h".into(),
            query: crate::url::QueryString::new(),
            headers: crate::message::Headers::new(),
            body: Vec::new(),
        };
        conn.submit(&head, "h").unwrap();
        conn.submit(&head, "h").unwrap();
        for _ in 0..2 {
            let resp = conn.read_next(&FrameLimits::default()).unwrap();
            assert!(resp.body.is_empty());
        }
        server.shutdown();
    }
}
