//! A blocking HTTP/1.1 client with per-host connection reuse.
//!
//! The audit issues thousands of small sequential GETs against one host;
//! reusing the TCP connection (keep-alive) removes per-request handshake
//! cost and mirrors how real collection scripts behave. Stale pooled
//! connections (closed by the server between requests) are detected by the
//! first read failing and retried once on a fresh connection — the standard
//! idempotent-replay rule.

use crate::framing::{write_request, FrameLimits, MessageReader};
use crate::message::{Method, Request, Response};
use crate::pipeline::PipelinedConn;
use crate::url::Url;
use crate::{NetError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read socket timeout.
    pub read_timeout: Duration,
    /// Frame limits for responses.
    pub limits: FrameLimits,
    /// Maximum idle connections kept per host.
    pub max_idle_per_host: usize,
    /// `User-Agent` header value.
    pub user_agent: String,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            limits: FrameLimits::default(),
            max_idle_per_host: 4,
            user_agent: "ytaudit-net/0.1".to_string(),
        }
    }
}

/// One pooled connection: the buffered read half plus a cloned write half,
/// kept together so buffered bytes survive reuse.
struct PooledConn {
    reader: MessageReader<TcpStream>,
    writer: TcpStream,
}

/// Lifetime connection counters: how many TCP connections the client
/// opened versus how many requests rode an existing keep-alive
/// connection. `reused / (opened + reused)` is the keep-alive hit rate;
/// `discarded` keeps that arithmetic honest when the idle pool overflows,
/// and `replays` counts idempotent requests resent after a connection
/// died under them.
#[derive(Debug, Default)]
pub struct PoolStats {
    opened: AtomicU64,
    reused: AtomicU64,
    replays: AtomicU64,
    discarded: AtomicU64,
    shed: AtomicU64,
    depth_hwm: AtomicU64,
}

impl PoolStats {
    /// TCP connections dialled (including replacements for stale pooled
    /// connections).
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Requests served over a reused keep-alive connection.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Idempotent requests replayed on a fresh connection after a stale
    /// or mid-pipeline connection failure.
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Healthy connections closed instead of pooled because the per-host
    /// idle pool was full.
    pub fn discarded(&self) -> u64 {
        self.discarded.load(Ordering::Relaxed)
    }

    /// Responses that arrived as `429 Too Many Requests` — the server
    /// shed the request under load. Distinct from [`PoolStats::discarded`]:
    /// a shed request got a real (retryable) answer, a discard is purely a
    /// local pool-capacity decision about a healthy connection.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// High-water mark of pipelined requests in flight on one connection
    /// (1 for a purely sequential client).
    pub fn pipeline_depth_hwm(&self) -> u64 {
        self.depth_hwm.load(Ordering::Relaxed)
    }

    fn note_response(&self, response: &Response) {
        if response.status.0 == 429 {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_depth(&self, depth: u64) {
        self.depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }
}

/// A blocking HTTP client. Cheap to share behind an `Arc`; all state is
/// internally synchronized.
pub struct HttpClient {
    config: ClientConfig,
    pool: Mutex<HashMap<String, Vec<PooledConn>>>,
    stats: PoolStats,
}

impl HttpClient {
    /// A client with default configuration.
    pub fn new() -> HttpClient {
        HttpClient::with_config(ClientConfig::default())
    }

    /// A client with explicit configuration.
    pub fn with_config(config: ClientConfig) -> HttpClient {
        HttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            stats: PoolStats::default(),
        }
    }

    fn connect(&self, url: &Url) -> Result<PooledConn> {
        if url.scheme != "http" {
            return Err(NetError::Protocol(format!(
                "scheme {:?} is not supported by this client (plaintext loopback only)",
                url.scheme
            )));
        }
        let mut last_err = NetError::Io(format!("no addresses resolved for {}", url.authority()));
        let addrs = std::net::ToSocketAddrs::to_socket_addrs(&(url.host.as_str(), url.port))
            .map_err(|e| NetError::Io(e.to_string()))?;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.config.read_timeout))?;
                    stream.set_nodelay(true)?;
                    let writer = stream.try_clone()?;
                    self.stats.opened.fetch_add(1, Ordering::Relaxed);
                    return Ok(PooledConn {
                        reader: MessageReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last_err = NetError::Io(e.to_string()),
            }
        }
        Err(last_err)
    }

    fn checkout(&self, key: &str) -> Option<PooledConn> {
        self.pool.lock().get_mut(key).and_then(Vec::pop)
    }

    fn checkin(&self, key: &str, conn: PooledConn) {
        let mut pool = self.pool.lock();
        let idle = pool.entry(key.to_string()).or_default();
        if idle.len() < self.config.max_idle_per_host {
            idle.push(conn);
        } else {
            // The pool is full: close the socket explicitly (rather than
            // leaking it to the OS to reap) and record the discard so
            // reuse-rate arithmetic stays honest.
            drop(pool);
            let _ = conn.writer.shutdown(std::net::Shutdown::Both);
            self.stats.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn send_once(&self, url: &Url, request: &Request, conn: &mut PooledConn) -> Result<Response> {
        let mut req = request.clone();
        if !req.headers.contains("user-agent") {
            req.headers
                .set("user-agent", self.config.user_agent.clone());
        }
        write_request(&mut conn.writer, &req, &url.authority())?;
        conn.reader
            .read_response(&self.config.limits, req.method == Method::Head)
    }

    /// Sends `request` to `url`'s authority. The request's own path/query
    /// are used (callers typically build the request *from* the URL via
    /// [`HttpClient::get`]).
    pub fn send(&self, url: &Url, request: &Request) -> Result<Response> {
        let key = url.authority();
        let mut reused = true;
        let mut conn = match self.checkout(&key) {
            Some(conn) => conn,
            None => {
                reused = false;
                self.connect(url)?
            }
        };
        let result = self.send_once(url, request, &mut conn);
        match result {
            Ok(response) => {
                if reused {
                    self.stats.reused.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.note_response(&response);
                let reusable = !response.headers.wants_close();
                if reusable {
                    self.checkin(&key, conn);
                }
                Ok(response)
            }
            Err(err) => {
                drop(conn); // never reuse a connection in an unknown state
                            // A stale pooled connection fails on first use; replay once
                            // on a fresh connection — but only if the request is
                            // idempotent. A POST may already have executed server-side.
                let ambiguous = reused
                    && matches!(err, NetError::Io(_) | NetError::UnexpectedEof(_));
                if ambiguous && request.method.is_idempotent() {
                    self.stats.replays.fetch_add(1, Ordering::Relaxed);
                    let mut fresh = self.connect(url)?;
                    let response = self.send_once(url, request, &mut fresh)?;
                    self.stats.note_response(&response);
                    if !response.headers.wants_close() {
                        self.checkin(&key, fresh);
                    }
                    Ok(response)
                } else if ambiguous {
                    // Surface the ambiguity uniformly: the caller cannot know
                    // whether the non-idempotent request executed, and must
                    // not assume a plain I/O error means "never sent".
                    Err(NetError::UnexpectedEof(format!(
                        "{} on a reused connection failed before a response arrived \
                         (not replayed: {} is not idempotent): {err}",
                        request.method, request.method
                    )))
                } else {
                    Err(err)
                }
            }
        }
    }

    /// Sends a batch of requests to `url`'s authority, keeping up to
    /// `max_in_flight` idempotent requests written ahead on one keep-alive
    /// connection while responses are read back in order (HTTP/1.1
    /// pipelining). Returns one result per request, in request order.
    ///
    /// Fallback rules:
    ///
    /// * Non-idempotent requests never ride a pipeline: the pipeline is
    ///   drained first and they go through [`HttpClient::send`] alone, so
    ///   they can never end up written-but-unanswered behind other traffic.
    /// * On a `Connection: close`, early close, or framing error, responses
    ///   that already arrived are kept, the connection is dropped, and the
    ///   unanswered requests (idempotent by construction) are resubmitted on
    ///   a fresh connection — counted in [`PoolStats::replays`].
    /// * A *fresh* connection that dies without yielding a single response
    ///   fails the remaining requests instead of reconnecting forever.
    ///
    /// `max_in_flight = 1` degenerates to sequential keep-alive requests.
    pub fn send_pipelined(
        &self,
        url: &Url,
        requests: &[Request],
        max_in_flight: usize,
    ) -> Vec<Result<Response>> {
        let depth = max_in_flight.max(1);
        let mut results = Vec::with_capacity(requests.len());
        let mut rest = requests;
        while let Some((first, tail)) = rest.split_first() {
            if !first.method.is_idempotent() {
                results.push(self.send(url, first));
                rest = tail;
                continue;
            }
            let run = rest
                .iter()
                .take_while(|r| r.method.is_idempotent())
                .count();
            let (segment, tail) = rest.split_at(run);
            self.drive_pipeline(url, segment, depth, &mut results);
            rest = tail;
        }
        results
    }

    /// Drives one all-idempotent segment through pipelined connections,
    /// appending one result per request to `results`.
    fn drive_pipeline(
        &self,
        url: &Url,
        requests: &[Request],
        depth: usize,
        results: &mut Vec<Result<Response>>,
    ) {
        let key = url.authority();
        let mut answered = 0usize;
        while answered < requests.len() {
            let remaining = &requests[answered..];
            let (conn, reused) = match self.checkout(&key) {
                Some(conn) => (conn, true),
                None => match self.connect(url) {
                    Ok(conn) => (conn, false),
                    Err(err) => {
                        // Cannot even dial: nothing else can complete.
                        for _ in 0..remaining.len() {
                            results.push(Err(err.clone()));
                        }
                        return;
                    }
                },
            };
            let mut pipe = PipelinedConn::from_parts(conn.reader, conn.writer, depth);
            let mut submitted = 0usize;
            let mut got_any = false;
            // A failed write kills the write side only: keep draining the
            // responses already in flight (a server that answers a request
            // then closes, with later pipelined requests unread in its
            // buffer, fails our write while its answers are still readable),
            // and surface the error once the drain is done.
            let mut write_err: Option<NetError> = None;
            let outcome: Result<()> = loop {
                // Keep the pipe as full as the depth bound allows.
                while let Some(request) = remaining.get(submitted) {
                    if write_err.is_some() || !pipe.can_submit(request.method) {
                        break;
                    }
                    let mut req = request.clone();
                    if !req.headers.contains("user-agent") {
                        req.headers
                            .set("user-agent", self.config.user_agent.clone());
                    }
                    if let Err(err) = pipe.submit(&req, &key) {
                        write_err = Some(err);
                        break;
                    }
                    submitted += 1;
                    self.stats.note_depth(pipe.unanswered() as u64);
                }
                if pipe.unanswered() == 0 {
                    match write_err.take() {
                        // Everything on the wire is drained but the write
                        // side is dead: reopen for the rest of the segment.
                        Some(err) => break Err(err),
                        None => break Ok(()), // segment submitted and answered
                    }
                }
                match pipe.read_next(&self.config.limits) {
                    Ok(response) => {
                        if reused || got_any {
                            self.stats.reused.fetch_add(1, Ordering::Relaxed);
                        }
                        self.stats.note_response(&response);
                        got_any = true;
                        results.push(Ok(response));
                        answered += 1;
                        if !pipe.is_open() {
                            // `Connection: close`: requests written behind
                            // this response will never be answered.
                            break Err(NetError::UnexpectedEof(
                                "server announced close mid-pipeline".into(),
                            ));
                        }
                    }
                    Err(err) => break Err(err),
                }
            };
            match outcome {
                Ok(()) => {
                    // Pool the healthy connection for the next batch.
                    if pipe.is_open() {
                        let (reader, writer) = pipe.into_parts();
                        self.checkin(&key, PooledConn { reader, writer });
                    }
                }
                Err(err) => {
                    let unanswered = pipe.unanswered() as u64;
                    drop(pipe); // unknown state: never pool it
                    if !got_any && !reused {
                        // A fresh connection yielded nothing at all — treat
                        // the endpoint as down rather than redialling forever.
                        for _ in answered..requests.len() {
                            results.push(Err(err.clone()));
                        }
                        return;
                    }
                    // Written-but-unanswered requests go around again on a
                    // fresh connection; that is the replay path.
                    self.stats.replays.fetch_add(unanswered, Ordering::Relaxed);
                }
            }
        }
    }

    /// GET the given absolute URL.
    pub fn get(&self, url_text: &str) -> Result<Response> {
        let url = Url::parse(url_text)?;
        let request = Request::get(url.path.clone()).with_query(url.query.clone());
        self.send(&url, &request)
    }

    /// POST a body to the given absolute URL.
    pub fn post(&self, url_text: &str, body: impl Into<Vec<u8>>) -> Result<Response> {
        let url = Url::parse(url_text)?;
        let request = Request::post(url.path.clone(), body).with_query(url.query.clone());
        self.send(&url, &request)
    }

    /// Number of idle pooled connections (all hosts) — for tests.
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    /// Lifetime open/reuse counters for this client's connection pool.
    pub fn pool_stats(&self) -> &PoolStats {
        &self.stats
    }
}

impl Default for HttpClient {
    fn default() -> HttpClient {
        HttpClient::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use crate::server::{Server, ServerConfig, ServerHandle};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn test_server() -> (ServerHandle, Arc<AtomicU64>) {
        let hits = Arc::new(AtomicU64::new(0));
        let hits_clone = Arc::clone(&hits);
        let handler = Arc::new(move |req: &Request| {
            hits_clone.fetch_add(1, Ordering::SeqCst);
            match req.path.as_str() {
                "/close" => {
                    Response::text(StatusCode::OK, "bye").with_header("connection", "close")
                }
                "/echo" => Response::text(
                    StatusCode::OK,
                    format!("{}?{}", req.path, req.query.encode()),
                ),
                _ => Response::text(StatusCode::OK, "ok"),
            }
        });
        let handle = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        (handle, hits)
    }

    #[test]
    fn get_round_trip() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        let resp = client
            .get(&format!("{}/echo?q=higgs+boson", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text().unwrap(), "/echo?q=higgs+boson");
        server.shutdown();
    }

    #[test]
    fn connections_are_reused() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        for _ in 0..5 {
            client.get(&format!("{}/x", server.base_url())).unwrap();
        }
        assert_eq!(client.idle_connections(), 1);
        assert_eq!(server.stats().connections.load(Ordering::SeqCst), 1);
        // First request dials, the next four ride the keep-alive socket.
        assert_eq!(client.pool_stats().opened(), 1);
        assert_eq!(client.pool_stats().reused(), 4);
        server.shutdown();
    }

    #[test]
    fn shed_responses_are_counted_apart_from_discards() {
        let handler = Arc::new(|req: &Request| {
            if req.path == "/busy" {
                Response::text(StatusCode::TOO_MANY_REQUESTS, "shed")
                    .with_header("retry-after", "1")
            } else {
                Response::text(StatusCode::OK, "ok")
            }
        });
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let client = HttpClient::new();
        for _ in 0..3 {
            let resp = client.get(&format!("{}/busy", server.base_url())).unwrap();
            assert_eq!(resp.status, StatusCode::TOO_MANY_REQUESTS);
        }
        client.get(&format!("{}/ok", server.base_url())).unwrap();
        // Three sheds, zero discards: the counters answer different
        // questions and must not bleed into each other.
        assert_eq!(client.pool_stats().shed(), 3);
        assert_eq!(client.pool_stats().discarded(), 0);
        server.shutdown();
    }

    #[test]
    fn server_close_is_respected() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        client.get(&format!("{}/close", server.base_url())).unwrap();
        assert_eq!(client.idle_connections(), 0);
        client.get(&format!("{}/x", server.base_url())).unwrap();
        assert_eq!(server.stats().connections.load(Ordering::SeqCst), 2);
        server.shutdown();
    }

    #[test]
    fn stale_pooled_connection_is_replayed() {
        let (server, hits) = test_server();
        let base = server.base_url();
        let client = HttpClient::new();
        client.get(&format!("{base}/x")).unwrap();
        assert_eq!(client.idle_connections(), 1);
        // Restart the server on the same port to kill the pooled socket.
        let addr = server.local_addr();
        server.shutdown();
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "fresh"));
        let server2 = Server::bind(&addr.to_string(), handler, ServerConfig::default()).unwrap();
        let resp = client.get(&format!("{base}/y")).unwrap();
        assert_eq!(resp.body_text().unwrap(), "fresh");
        // The replayed request dialled a fresh connection; it does not
        // count as a successful reuse.
        assert_eq!(client.pool_stats().opened(), 2);
        assert_eq!(client.pool_stats().reused(), 0);
        let _ = hits;
        server2.shutdown();
    }

    #[test]
    fn stale_replay_is_counted() {
        let (server, _) = test_server();
        let base = server.base_url();
        let client = HttpClient::new();
        client.get(&format!("{base}/x")).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "fresh"));
        let server2 = Server::bind(&addr.to_string(), handler, ServerConfig::default()).unwrap();
        client.get(&format!("{base}/y")).unwrap();
        assert_eq!(client.pool_stats().replays(), 1);
        server2.shutdown();
    }

    #[test]
    fn non_idempotent_request_is_not_replayed_and_surfaces_eof() {
        let (server, _) = test_server();
        let base = server.base_url();
        let client = HttpClient::new();
        client.get(&format!("{base}/x")).unwrap();
        assert_eq!(client.idle_connections(), 1);
        // Kill the server under the pooled connection, then bring up a
        // replacement that counts what reaches it.
        let addr = server.local_addr();
        server.shutdown();
        let hits2 = Arc::new(AtomicU64::new(0));
        let hits2_clone = Arc::clone(&hits2);
        let handler = Arc::new(move |_: &Request| {
            hits2_clone.fetch_add(1, Ordering::SeqCst);
            Response::text(StatusCode::OK, "fresh")
        });
        let server2 = Server::bind(&addr.to_string(), handler, ServerConfig::default()).unwrap();
        // The POST rides the stale pooled connection and dies there. It
        // must NOT be replayed — the caller gets the ambiguity as
        // UnexpectedEof and the replacement server never sees it.
        let err = client
            .post(&format!("{base}/submit"), b"payload".to_vec())
            .unwrap_err();
        assert!(matches!(err, NetError::UnexpectedEof(_)), "{err:?}");
        assert_eq!(hits2.load(Ordering::SeqCst), 0);
        assert_eq!(client.pool_stats().replays(), 0);
        server2.shutdown();
    }

    #[test]
    fn full_idle_pool_closes_and_counts_discards() {
        let (server, _) = test_server();
        let client = HttpClient::with_config(ClientConfig {
            max_idle_per_host: 0,
            ..ClientConfig::default()
        });
        for _ in 0..3 {
            client.get(&format!("{}/x", server.base_url())).unwrap();
        }
        // With no idle slots every healthy connection is discarded on
        // checkin, so each request dials fresh — and the stats say so.
        assert_eq!(client.idle_connections(), 0);
        assert_eq!(client.pool_stats().opened(), 3);
        assert_eq!(client.pool_stats().reused(), 0);
        assert_eq!(client.pool_stats().discarded(), 3);
        server.shutdown();
    }

    #[test]
    fn pipelined_batch_round_trips_in_order() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        let url = crate::url::Url::parse(&server.base_url()).unwrap();
        let requests: Vec<Request> = (0..10)
            .map(|i| {
                Request::get("/echo").with_query(
                    crate::url::QueryString::new().with("i", i.to_string()),
                )
            })
            .collect();
        let results = client.send_pipelined(&url, &requests, 4);
        assert_eq!(results.len(), 10);
        for (i, result) in results.iter().enumerate() {
            let resp = result.as_ref().unwrap();
            assert_eq!(resp.body_text().unwrap(), format!("/echo?i={i}"));
        }
        // One dial, everything else rode the pipeline; the gauge saw the
        // configured depth but never more.
        assert_eq!(client.pool_stats().opened(), 1);
        assert_eq!(client.pool_stats().reused(), 9);
        assert_eq!(client.pool_stats().pipeline_depth_hwm(), 4);
        assert_eq!(server.stats().connections.load(Ordering::SeqCst), 1);
        server.shutdown();
    }

    #[test]
    fn depth_one_pipelining_degenerates_to_sequential() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        let url = crate::url::Url::parse(&server.base_url()).unwrap();
        let requests: Vec<Request> = (0..4).map(|_| Request::get("/x")).collect();
        let results = client.send_pipelined(&url, &requests, 1);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(client.pool_stats().pipeline_depth_hwm(), 1);
        assert_eq!(client.pool_stats().opened(), 1);
        server.shutdown();
    }

    #[test]
    fn pipelined_batch_sends_posts_alone() {
        let (server, hits) = test_server();
        let client = HttpClient::new();
        let url = crate::url::Url::parse(&server.base_url()).unwrap();
        let requests = vec![
            Request::get("/a"),
            Request::post("/submit", b"body".to_vec()),
            Request::get("/b"),
        ];
        let results = client.send_pipelined(&url, &requests, 8);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // The POST never shared a pipeline: each request here is its own
        // single-request segment, so the depth gauge never left 1.
        assert_eq!(client.pool_stats().pipeline_depth_hwm(), 1);
        server.shutdown();
    }

    #[test]
    fn connection_close_mid_pipeline_resubmits_unanswered_requests() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        let url = crate::url::Url::parse(&server.base_url()).unwrap();
        // Request 1 answers with `Connection: close`; requests 2 and 3 are
        // already written behind it and must be resubmitted on a fresh
        // connection.
        let requests = vec![
            Request::get("/a"),
            Request::get("/close"),
            Request::get("/b"),
            Request::get("/c"),
        ];
        let results = client.send_pipelined(&url, &requests, 4);
        assert_eq!(results.len(), 4);
        for result in &results {
            assert_eq!(result.as_ref().unwrap().status, StatusCode::OK);
        }
        assert_eq!(client.pool_stats().replays(), 2);
        assert_eq!(client.pool_stats().opened(), 2);
        assert_eq!(server.stats().connections.load(Ordering::SeqCst), 2);
        server.shutdown();
    }

    #[test]
    fn refuses_https() {
        let client = HttpClient::new();
        let err = client
            .get("https://www.googleapis.com/youtube/v3/search")
            .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)));
    }

    #[test]
    fn connect_failure_is_io_error() {
        let client = HttpClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        // Port 1 on loopback is virtually always closed.
        let err = client.get("http://127.0.0.1:1/x").unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
    }

    #[test]
    fn post_round_trips_body() {
        let handler = Arc::new(|req: &Request| {
            Response::text(StatusCode::OK, format!("got {} bytes", req.body.len()))
        });
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let client = HttpClient::new();
        let resp = client
            .post(&format!("{}/submit", server.base_url()), vec![b'a'; 1000])
            .unwrap();
        assert_eq!(resp.body_text().unwrap(), "got 1000 bytes");
        server.shutdown();
    }
}
