//! A blocking HTTP/1.1 client with per-host connection reuse.
//!
//! The audit issues thousands of small sequential GETs against one host;
//! reusing the TCP connection (keep-alive) removes per-request handshake
//! cost and mirrors how real collection scripts behave. Stale pooled
//! connections (closed by the server between requests) are detected by the
//! first read failing and retried once on a fresh connection — the standard
//! idempotent-replay rule.

use crate::framing::{write_request, FrameLimits, MessageReader};
use crate::message::{Method, Request, Response};
use crate::url::Url;
use crate::{NetError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read socket timeout.
    pub read_timeout: Duration,
    /// Frame limits for responses.
    pub limits: FrameLimits,
    /// Maximum idle connections kept per host.
    pub max_idle_per_host: usize,
    /// `User-Agent` header value.
    pub user_agent: String,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            limits: FrameLimits::default(),
            max_idle_per_host: 4,
            user_agent: "ytaudit-net/0.1".to_string(),
        }
    }
}

/// One pooled connection: the buffered read half plus a cloned write half,
/// kept together so buffered bytes survive reuse.
struct PooledConn {
    reader: MessageReader<TcpStream>,
    writer: TcpStream,
}

/// Lifetime connection counters: how many TCP connections the client
/// opened versus how many requests rode an existing keep-alive
/// connection. `reused / (opened + reused)` is the keep-alive hit rate.
#[derive(Debug, Default)]
pub struct PoolStats {
    opened: AtomicU64,
    reused: AtomicU64,
}

impl PoolStats {
    /// TCP connections dialled (including replacements for stale pooled
    /// connections).
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Requests served over a reused keep-alive connection.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

/// A blocking HTTP client. Cheap to share behind an `Arc`; all state is
/// internally synchronized.
pub struct HttpClient {
    config: ClientConfig,
    pool: Mutex<HashMap<String, Vec<PooledConn>>>,
    stats: PoolStats,
}

impl HttpClient {
    /// A client with default configuration.
    pub fn new() -> HttpClient {
        HttpClient::with_config(ClientConfig::default())
    }

    /// A client with explicit configuration.
    pub fn with_config(config: ClientConfig) -> HttpClient {
        HttpClient {
            config,
            pool: Mutex::new(HashMap::new()),
            stats: PoolStats::default(),
        }
    }

    fn connect(&self, url: &Url) -> Result<PooledConn> {
        if url.scheme != "http" {
            return Err(NetError::Protocol(format!(
                "scheme {:?} is not supported by this client (plaintext loopback only)",
                url.scheme
            )));
        }
        let mut last_err = NetError::Io(format!("no addresses resolved for {}", url.authority()));
        let addrs = std::net::ToSocketAddrs::to_socket_addrs(&(url.host.as_str(), url.port))
            .map_err(|e| NetError::Io(e.to_string()))?;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.config.read_timeout))?;
                    stream.set_nodelay(true)?;
                    let writer = stream.try_clone()?;
                    self.stats.opened.fetch_add(1, Ordering::Relaxed);
                    return Ok(PooledConn {
                        reader: MessageReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last_err = NetError::Io(e.to_string()),
            }
        }
        Err(last_err)
    }

    fn checkout(&self, key: &str) -> Option<PooledConn> {
        self.pool.lock().get_mut(key).and_then(Vec::pop)
    }

    fn checkin(&self, key: &str, conn: PooledConn) {
        let mut pool = self.pool.lock();
        let idle = pool.entry(key.to_string()).or_default();
        if idle.len() < self.config.max_idle_per_host {
            idle.push(conn);
        }
    }

    fn send_once(&self, url: &Url, request: &Request, conn: &mut PooledConn) -> Result<Response> {
        let mut req = request.clone();
        if !req.headers.contains("user-agent") {
            req.headers
                .set("user-agent", self.config.user_agent.clone());
        }
        write_request(&mut conn.writer, &req, &url.authority())?;
        conn.reader
            .read_response(&self.config.limits, req.method == Method::Head)
    }

    /// Sends `request` to `url`'s authority. The request's own path/query
    /// are used (callers typically build the request *from* the URL via
    /// [`HttpClient::get`]).
    pub fn send(&self, url: &Url, request: &Request) -> Result<Response> {
        let key = url.authority();
        let mut reused = true;
        let mut conn = match self.checkout(&key) {
            Some(conn) => conn,
            None => {
                reused = false;
                self.connect(url)?
            }
        };
        let result = self.send_once(url, request, &mut conn);
        match result {
            Ok(response) => {
                if reused {
                    self.stats.reused.fetch_add(1, Ordering::Relaxed);
                }
                let reusable = !response.headers.wants_close();
                if reusable {
                    self.checkin(&key, conn);
                }
                Ok(response)
            }
            Err(err) => {
                drop(conn); // never reuse a connection in an unknown state
                            // A stale pooled connection fails on first use; replay once
                            // on a fresh connection if the request is idempotent.
                let retryable = reused
                    && request.method.is_idempotent()
                    && matches!(err, NetError::Io(_) | NetError::UnexpectedEof(_));
                if retryable {
                    let mut fresh = self.connect(url)?;
                    let response = self.send_once(url, request, &mut fresh)?;
                    if !response.headers.wants_close() {
                        self.checkin(&key, fresh);
                    }
                    Ok(response)
                } else {
                    Err(err)
                }
            }
        }
    }

    /// GET the given absolute URL.
    pub fn get(&self, url_text: &str) -> Result<Response> {
        let url = Url::parse(url_text)?;
        let request = Request::get(url.path.clone()).with_query(url.query.clone());
        self.send(&url, &request)
    }

    /// POST a body to the given absolute URL.
    pub fn post(&self, url_text: &str, body: impl Into<Vec<u8>>) -> Result<Response> {
        let url = Url::parse(url_text)?;
        let request = Request::post(url.path.clone(), body).with_query(url.query.clone());
        self.send(&url, &request)
    }

    /// Number of idle pooled connections (all hosts) — for tests.
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    /// Lifetime open/reuse counters for this client's connection pool.
    pub fn pool_stats(&self) -> &PoolStats {
        &self.stats
    }
}

impl Default for HttpClient {
    fn default() -> HttpClient {
        HttpClient::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use crate::server::{Server, ServerConfig, ServerHandle};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn test_server() -> (ServerHandle, Arc<AtomicU64>) {
        let hits = Arc::new(AtomicU64::new(0));
        let hits_clone = Arc::clone(&hits);
        let handler = Arc::new(move |req: &Request| {
            hits_clone.fetch_add(1, Ordering::SeqCst);
            match req.path.as_str() {
                "/close" => {
                    Response::text(StatusCode::OK, "bye").with_header("connection", "close")
                }
                "/echo" => Response::text(
                    StatusCode::OK,
                    format!("{}?{}", req.path, req.query.encode()),
                ),
                _ => Response::text(StatusCode::OK, "ok"),
            }
        });
        let handle = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        (handle, hits)
    }

    #[test]
    fn get_round_trip() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        let resp = client
            .get(&format!("{}/echo?q=higgs+boson", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text().unwrap(), "/echo?q=higgs+boson");
        server.shutdown();
    }

    #[test]
    fn connections_are_reused() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        for _ in 0..5 {
            client.get(&format!("{}/x", server.base_url())).unwrap();
        }
        assert_eq!(client.idle_connections(), 1);
        assert_eq!(server.stats().connections.load(Ordering::SeqCst), 1);
        // First request dials, the next four ride the keep-alive socket.
        assert_eq!(client.pool_stats().opened(), 1);
        assert_eq!(client.pool_stats().reused(), 4);
        server.shutdown();
    }

    #[test]
    fn server_close_is_respected() {
        let (server, _) = test_server();
        let client = HttpClient::new();
        client.get(&format!("{}/close", server.base_url())).unwrap();
        assert_eq!(client.idle_connections(), 0);
        client.get(&format!("{}/x", server.base_url())).unwrap();
        assert_eq!(server.stats().connections.load(Ordering::SeqCst), 2);
        server.shutdown();
    }

    #[test]
    fn stale_pooled_connection_is_replayed() {
        let (server, hits) = test_server();
        let base = server.base_url();
        let client = HttpClient::new();
        client.get(&format!("{base}/x")).unwrap();
        assert_eq!(client.idle_connections(), 1);
        // Restart the server on the same port to kill the pooled socket.
        let addr = server.local_addr();
        server.shutdown();
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "fresh"));
        let server2 = Server::bind(&addr.to_string(), handler, ServerConfig::default()).unwrap();
        let resp = client.get(&format!("{base}/y")).unwrap();
        assert_eq!(resp.body_text().unwrap(), "fresh");
        // The replayed request dialled a fresh connection; it does not
        // count as a successful reuse.
        assert_eq!(client.pool_stats().opened(), 2);
        assert_eq!(client.pool_stats().reused(), 0);
        let _ = hits;
        server2.shutdown();
    }

    #[test]
    fn refuses_https() {
        let client = HttpClient::new();
        let err = client
            .get("https://www.googleapis.com/youtube/v3/search")
            .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)));
    }

    #[test]
    fn connect_failure_is_io_error() {
        let client = HttpClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        // Port 1 on loopback is virtually always closed.
        let err = client.get("http://127.0.0.1:1/x").unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
    }

    #[test]
    fn post_round_trips_body() {
        let handler = Arc::new(|req: &Request| {
            Response::text(StatusCode::OK, format!("got {} bytes", req.body.len()))
        });
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let client = HttpClient::new();
        let resp = client
            .post(&format!("{}/submit", server.base_url()), vec![b'a'; 1000])
            .unwrap();
        assert_eq!(resp.body_text().unwrap(), "got 1000 bytes");
        server.shutdown();
    }
}
