//! HTTP/1.1 wire framing: reading and writing messages on byte streams.
//!
//! The reader side is defensive: header blocks and bodies are capped, a
//! `Content-Length` is never trusted past the configured limit, and chunked
//! bodies are decoded chunk-by-chunk with the same cap. Truncated streams
//! surface as [`NetError::UnexpectedEof`] so callers can distinguish a
//! half-written message (retryable) from a malformed one (not).

use crate::message::{Headers, Method, Request, Response, StatusCode};
use crate::url::QueryString;
use crate::{NetError, Result};
use std::io::{BufRead, BufReader, Read, Write};

/// Hard limits applied while reading a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Maximum bytes in the start line plus header block.
    pub max_header_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum body size in bytes (identity or chunked).
    pub max_body_bytes: usize,
}

impl Default for FrameLimits {
    fn default() -> FrameLimits {
        FrameLimits {
            max_header_bytes: 32 * 1024,
            max_headers: 128,
            // Search responses carry up to 50 resources per page; 16 MiB is
            // roomy without letting a hostile peer exhaust memory.
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Body size above which the server switches to chunked transfer encoding.
pub const CHUNK_THRESHOLD: usize = 64 * 1024;

/// Chunk size used when writing chunked bodies.
pub const CHUNK_SIZE: usize = 16 * 1024;

/// A buffered message reader that persists across keep-alive requests.
pub struct MessageReader<R: Read> {
    inner: BufReader<R>,
}

impl<R: Read> MessageReader<R> {
    /// Wraps a stream.
    pub fn new(stream: R) -> MessageReader<R> {
        MessageReader {
            inner: BufReader::with_capacity(16 * 1024, stream),
        }
    }

    /// Whether bytes are already buffered from the stream — i.e. at least
    /// part of another pipelined message has arrived. Never blocks.
    pub fn has_buffered_input(&self) -> bool {
        !self.inner.buffer().is_empty()
    }

    /// Reads one CRLF-terminated line (LF alone is tolerated, CR stripped),
    /// enforcing `limit` bytes. Returns `None` on clean EOF at a message
    /// boundary.
    fn read_line(&mut self, limit: usize) -> Result<Option<String>> {
        let mut line = Vec::with_capacity(128);
        loop {
            let buf = self.inner.fill_buf()?;
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(NetError::UnexpectedEof("EOF mid-line".into()));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    self.inner.consume(pos + 1);
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if line.len() > limit {
                        return Err(NetError::LimitExceeded("line too long".into()));
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| NetError::Protocol("non-UTF-8 header line".into()));
                }
                None => {
                    if line.len() + buf.len() > limit {
                        return Err(NetError::LimitExceeded("line too long".into()));
                    }
                    let len = buf.len();
                    line.extend_from_slice(buf);
                    self.inner.consume(len);
                }
            }
        }
    }

    /// Reads a header block (after the start line) into `Headers`.
    fn read_headers(&mut self, limits: &FrameLimits) -> Result<Headers> {
        let mut headers = Headers::new();
        let mut total = 0usize;
        loop {
            let line = self
                .read_line(limits.max_header_bytes)?
                .ok_or_else(|| NetError::UnexpectedEof("EOF in header block".into()))?;
            if line.is_empty() {
                return Ok(headers);
            }
            total += line.len();
            if total > limits.max_header_bytes {
                return Err(NetError::LimitExceeded("header block too large".into()));
            }
            if headers.len() >= limits.max_headers {
                return Err(NetError::LimitExceeded("too many headers".into()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| NetError::Protocol(format!("malformed header line {line:?}")))?;
            if name.is_empty() || name.contains(' ') {
                return Err(NetError::Protocol(format!("malformed header name {name:?}")));
            }
            headers.append(name, value.trim());
        }
    }

    /// Reads exactly `len` body bytes.
    fn read_exact_body(&mut self, len: usize, limits: &FrameLimits) -> Result<Vec<u8>> {
        if len > limits.max_body_bytes {
            return Err(NetError::LimitExceeded(format!(
                "declared body of {len} bytes exceeds limit"
            )));
        }
        let mut body = vec![0u8; len];
        self.inner
            .read_exact(&mut body)
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => {
                    NetError::UnexpectedEof("EOF mid-body".into())
                }
                _ => NetError::Io(e.to_string()),
            })?;
        Ok(body)
    }

    /// Decodes a chunked body: `size-hex[;ext]\r\n data \r\n … 0\r\n
    /// [trailers] \r\n`.
    fn read_chunked_body(&mut self, limits: &FrameLimits) -> Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let size_line = self
                .read_line(limits.max_header_bytes)?
                .ok_or_else(|| NetError::UnexpectedEof("EOF at chunk size".into()))?;
            let size_text = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| NetError::Protocol(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer section: zero or more header lines, then empty.
                loop {
                    let trailer = self
                        .read_line(limits.max_header_bytes)?
                        .ok_or_else(|| NetError::UnexpectedEof("EOF in trailers".into()))?;
                    if trailer.is_empty() {
                        return Ok(body);
                    }
                }
            }
            if body.len() + size > limits.max_body_bytes {
                return Err(NetError::LimitExceeded("chunked body exceeds limit".into()));
            }
            let start = body.len();
            body.resize(start + size, 0);
            self.inner
                .read_exact(&mut body[start..])
                .map_err(|_| NetError::UnexpectedEof("EOF mid-chunk".into()))?;
            // Chunk data is followed by CRLF.
            let mut crlf = [0u8; 2];
            self.inner
                .read_exact(&mut crlf)
                .map_err(|_| NetError::UnexpectedEof("EOF after chunk".into()))?;
            // ytlint: allow(indexing) — crlf is a fixed [u8; 2] buffer
            if &crlf != b"\r\n" && crlf[0] != b'\n' {
                return Err(NetError::Protocol("missing CRLF after chunk".into()));
            }
            // ytlint: allow(indexing) — crlf is a fixed [u8; 2] buffer
            if crlf[0] == b'\n' {
                // Tolerated bare-LF chunk terminator: the second byte we
                // consumed is actually part of the next size line. This is
                // a strictness trade-off; our own writer always emits CRLF.
                return Err(NetError::Protocol("bare LF after chunk not supported".into()));
            }
        }
    }

    /// Reads a body according to the framing headers. `allow_eof_body` is
    /// true for responses, where "read until close" is legal framing.
    fn read_body(
        &mut self,
        headers: &Headers,
        limits: &FrameLimits,
        allow_eof_body: bool,
    ) -> Result<Vec<u8>> {
        if headers.is_chunked() {
            return self.read_chunked_body(limits);
        }
        match headers.content_length()? {
            Some(len) => self.read_exact_body(len, limits),
            None if allow_eof_body && headers.wants_close() => {
                let mut body = Vec::new();
                let mut chunk = [0u8; 8192];
                loop {
                    let n = self.inner.read(&mut chunk)?;
                    if n == 0 {
                        return Ok(body);
                    }
                    if body.len() + n > limits.max_body_bytes {
                        return Err(NetError::LimitExceeded("EOF-delimited body exceeds limit".into()));
                    }
                    body.extend_from_slice(&chunk[..n]);
                }
            }
            None => Ok(Vec::new()),
        }
    }

    /// Reads one request. Returns `Ok(None)` on clean EOF before the
    /// request line (the peer closed an idle keep-alive connection).
    pub fn read_request(&mut self, limits: &FrameLimits) -> Result<Option<Request>> {
        let Some(start) = self.read_line(limits.max_header_bytes)? else {
            return Ok(None);
        };
        let mut parts = start.split(' ');
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let target = parts
            .next()
            .ok_or_else(|| NetError::Protocol(format!("malformed request line {start:?}")))?;
        let version = parts
            .next()
            .ok_or_else(|| NetError::Protocol(format!("malformed request line {start:?}")))?;
        if parts.next().is_some() {
            return Err(NetError::Protocol(format!("malformed request line {start:?}")));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(NetError::Protocol(format!("unsupported version {version:?}")));
        }
        if !target.starts_with('/') {
            return Err(NetError::Protocol(format!("unsupported request target {target:?}")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), QueryString::parse(q)?),
            None => (target.to_string(), QueryString::new()),
        };
        let headers = self.read_headers(limits)?;
        let body = self.read_body(&headers, limits, false)?;
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
        }))
    }

    /// Reads one response. `head_request` suppresses body reading for
    /// responses to HEAD.
    pub fn read_response(&mut self, limits: &FrameLimits, head_request: bool) -> Result<Response> {
        let start = self
            .read_line(limits.max_header_bytes)?
            .ok_or_else(|| NetError::UnexpectedEof("EOF before status line".into()))?;
        let mut parts = start.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(NetError::Protocol(format!("malformed status line {start:?}")));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| NetError::Protocol(format!("malformed status line {start:?}")))?;
        let headers = self.read_headers(limits)?;
        let body = if head_request || code == 204 || code == 304 || (100..200).contains(&code) {
            Vec::new()
        } else {
            self.read_body(&headers, limits, true)?
        };
        Ok(Response {
            status: StatusCode(code),
            headers,
            body,
        })
    }
}

/// Writes a request to a stream. Adds `Host`, `Content-Length` (when a body
/// is present), and `Connection` headers if missing.
pub fn write_request<W: Write>(stream: &mut W, req: &Request, host: &str) -> Result<()> {
    let mut head = format!("{} {} HTTP/1.1\r\n", req.method, req.target());
    let mut headers = req.headers.clone();
    if !headers.contains("host") {
        headers.set("host", host);
    }
    if !req.body.is_empty() || req.method == Method::Post || req.method == Method::Put {
        headers.set("content-length", req.body.len().to_string());
    }
    for (name, value) in headers.entries() {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    stream.flush()?;
    Ok(())
}

/// Writes a response. Bodies above [`CHUNK_THRESHOLD`] are sent with
/// chunked transfer encoding; smaller ones use `Content-Length`.
pub fn write_response<W: Write>(stream: &mut W, resp: &Response, keep_alive: bool) -> Result<()> {
    let mut headers = resp.headers.clone();
    headers.set(
        "connection",
        if keep_alive { "keep-alive" } else { "close" },
    );
    let chunked = resp.body.len() > CHUNK_THRESHOLD;
    if chunked {
        headers.remove("content-length");
        headers.set("transfer-encoding", "chunked");
    } else {
        headers.remove("transfer-encoding");
        headers.set("content-length", resp.body.len().to_string());
    }
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason());
    for (name, value) in headers.entries() {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if chunked {
        write_chunked(stream, &resp.body)?;
    } else {
        stream.write_all(&resp.body)?;
    }
    stream.flush()?;
    Ok(())
}

/// Encodes `body` as chunked transfer encoding onto `stream`.
pub fn write_chunked<W: Write>(stream: &mut W, body: &[u8]) -> Result<()> {
    for chunk in body.chunks(CHUNK_SIZE) {
        write!(stream, "{:x}\r\n", chunk.len())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    Ok(())
}

/// How many bytes of the input buffer a successful incremental parse used.
fn consumed_bytes<T: AsRef<[u8]>>(reader: &MessageReader<std::io::Cursor<T>>) -> usize {
    // The cursor position counts bytes pulled into the BufReader; whatever
    // is still sitting unconsumed in its buffer was not part of the parsed
    // message.
    reader.inner.get_ref().position() as usize - reader.inner.buffer().len()
}

/// Incrementally parses one request from a byte buffer that may hold a
/// partial message, a complete one, or several pipelined ones.
///
/// Returns `Ok(Some((request, consumed)))` when a complete request starts
/// at the front of `buf` — the caller drains `consumed` bytes and may call
/// again for the next pipelined message. Returns `Ok(None)` when the bytes
/// so far are a valid *prefix* (more must arrive before a verdict). Any
/// `Err` is terminal for the connection: the bytes can never become a valid
/// request no matter what follows.
///
/// This is the parsing half of a readiness-driven (non-blocking) server:
/// the event loop appends whatever `read` returned to a per-connection
/// buffer and asks this function whether a message is ready, instead of
/// parking a thread inside a blocking reader.
pub fn try_parse_request(buf: &[u8], limits: &FrameLimits) -> Result<Option<(Request, usize)>> {
    let mut reader = MessageReader::new(std::io::Cursor::new(buf));
    match reader.read_request(limits) {
        Ok(Some(req)) => {
            let consumed = consumed_bytes(&reader);
            Ok(Some((req, consumed)))
        }
        // Clean EOF before the request line: the buffer is empty.
        Ok(None) => Ok(None),
        // The buffer ends mid-message; with more bytes it may complete.
        Err(NetError::UnexpectedEof(_)) => Ok(None),
        Err(err) => Err(err),
    }
}

/// Incrementally parses one response from a byte buffer, the client-side
/// mirror of [`try_parse_request`]. Same contract: `Some((resp, consumed))`
/// for a complete message, `None` for a valid prefix, `Err` for bytes that
/// can never parse.
///
/// EOF-delimited bodies (`Connection: close` with no `Content-Length` or
/// chunked framing) are rejected: "read until close" is unknowable from a
/// buffer snapshot, and every server in this workspace frames its bodies
/// explicitly.
pub fn try_parse_response(buf: &[u8], limits: &FrameLimits) -> Result<Option<(Response, usize)>> {
    let mut reader = MessageReader::new(std::io::Cursor::new(buf));
    match reader.read_response(limits, false) {
        Ok(resp) => {
            let bodyless = resp.status.0 == 204
                || resp.status.0 == 304
                || (100..200).contains(&resp.status.0);
            if !bodyless
                && !resp.headers.is_chunked()
                && resp.headers.content_length()?.is_none()
                && resp.headers.wants_close()
            {
                // The blocking reader read "to EOF", but our EOF is just
                // the end of the buffer — the body may be truncated.
                return Err(NetError::Protocol(
                    "EOF-delimited body cannot be parsed incrementally".into(),
                ));
            }
            let consumed = consumed_bytes(&reader);
            Ok(Some((resp, consumed)))
        }
        Err(NetError::UnexpectedEof(_)) => Ok(None),
        Err(err) => Err(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(bytes: &[u8]) -> MessageReader<Cursor<Vec<u8>>> {
        MessageReader::new(Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_simple_get() {
        let raw = b"GET /youtube/v3/search?q=brexit&maxResults=50 HTTP/1.1\r\nHost: localhost\r\nX-Api-Key: k1\r\n\r\n";
        let req = reader(raw)
            .read_request(&FrameLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/youtube/v3/search");
        assert_eq!(req.query.get("q"), Some("brexit"));
        assert_eq!(req.headers.get("x-api-key"), Some("k1"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /admin/clock HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = reader(raw)
            .read_request(&FrameLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn clean_eof_returns_none() {
        assert!(reader(b"")
            .read_request(&FrameLimits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort";
        let err = reader(raw)
            .read_request(&FrameLimits::default())
            .unwrap_err();
        assert!(matches!(err, NetError::UnexpectedEof(_)), "{err:?}");
    }

    #[test]
    fn truncated_headers_are_unexpected_eof() {
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\n";
        let err = reader(raw)
            .read_request(&FrameLimits::default())
            .unwrap_err();
        assert!(matches!(err, NetError::UnexpectedEof(_)), "{err:?}");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / HTTP/2.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\n\r\n"[..],
            &b"get / HTTP/1.1\r\n\r\n"[..],
            &b"GET http://evil/ HTTP/1.1\r\n\r\n"[..],
        ] {
            assert!(
                reader(raw).read_request(&FrameLimits::default()).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_bad_headers() {
        let raw = b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n";
        assert!(reader(raw).read_request(&FrameLimits::default()).is_err());
        let raw2 = b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n";
        assert!(reader(raw2).read_request(&FrameLimits::default()).is_err());
    }

    #[test]
    fn enforces_header_limits() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = reader(&raw).read_request(&FrameLimits::default()).unwrap_err();
        assert!(matches!(err, NetError::LimitExceeded(_)));
    }

    #[test]
    fn enforces_body_limit() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let limits = FrameLimits {
            max_body_bytes: 1024,
            ..FrameLimits::default()
        };
        let err = reader(raw).read_request(&limits).unwrap_err();
        assert!(matches!(err, NetError::LimitExceeded(_)));
    }

    #[test]
    fn enforces_line_length_limit() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 100_000));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = reader(&raw).read_request(&FrameLimits::default()).unwrap_err();
        assert!(matches!(err, NetError::LimitExceeded(_)));
    }

    #[test]
    fn response_round_trip_content_length() {
        let resp = Response::json(StatusCode::OK, br#"{"items":[]}"#.to_vec());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let parsed = reader(&wire)
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body, resp.body);
        assert_eq!(parsed.headers.get("connection"), Some("keep-alive"));
    }

    #[test]
    fn response_round_trip_chunked() {
        // A body over CHUNK_THRESHOLD forces chunked encoding.
        let big = vec![b'x'; CHUNK_THRESHOLD + 12_345];
        let resp = Response::json(StatusCode::OK, big.clone());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, false).unwrap();
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(!text.contains("content-length"));
        let parsed = reader(&wire)
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(parsed.body, big);
    }

    #[test]
    fn chunked_decoder_handles_extensions_and_trailers() {
        let wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n6\r\n world\r\n0\r\nTrailer: v\r\n\r\n";
        let parsed = reader(wire)
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(parsed.body, b"hello world");
    }

    #[test]
    fn chunked_decoder_rejects_garbage_sizes() {
        let wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\nzz\r\nhello\r\n0\r\n\r\n";
        assert!(reader(wire)
            .read_response(&FrameLimits::default(), false)
            .is_err());
    }

    #[test]
    fn chunked_body_respects_limit() {
        let mut wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        write_chunked(&mut wire, &vec![b'y'; 4096]).unwrap();
        let limits = FrameLimits {
            max_body_bytes: 1024,
            ..FrameLimits::default()
        };
        let err = reader(&wire).read_response(&limits, false).unwrap_err();
        assert!(matches!(err, NetError::LimitExceeded(_)));
    }

    #[test]
    fn eof_delimited_response_body() {
        let wire = b"HTTP/1.1 200 OK\r\nconnection: close\r\n\r\nstreamed until close";
        let parsed = reader(wire)
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(parsed.body, b"streamed until close");
    }

    #[test]
    fn head_response_has_no_body() {
        let wire = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\n";
        let parsed = reader(wire)
            .read_response(&FrameLimits::default(), true)
            .unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn no_content_has_no_body() {
        let wire = b"HTTP/1.1 204 No Content\r\n\r\n";
        let parsed = reader(wire)
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(parsed.status, StatusCode::NO_CONTENT);
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn request_writer_adds_required_headers() {
        let req = Request::post("/admin/clock", b"{}".to_vec());
        let mut wire = Vec::new();
        write_request(&mut wire, &req, "localhost:9000").unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("POST /admin/clock HTTP/1.1\r\n"));
        assert!(text.contains("host: localhost:9000\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        // And it parses back.
        let parsed = reader(&wire)
            .read_request(&FrameLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(parsed.body, b"{}");
    }

    #[test]
    fn keep_alive_pipeline_of_requests() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::get("/a"), "h").unwrap();
        write_request(&mut wire, &Request::get("/b"), "h").unwrap();
        let mut rd = reader(&wire);
        let limits = FrameLimits::default();
        assert_eq!(rd.read_request(&limits).unwrap().unwrap().path, "/a");
        assert_eq!(rd.read_request(&limits).unwrap().unwrap().path, "/b");
        assert!(rd.read_request(&limits).unwrap().is_none());
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let raw = b"GET /x HTTP/1.1\nHost: h\n\n";
        let req = reader(raw)
            .read_request(&FrameLimits::default())
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(req.headers.get("host"), Some("h"));
    }

    #[test]
    fn incremental_request_needs_every_byte() {
        // Every strict prefix parses to None; the full buffer to Some
        // consuming exactly its length.
        let raw = b"POST /admin/clock HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        let limits = FrameLimits::default();
        for cut in 0..raw.len() {
            let verdict = try_parse_request(&raw[..cut], &limits).unwrap();
            assert!(verdict.is_none(), "prefix of {cut} bytes parsed early");
        }
        let (req, consumed) = try_parse_request(raw, &limits).unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incremental_request_consumes_one_pipelined_message() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::get("/a"), "h").unwrap();
        let first_len = wire.len();
        write_request(&mut wire, &Request::get("/b"), "h").unwrap();
        let limits = FrameLimits::default();
        let (req, consumed) = try_parse_request(&wire, &limits).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        assert_eq!(consumed, first_len);
        let (req2, consumed2) = try_parse_request(&wire[consumed..], &limits)
            .unwrap()
            .unwrap();
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn incremental_request_rejects_garbage_terminally() {
        let limits = FrameLimits::default();
        assert!(try_parse_request(b"GARBAGE\r\n\r\n", &limits).is_err());
        // A limit violation is terminal too, even though more bytes follow.
        let mut long = b"GET /".to_vec();
        long.extend(std::iter::repeat_n(b'a', 100_000));
        assert!(matches!(
            try_parse_request(&long, &limits),
            Err(NetError::LimitExceeded(_))
        ));
    }

    #[test]
    fn incremental_response_round_trips() {
        let resp = Response::json(StatusCode::OK, br#"{"items":[]}"#.to_vec());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let limits = FrameLimits::default();
        for cut in 0..wire.len() {
            assert!(try_parse_response(&wire[..cut], &limits).unwrap().is_none());
        }
        let (parsed, consumed) = try_parse_response(&wire, &limits).unwrap().unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body, resp.body);
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn incremental_response_handles_chunked() {
        let big = vec![b'x'; CHUNK_THRESHOLD + 999];
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::json(StatusCode::OK, big.clone()), true).unwrap();
        let limits = FrameLimits::default();
        // A truncated chunked body is still "need more".
        assert!(try_parse_response(&wire[..wire.len() - 3], &limits)
            .unwrap()
            .is_none());
        let (parsed, consumed) = try_parse_response(&wire, &limits).unwrap().unwrap();
        assert_eq!(parsed.body, big);
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn incremental_response_rejects_eof_delimited_bodies() {
        let wire = b"HTTP/1.1 200 OK\r\nconnection: close\r\n\r\npartial?";
        assert!(matches!(
            try_parse_response(wire, &FrameLimits::default()),
            Err(NetError::Protocol(_))
        ));
    }
}
