//! A closed-loop HTTP load driver for benchmarking the servers.
//!
//! Opens N keep-alive connections, keeps exactly one request in flight
//! per connection (classic closed-loop load: offered rate adapts to
//! service rate, so the measurement never builds an unbounded queue in
//! front of the server), and records every response's latency as a raw
//! sample. Percentiles are computed from the sorted raw samples — not a
//! histogram — because p999 on a fast loopback server lives well inside
//! the width of any practical bucket.
//!
//! The driver uses the same non-blocking sweep technique as
//! [`crate::evloop`] so thousands of driven connections fit on one
//! thread, and the same incremental parser
//! ([`crate::framing::try_parse_response`]) on the receive side.

use crate::framing::{try_parse_response, write_request, FrameLimits};
use crate::message::Request;
use crate::Result;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Driver knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections to hold open.
    pub connections: usize,
    /// How long to keep issuing requests. In-flight requests at the
    /// deadline are allowed to finish (bounded by a grace period).
    pub duration: Duration,
    /// Frame limits applied to responses.
    pub limits: FrameLimits,
    /// How long past the deadline to wait for stragglers before
    /// abandoning them.
    pub grace: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            connections: 64,
            duration: Duration::from_secs(5),
            limits: FrameLimits::default(),
            grace: Duration::from_secs(5),
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections the run held open.
    pub connections: usize,
    /// Responses fully received.
    pub requests: u64,
    /// Wall time from first byte offered to last response (or abandon).
    pub elapsed: Duration,
    /// Responses by HTTP status code.
    pub status_counts: BTreeMap<u16, u64>,
    /// Connections that died mid-request (reset, refused, or closed with
    /// a request outstanding).
    pub resets: u64,
    /// Requests still unanswered when the grace period expired.
    pub abandoned: u64,
    /// Sorted per-request latencies in microseconds.
    latencies_us: Vec<u64>,
}

impl LoadReport {
    /// Completed requests per second over the measured window.
    pub fn req_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// The `p`-quantile latency (`0.0 < p <= 1.0`) in microseconds from
    /// the raw samples; 0 when no requests completed.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((n as f64) * p.clamp(0.0, 1.0)).ceil() as usize;
        let idx = rank.saturating_sub(1).min(n - 1);
        self.latencies_us.get(idx).copied().unwrap_or(0)
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// 99.9th-percentile latency in microseconds.
    pub fn p999_us(&self) -> u64 {
        self.percentile_us(0.999)
    }

    /// Worst observed latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.latencies_us.last().copied().unwrap_or(0)
    }

    /// Responses with the given status code.
    pub fn count(&self, status: u16) -> u64 {
        self.status_counts.get(&status).copied().unwrap_or(0)
    }

    /// Total 5xx responses.
    pub fn count_5xx(&self) -> u64 {
        self.status_counts
            .iter()
            .filter(|(code, _)| (500..600).contains(*code))
            .map(|(_, n)| *n)
            .sum()
    }
}

/// One driven connection's state.
struct LoadConn {
    stream: TcpStream,
    /// Offset into the shared request bytes; `== wire.len()` when the
    /// request is fully written.
    out_pos: usize,
    inbuf: Vec<u8>,
    sent_at: Instant,
    in_flight: bool,
    done: bool,
}

fn connect(addr: &str) -> Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(true)?;
    Ok(stream)
}

/// Drives `request` at `addr` (e.g. `127.0.0.1:8080`) under `config` and
/// reports what happened. Every connection keeps one request in flight
/// until the duration elapses.
pub fn run(addr: &str, request: &Request, config: &LoadConfig) -> Result<LoadReport> {
    let mut wire = Vec::new();
    write_request(&mut wire, request, addr)?;

    let mut report = LoadReport {
        connections: config.connections,
        requests: 0,
        elapsed: Duration::ZERO,
        status_counts: BTreeMap::new(),
        resets: 0,
        abandoned: 0,
        latencies_us: Vec::new(),
    };

    // ytlint: allow(determinism) — a load benchmark measures real wall
    // time by definition; nothing downstream treats it as data
    let started = Instant::now();
    let mut conns = Vec::with_capacity(config.connections);
    for _ in 0..config.connections.max(1) {
        let stream = connect(addr)?;
        conns.push(LoadConn {
            stream,
            out_pos: 0,
            inbuf: Vec::new(),
            sent_at: started,
            in_flight: true, // first request starts written-from-zero
            done: false,
        });
    }
    let deadline = started + config.duration;
    let cutoff = deadline + config.grace;

    let mut scratch = vec![0u8; 16 * 1024];
    loop {
        // ytlint: allow(determinism) — benchmark stopwatch
        let now = Instant::now();
        if now >= cutoff {
            report.abandoned += conns.iter().filter(|c| !c.done && c.in_flight).count() as u64;
            break;
        }
        let mut all_done = true;
        let mut progress = false;
        for conn in conns.iter_mut() {
            if conn.done {
                continue;
            }
            all_done = false;
            match sweep(
                conn,
                &wire,
                config,
                now,
                deadline,
                &mut report,
                &mut scratch,
            ) {
                SweepOutcome::Progress => progress = true,
                SweepOutcome::Idle => {}
                SweepOutcome::Died => {
                    report.resets += 1;
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    if now < deadline {
                        // Replace the connection and keep offering load.
                        match connect(addr) {
                            Ok(stream) => {
                                conn.stream = stream;
                                conn.inbuf.clear();
                                conn.out_pos = 0;
                                conn.sent_at = now;
                                conn.in_flight = true;
                                progress = true;
                            }
                            Err(_) => conn.done = true,
                        }
                    } else {
                        conn.done = true;
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if !progress {
            // Give the server thread the core instead of spinning.
            std::thread::yield_now();
        }
    }
    report.elapsed = started.elapsed();
    report.latencies_us.sort_unstable();
    Ok(report)
}

enum SweepOutcome {
    Progress,
    Idle,
    Died,
}

fn sweep(
    conn: &mut LoadConn,
    wire: &[u8],
    config: &LoadConfig,
    now: Instant,
    deadline: Instant,
    report: &mut LoadReport,
    scratch: &mut [u8],
) -> SweepOutcome {
    let mut progress = false;

    // Write phase: push the in-flight request's remaining bytes.
    while conn.in_flight && conn.out_pos < wire.len() {
        let pending = wire.get(conn.out_pos..).unwrap_or(&[]);
        match conn.stream.write(pending) {
            Ok(0) => return SweepOutcome::Died,
            Ok(n) => {
                conn.out_pos += n;
                progress = true;
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return SweepOutcome::Died,
        }
    }

    // Read phase.
    let mut peer_closed = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                peer_closed = true;
                break;
            }
            Ok(n) => {
                progress = true;
                if let Some(bytes) = scratch.get(..n) {
                    conn.inbuf.extend_from_slice(bytes);
                }
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return SweepOutcome::Died,
        }
    }

    // Parse phase: at depth 1 there is at most one response to find.
    if conn.in_flight && conn.out_pos >= wire.len() {
        match try_parse_response(&conn.inbuf, &config.limits) {
            Ok(Some((resp, consumed))) => {
                conn.inbuf.drain(..consumed);
                progress = true;
                let latency = now.duration_since(conn.sent_at).as_micros() as u64;
                report.latencies_us.push(latency);
                report.requests += 1;
                *report.status_counts.entry(resp.status.0).or_insert(0) += 1;
                conn.in_flight = false;
                if resp.headers.wants_close() {
                    // Server asked to close; treat as end of this
                    // connection's run (clean, not a reset).
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    conn.done = true;
                    return SweepOutcome::Progress;
                }
                if now < deadline {
                    conn.out_pos = 0;
                    conn.sent_at = now;
                    conn.in_flight = true;
                } else {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    conn.done = true;
                }
            }
            Ok(None) => {}
            Err(_) => return SweepOutcome::Died,
        }
    }

    if peer_closed {
        if conn.in_flight {
            return SweepOutcome::Died;
        }
        conn.done = true;
        return SweepOutcome::Progress;
    }
    if progress {
        SweepOutcome::Progress
    } else {
        SweepOutcome::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Response, StatusCode};
    use crate::server::{Server, ServerConfig};
    use std::sync::Arc;

    #[test]
    fn percentiles_come_from_raw_samples() {
        let report = LoadReport {
            connections: 1,
            requests: 1000,
            elapsed: Duration::from_secs(2),
            status_counts: BTreeMap::from([(200, 1000)]),
            resets: 0,
            abandoned: 0,
            latencies_us: (1..=1000).collect(),
        };
        assert_eq!(report.p50_us(), 500);
        assert_eq!(report.p99_us(), 990);
        assert_eq!(report.p999_us(), 999);
        assert_eq!(report.max_us(), 1000);
        assert_eq!(report.req_per_sec(), 500.0);
        assert_eq!(report.count(200), 1000);
        assert_eq!(report.count_5xx(), 0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = LoadReport {
            connections: 0,
            requests: 0,
            elapsed: Duration::ZERO,
            status_counts: BTreeMap::new(),
            resets: 0,
            abandoned: 0,
            latencies_us: Vec::new(),
        };
        assert_eq!(report.p999_us(), 0);
        assert_eq!(report.req_per_sec(), 0.0);
    }

    #[test]
    fn drives_a_live_server_closed_loop() {
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "ok"));
        let handle = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let config = LoadConfig {
            connections: 4,
            duration: Duration::from_millis(300),
            ..LoadConfig::default()
        };
        let report = run(
            &handle.local_addr().to_string(),
            &Request::get("/bench"),
            &config,
        )
        .unwrap();
        assert!(report.requests > 0, "no requests completed");
        assert_eq!(report.count(200), report.requests);
        assert_eq!(report.resets, 0);
        assert_eq!(report.count_5xx(), 0);
        assert!(report.p50_us() > 0);
        assert!(report.p999_us() >= report.p50_us());
        handle.shutdown();
    }
}
