//! Percent-encoding, query strings, and a small URL type.
//!
//! The Data API is driven almost entirely through query parameters
//! (`q=fifa+world+cup&publishedAfter=2014-05-29T00:00:00Z&…`), so correct,
//! round-trippable query-string handling is load-bearing for the audit: a
//! mis-encoded timestamp silently changes the collection window.

use crate::{NetError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Bytes that never need escaping in a query component (RFC 3986
/// "unreserved" characters).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encodes `raw` for use as a query key or value. Space becomes
/// `+` (HTML form convention, which the real API accepts and emits in
/// examples); every other non-unreserved byte becomes `%XX`.
pub fn encode_component(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for &b in raw.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else if b == b' ' {
            out.push('+');
        } else {
            const HEX: &[u8; 16] = b"0123456789ABCDEF";
            out.push('%');
            // Nibbles are 0–15, so the masked lookups cannot miss.
            out.push(char::from(HEX[usize::from(b >> 4) & 0xF]));
            out.push(char::from(HEX[usize::from(b & 0xF)]));
        }
    }
    out
}

/// Decodes a percent-encoded query component. `+` decodes to space.
/// Rejects truncated or non-hex escapes and invalid UTF-8.
pub fn decode_component(encoded: &str) -> Result<String> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut idx = 0;
    while idx < bytes.len() {
        match bytes[idx] {
            b'%' => {
                let hi = bytes
                    .get(idx + 1)
                    .and_then(|b| (*b as char).to_digit(16))
                    .ok_or_else(|| NetError::Protocol(format!("bad percent escape in {encoded:?}")))?;
                let lo = bytes
                    .get(idx + 2)
                    .and_then(|b| (*b as char).to_digit(16))
                    .ok_or_else(|| NetError::Protocol(format!("bad percent escape in {encoded:?}")))?;
                out.push(((hi << 4) | lo) as u8);
                idx += 3;
            }
            b'+' => {
                out.push(b' ');
                idx += 1;
            }
            b => {
                out.push(b);
                idx += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| NetError::Protocol(format!("percent-decoded bytes are not UTF-8: {encoded:?}")))
}

/// An ordered multimap of query parameters.
///
/// Keys keep insertion order on encode (so request lines are stable for
/// caching and logging) and support repeated keys (`id=a&id=b`), which the
/// Data API uses for batched ID lookups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryString {
    pairs: Vec<(String, String)>,
}

impl QueryString {
    /// An empty query string.
    pub fn new() -> QueryString {
        QueryString::default()
    }

    /// Parses the text after `?` (not including it). Empty input yields an
    /// empty query. Pairs without `=` parse as empty-valued keys.
    pub fn parse(raw: &str) -> Result<QueryString> {
        let mut pairs = Vec::new();
        if raw.is_empty() {
            return Ok(QueryString { pairs });
        }
        for piece in raw.split('&') {
            if piece.is_empty() {
                continue;
            }
            let (k, v) = match piece.split_once('=') {
                Some((k, v)) => (decode_component(k)?, decode_component(v)?),
                None => (decode_component(piece)?, String::new()),
            };
            pairs.push((k, v));
        }
        Ok(QueryString { pairs })
    }

    /// Appends a key/value pair (keeps duplicates).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.pairs.push((key.into(), value.into()));
        self
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.push(key, value);
        self
    }

    /// First value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `key`, in order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether `key` appears at least once.
    pub fn contains(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    /// All pairs in insertion order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Encodes back to `k=v&k2=v2` form in insertion order.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (idx, (k, v)) in self.pairs.iter().enumerate() {
            if idx > 0 {
                out.push('&');
            }
            out.push_str(&encode_component(k));
            out.push('=');
            out.push_str(&encode_component(v));
        }
        out
    }

    /// A canonical, order-insensitive rendering (keys sorted, repeated keys
    /// kept in value order) — used as a cache key by the client.
    pub fn canonical(&self) -> String {
        let mut grouped: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (k, v) in &self.pairs {
            grouped.entry(k).or_default().push(v);
        }
        let mut out = String::new();
        for (k, vs) in grouped {
            for v in vs {
                if !out.is_empty() {
                    out.push('&');
                }
                out.push_str(&encode_component(k));
                out.push('=');
                out.push_str(&encode_component(v));
            }
        }
        out
    }
}

impl fmt::Display for QueryString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for QueryString {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        QueryString {
            pairs: iter
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }
}

/// A parsed `http://host:port/path?query` URL.
///
/// Only the `http` scheme is supported: the simulated API serves loopback
/// plaintext. (`https` parses but is refused at connect time by the
/// client, with a clear error, so realistic Data API URLs still parse.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Host name or IP literal.
    pub host: String,
    /// Port; defaults to 80/443 by scheme when absent.
    pub port: u16,
    /// Absolute path, always starting with `/`.
    pub path: String,
    /// Parsed query parameters.
    pub query: QueryString,
}

impl Url {
    /// Parses an absolute URL.
    pub fn parse(raw: &str) -> Result<Url> {
        let bad = |msg: &str| NetError::Protocol(format!("{msg}: {raw:?}"));
        let (scheme, rest) = raw
            .split_once("://")
            .ok_or_else(|| bad("URL missing scheme"))?;
        if scheme != "http" && scheme != "https" {
            return Err(bad("unsupported scheme"));
        }
        let (authority, path_query) = match rest.find('/') {
            Some(pos) => (&rest[..pos], &rest[pos..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(bad("URL missing host"));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => (
                h.to_string(),
                p.parse::<u16>().map_err(|_| bad("port out of range"))?,
            ),
            _ => (
                authority.to_string(),
                if scheme == "https" { 443 } else { 80 },
            ),
        };
        if host.is_empty() {
            return Err(bad("URL missing host"));
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), QueryString::parse(q)?),
            None => (path_query.to_string(), QueryString::new()),
        };
        Ok(Url {
            scheme: scheme.to_string(),
            host,
            port,
            path,
            query,
        })
    }

    /// The path plus encoded query — what goes on the HTTP request line.
    pub fn path_and_query(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query.encode())
        }
    }

    /// `host:port` for the `Host` header and connection pooling key.
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.authority(), self.path_and_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_reserved_characters() {
        assert_eq!(encode_component("fifa world cup"), "fifa+world+cup");
        assert_eq!(encode_component("a&b=c"), "a%26b%3Dc");
        assert_eq!(encode_component("2014-05-29T00:00:00Z"), "2014-05-29T00%3A00%3A00Z");
        assert_eq!(encode_component("safe-_.~"), "safe-_.~");
        assert_eq!(encode_component("naïve"), "na%C3%AFve");
    }

    #[test]
    fn decode_inverts_encode() {
        for raw in [
            "fifa world cup",
            "a&b=c",
            "2014-05-29T00:00:00Z",
            "ünï©ødé ~ text",
            "",
            "100% legit",
        ] {
            assert_eq!(decode_component(&encode_component(raw)).unwrap(), raw);
        }
    }

    #[test]
    fn decode_rejects_bad_escapes() {
        assert!(decode_component("%").is_err());
        assert!(decode_component("%2").is_err());
        assert!(decode_component("%GZ").is_err());
        assert!(decode_component("%FF%FE").is_err()); // not UTF-8
    }

    #[test]
    fn query_string_round_trip() {
        let qs = QueryString::new()
            .with("part", "snippet")
            .with("q", "higgs boson")
            .with("maxResults", "50")
            .with("publishedAfter", "2012-06-20T00:00:00Z");
        let encoded = qs.encode();
        assert_eq!(
            encoded,
            "part=snippet&q=higgs+boson&maxResults=50&publishedAfter=2012-06-20T00%3A00%3A00Z"
        );
        assert_eq!(QueryString::parse(&encoded).unwrap(), qs);
    }

    #[test]
    fn query_string_multi_values() {
        let qs = QueryString::parse("id=a&id=b&id=c").unwrap();
        assert_eq!(qs.get("id"), Some("a"));
        assert_eq!(qs.get_all("id"), vec!["a", "b", "c"]);
        assert_eq!(qs.len(), 3);
        assert!(qs.contains("id"));
        assert!(!qs.contains("q"));
    }

    #[test]
    fn query_string_edge_cases() {
        assert!(QueryString::parse("").unwrap().is_empty());
        let qs = QueryString::parse("flag&k=v&&=empty").unwrap();
        assert_eq!(qs.get("flag"), Some(""));
        assert_eq!(qs.get("k"), Some("v"));
        assert_eq!(qs.get(""), Some("empty"));
    }

    #[test]
    fn canonical_sorts_keys() {
        let a = QueryString::parse("b=2&a=1&c=3").unwrap();
        let b = QueryString::parse("c=3&a=1&b=2").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a.encode(), b.encode());
        // Repeated keys keep value order.
        let multi = QueryString::parse("id=z&a=1&id=y").unwrap();
        assert_eq!(multi.canonical(), "a=1&id=z&id=y");
    }

    #[test]
    fn url_parse_full() {
        let url = Url::parse("http://127.0.0.1:8080/youtube/v3/search?part=snippet&q=brexit").unwrap();
        assert_eq!(url.scheme, "http");
        assert_eq!(url.host, "127.0.0.1");
        assert_eq!(url.port, 8080);
        assert_eq!(url.path, "/youtube/v3/search");
        assert_eq!(url.query.get("q"), Some("brexit"));
        assert_eq!(url.authority(), "127.0.0.1:8080");
        assert_eq!(
            url.to_string(),
            "http://127.0.0.1:8080/youtube/v3/search?part=snippet&q=brexit"
        );
    }

    #[test]
    fn url_defaults() {
        let url = Url::parse("http://example.com").unwrap();
        assert_eq!(url.port, 80);
        assert_eq!(url.path, "/");
        assert!(url.query.is_empty());
        assert_eq!(url.path_and_query(), "/");
        let tls = Url::parse("https://www.googleapis.com/youtube/v3/videos?id=abc").unwrap();
        assert_eq!(tls.port, 443);
    }

    #[test]
    fn url_rejects_malformed() {
        for raw in [
            "",
            "youtube/v3/search",
            "ftp://example.com/",
            "http://",
            "http://:8080/",
            "http://host:99999/",
        ] {
            assert!(Url::parse(raw).is_err(), "should reject {raw:?}");
        }
    }

    #[test]
    fn url_ipv6ish_host_without_port() {
        // rsplit_once(':') must not mangle hosts whose last segment is not
        // a valid port.
        let url = Url::parse("http://host:notaport/").unwrap_or_else(|_| {
            // Accepting a parse error is also fine; what we must not do is
            // silently produce a wrong port. The current grammar treats the
            // whole authority as a host name.
            Url::parse("http://fallback/").unwrap()
        });
        assert!(url.port == 80);
    }
}
