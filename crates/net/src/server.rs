//! A blocking, thread-pool HTTP/1.1 server with keep-alive and graceful
//! shutdown.
//!
//! The accept loop hands each connection to a fixed pool of worker threads
//! over a crossbeam channel. Shutdown is cooperative: the handle flips a
//! flag, wakes the acceptor with a loopback connection, the channel is
//! closed, and workers finish the request they are on before exiting —
//! in-flight audit queries complete rather than tearing mid-response.

use crate::framing::{write_response, FrameLimits, MessageReader};
use crate::message::{Request, Response, StatusCode};
use crate::{NetError, Result};
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request handler. Implemented for any `Fn(&Request) -> Response`.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Per-read socket timeout; a stalled peer cannot pin a worker forever.
    pub read_timeout: Duration,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it. Without this, a client that connects
    /// and goes silent pins a worker for the full `read_timeout` — per
    /// connection, forever under reconnects.
    pub idle_timeout: Duration,
    /// Maximum requests served on one keep-alive connection.
    pub max_requests_per_connection: usize,
    /// Frame limits applied to incoming requests.
    pub limits: FrameLimits,
    /// Backlog of accepted-but-unserved connections before accept blocks.
    pub queue_depth: usize,
    /// Maximum live connections; arrivals past the cap are answered with
    /// `429 Too Many Requests` + `Retry-After` and closed (load shedding)
    /// instead of queueing unboundedly behind busy workers.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 10_000,
            limits: FrameLimits::default(),
            queue_depth: 128,
            max_connections: 8192,
        }
    }
}

/// Cumulative server counters, readable while the server runs. Shared
/// shape between the blocking server and the event-loop server
/// (`crate::evloop`) so the two report identically.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests fully served (including error responses).
    pub requests: AtomicU64,
    /// Responses with 5xx status caused by handler panics.
    pub handler_panics: AtomicU64,
    /// Connections dropped due to protocol errors.
    pub protocol_errors: AtomicU64,
    /// Connections shed at the accept gate with a 429 because the server
    /// was at `max_connections`.
    pub shed: AtomicU64,
    /// High-water mark of concurrent live connections.
    pub peak_connections: AtomicU64,
}

/// The running server. Construct with [`Server::bind`]; stop with
/// [`ServerHandle::shutdown`].
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections, dispatching to `handler`.
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(ServerStats::default());
        let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let next_conn_id = Arc::new(AtomicU64::new(0));
        // Live connections: accepted (possibly still queued) but not yet
        // finished. The acceptor sheds past `max_connections` based on
        // this, so a burst cannot pile up unboundedly behind busy workers.
        let active = Arc::new(AtomicU64::new(0));
        let (conn_tx, conn_rx) = bounded::<TcpStream>(config.queue_depth);

        let mut workers = Vec::with_capacity(config.workers);
        for worker_id in 0..config.workers.max(1) {
            let rx = conn_rx.clone();
            let handler = Arc::clone(&handler);
            let config = config.clone();
            let running = Arc::clone(&running);
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let next_conn_id = Arc::clone(&next_conn_id);
            let active = Arc::clone(&active);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ytaudit-net-worker-{worker_id}"))
                    .spawn(move || {
                        while let Ok(stream) = rx.recv() {
                            // Register a clone so shutdown can close sockets
                            // idling in a blocking read.
                            let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
                            if let Ok(clone) = stream.try_clone() {
                                registry.lock().insert(conn_id, clone);
                            }
                            serve_connection(stream, &*handler, &config, &running, &stats);
                            registry.lock().remove(&conn_id);
                            active.fetch_sub(1, Ordering::Relaxed);
                        }
                    })
                    .map_err(|e| NetError::Io(e.to_string()))?,
            );
        }
        drop(conn_rx);

        let acceptor = {
            let running = Arc::clone(&running);
            let stats = Arc::clone(&stats);
            let active = Arc::clone(&active);
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("ytaudit-net-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if !running.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                if active.load(Ordering::Relaxed) >= max_connections as u64 {
                                    stats.shed.fetch_add(1, Ordering::Relaxed);
                                    shed_at_accept(stream);
                                    continue;
                                }
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                let live = active.fetch_add(1, Ordering::Relaxed) + 1;
                                if stats.peak_connections.load(Ordering::Relaxed) < live {
                                    stats.peak_connections.store(live, Ordering::Relaxed);
                                }
                                if conn_tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                    // Dropping conn_tx closes the channel; workers drain
                    // queued connections and exit.
                })
                .map_err(|e| NetError::Io(e.to_string()))?
        };

        Ok(ServerHandle {
            local_addr,
            running,
            stats,
            registry,
            acceptor: Mutex::new(Some(acceptor)),
            workers: Mutex::new(workers),
        })
    }
}

/// Handle to a running server: address, stats, and shutdown control.
pub struct ServerHandle {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    registry: Arc<Mutex<HashMap<u64, TcpStream>>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's base URL, e.g. `http://127.0.0.1:41234`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.local_addr)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, drains in-flight requests, joins all threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Close connections idling in blocking reads so workers exit
        // immediately instead of waiting out the read timeout. Workers
        // finishing an in-flight request are unaffected: their write half
        // still flushes before the socket teardown is observed.
        for (_, stream) in self.registry.lock().iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        if let Some(acceptor) = self.acceptor.lock().take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.lock().drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection until close, error, limit, or shutdown.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    config: &ServerConfig,
    running: &AtomicBool,
    stats: &ServerStats,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = MessageReader::new(stream);
    for served in 0..config.max_requests_per_connection {
        if !running.load(Ordering::SeqCst) && served > 0 && !reader.has_buffered_input() {
            // Graceful shutdown: requests already pipelined onto this
            // connection (bytes sitting in the read buffer) are served
            // before closing; anything not yet received is abandoned.
            break;
        }
        if !await_request_start(&reader, writer.get_ref(), config) {
            break; // idle timeout, clean close, or socket error
        }
        let request = match reader.read_request(&config.limits) {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean close
            Err(NetError::LimitExceeded(msg)) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::text(StatusCode::PAYLOAD_TOO_LARGE, msg);
                let _ = write_response(&mut writer, &resp, false);
                break;
            }
            Err(NetError::Protocol(msg)) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::text(StatusCode::BAD_REQUEST, msg);
                let _ = write_response(&mut writer, &resp, false);
                break;
            }
            Err(_) => break, // timeout or abrupt close
        };
        let client_wants_close = request.headers.wants_close();
        let response = match catch_unwind(AssertUnwindSafe(|| handler.handle(&request))) {
            Ok(resp) => resp,
            Err(_) => {
                stats.handler_panics.fetch_add(1, Ordering::Relaxed);
                Response::text(StatusCode::INTERNAL_SERVER_ERROR, "handler panicked")
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = !client_wants_close
            && !response.headers.wants_close()
            && (running.load(Ordering::SeqCst) || reader.has_buffered_input())
            && served + 1 < config.max_requests_per_connection;
        if write_response(&mut writer, &response, keep_alive).is_err() {
            break;
        }
        if !keep_alive {
            break;
        }
    }
    linger_close(writer.get_ref());
}

/// Answers a connection shed at the accept gate: `429 Too Many Requests`
/// with `Retry-After`, then close. Shared by the blocking server and the
/// event loop so both shed identically. The socket is fresh (nothing
/// buffered), so a short blocking write almost always completes in one
/// syscall into the empty send buffer.
pub(crate) fn shed_at_accept(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = Response::text(
        StatusCode::TOO_MANY_REQUESTS,
        "server at connection capacity",
    )
    .with_header("retry-after", "1");
    let mut wire = Vec::new();
    let _ = write_response(&mut wire, &resp, false);
    let _ = stream.write_all(&wire);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Closes a connection gracefully: announce EOF with a write-side
/// shutdown, then drain whatever the peer already sent. Dropping a
/// socket with unread bytes (requests a client pipelined behind the one
/// being answered) makes the kernel send a TCP RST, which can destroy
/// responses still in the peer's receive path — the drain keeps the
/// close orderly so every response written actually arrives.
fn linger_close(socket: &TcpStream) {
    let _ = socket.shutdown(Shutdown::Write);
    if socket
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let mut sink = [0u8; 4096];
    let mut read_half: &TcpStream = socket;
    // Bounded drain: a peer streaming data forever must not pin the
    // worker; 64 reads of goodwill is plenty for pipelined stragglers.
    for _ in 0..64 {
        match read_half.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Waits up to `idle_timeout` for the next request's first byte. Uses a
/// one-byte `peek` (which never consumes framing bytes) under a shortened
/// socket read timeout, restoring `read_timeout` before the actual read —
/// so a silent kept-alive peer costs a worker at most `idle_timeout`,
/// while a slow-but-active peer still gets the full `read_timeout` per
/// read. Returns `false` when the peer closed, errored, or stayed silent
/// past the idle window.
fn await_request_start(
    reader: &MessageReader<TcpStream>,
    socket: &TcpStream,
    config: &ServerConfig,
) -> bool {
    if reader.has_buffered_input() {
        return true; // a pipelined request is already waiting
    }
    // A zero read timeout means "block forever" to the OS; clamp away.
    let idle = config.idle_timeout.max(Duration::from_millis(1));
    if socket.set_read_timeout(Some(idle)).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let ready = matches!(socket.peek(&mut probe), Ok(n) if n > 0);
    let _ = socket.set_read_timeout(Some(config.read_timeout));
    ready
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::write_request;
    use crate::message::Method;
    use std::io::Write;

    fn echo_server() -> ServerHandle {
        let handler = Arc::new(|req: &Request| {
            Response::text(
                StatusCode::OK,
                format!("{} {} q={}", req.method, req.path, req.query.encode()),
            )
        });
        Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap()
    }

    fn raw_round_trip(handle: &ServerHandle, request: &Request) -> Response {
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        write_request(&mut stream, request, &handle.local_addr().to_string()).unwrap();
        let mut reader = MessageReader::new(stream);
        reader
            .read_response(&FrameLimits::default(), request.method == Method::Head)
            .unwrap()
    }

    #[test]
    fn serves_get_requests() {
        let handle = echo_server();
        let resp = raw_round_trip(
            &handle,
            &Request::get("/search").with_query(crate::url::QueryString::new().with("q", "x")),
        );
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text().unwrap(), "GET /search q=q=x");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let handle = echo_server();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut write = stream.try_clone().unwrap();
        let mut reader = MessageReader::new(stream);
        for path in ["/a", "/b", "/c"] {
            write_request(&mut write, &Request::get(path), "h").unwrap();
            let resp = reader.read_response(&FrameLimits::default(), false).unwrap();
            assert!(resp.body_text().unwrap().contains(path));
            assert_eq!(resp.headers.get("connection"), Some("keep-alive"));
        }
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 3);
        assert_eq!(handle.stats().connections.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn respects_connection_close() {
        let handle = echo_server();
        let resp = raw_round_trip(&handle, &Request::get("/x").with_header("connection", "close"));
        assert_eq!(resp.headers.get("connection"), Some("close"));
        handle.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let handle = echo_server();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(b"NONSENSE REQUEST LINE\r\n\r\n").unwrap();
        let mut reader = MessageReader::new(stream);
        let resp = reader.read_response(&FrameLimits::default(), false).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        assert_eq!(handle.stats().protocol_errors.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn oversized_request_gets_413() {
        let handle = echo_server();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        stream.write_all(&raw).unwrap();
        let mut reader = MessageReader::new(stream);
        let resp = reader.read_response(&FrameLimits::default(), false).unwrap();
        assert_eq!(resp.status, StatusCode::PAYLOAD_TOO_LARGE);
        handle.shutdown();
    }

    #[test]
    fn handler_panic_returns_500_and_server_survives() {
        let handler = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("induced failure");
            }
            Response::text(StatusCode::OK, "fine")
        });
        let handle = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let boom = raw_round_trip(&handle, &Request::get("/boom"));
        assert_eq!(boom.status, StatusCode::INTERNAL_SERVER_ERROR);
        let ok = raw_round_trip(&handle, &Request::get("/fine"));
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(handle.stats().handler_panics.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let handle = Arc::new(echo_server());
        let mut joins = Vec::new();
        for i in 0..8 {
            let handle = Arc::clone(&handle);
            joins.push(std::thread::spawn(move || {
                for j in 0..5 {
                    let resp = raw_round_trip(&handle, &Request::get(format!("/c{i}/{j}")));
                    assert_eq!(resp.status, StatusCode::OK);
                }
            }));
        }
        for join in joins {
            join.join().unwrap();
        }
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 40);
        handle.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let handle = echo_server();
        handle.shutdown();
        handle.shutdown();
        // After shutdown new connections are refused or reset quickly; we
        // only assert the call returns (threads joined, no deadlock).
    }

    #[test]
    fn idle_keep_alive_connection_is_closed_promptly() {
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "ok"));
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", handler, config).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut write = stream.try_clone().unwrap();
        let mut reader = MessageReader::new(stream);
        write_request(&mut write, &Request::get("/x"), "h").unwrap();
        let resp = reader.read_response(&FrameLimits::default(), false).unwrap();
        assert_eq!(resp.headers.get("connection"), Some("keep-alive"));
        // Now go silent. The server should close the connection after the
        // idle timeout — far sooner than the 30 s read timeout.
        let started = std::time::Instant::now();
        let err = reader.read_response(&FrameLimits::default(), false);
        assert!(err.is_err(), "expected EOF, got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "idle close took {:?}",
            started.elapsed()
        );
        handle.shutdown();
    }

    #[test]
    fn idle_timeout_applies_to_silent_first_request_too() {
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "ok"));
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", handler, config).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let started = std::time::Instant::now();
        let mut reader = MessageReader::new(stream);
        // Never send anything; the server should hang up on us.
        assert!(reader.read_response(&FrameLimits::default(), false).is_err());
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "silent-connect close took {:?}",
            started.elapsed()
        );
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_requests_already_pipelined() {
        use std::sync::mpsc;
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let handler = Arc::new(move |req: &Request| {
            if req.path == "/gate" {
                entered_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
            }
            Response::text(StatusCode::OK, format!("served {}", req.path))
        });
        let handle = Arc::new(Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap());
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut write = stream.try_clone().unwrap();
        // One write syscall carrying three pipelined requests: the server's
        // first buffer fill pulls all of them into userspace.
        let mut burst = Vec::new();
        for path in ["/gate", "/b", "/c"] {
            write_request(&mut burst, &Request::get(path), "h").unwrap();
        }
        write.write_all(&burst).unwrap();
        // Wait until the server is parked inside the handler (requests /b
        // and /c now sit in its read buffer), then start a graceful
        // shutdown from another thread.
        entered_rx.recv().unwrap();
        let shutdown_handle = Arc::clone(&handle);
        let shutdown = std::thread::spawn(move || shutdown_handle.shutdown());
        std::thread::sleep(Duration::from_millis(100));
        release_tx.send(()).unwrap();
        // All three pipelined requests are answered; the last one closes.
        let mut reader = MessageReader::new(stream);
        for (i, path) in ["/gate", "/b", "/c"].iter().enumerate() {
            let resp = reader.read_response(&FrameLimits::default(), false).unwrap();
            assert_eq!(resp.status, StatusCode::OK, "response {i}");
            assert_eq!(resp.body_text().unwrap(), format!("served {path}"));
        }
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 3);
        shutdown.join().unwrap();
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_429() {
        let handler = Arc::new(|_: &Request| Response::text(StatusCode::OK, "ok"));
        let config = ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", handler, config).unwrap();
        // Pin the one slot with a kept-alive connection (the round trip
        // guarantees the acceptor has counted it).
        let pinned = TcpStream::connect(handle.local_addr()).unwrap();
        let mut pinned_write = pinned.try_clone().unwrap();
        write_request(&mut pinned_write, &Request::get("/hold"), "h").unwrap();
        let mut pinned_reader = MessageReader::new(pinned);
        let held = pinned_reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(held.status, StatusCode::OK);
        // The next connection is over capacity: explicit 429 + Retry-After.
        let over = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = MessageReader::new(over);
        let resp = reader.read_response(&FrameLimits::default(), false).unwrap();
        assert_eq!(resp.status, StatusCode::TOO_MANY_REQUESTS);
        assert_eq!(resp.headers.get("retry-after"), Some("1"));
        assert_eq!(handle.stats().shed.load(Ordering::Relaxed), 1);
        assert_eq!(handle.stats().peak_connections.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn large_response_is_chunked_over_the_wire() {
        let body = vec![b'z'; 200_000];
        let expected = body.clone();
        let handler = Arc::new(move |_: &Request| Response::json(StatusCode::OK, body.clone()));
        let handle = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let resp = raw_round_trip(&handle, &Request::get("/big"));
        assert_eq!(resp.body, expected);
        handle.shutdown();
    }
}
