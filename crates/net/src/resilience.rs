//! Client-side resilience: exponential backoff, retry policies, and a token
//! bucket rate limiter.
//!
//! The real Data API meters clients two ways — a hard daily quota and a
//! transient-error budget — so a research collector needs (a) retries that
//! only re-issue retryable failures, with jittered exponential backoff, and
//! (b) proactive request pacing. Both are implemented here as small pure
//! cores (testable without clocks) plus thin wrappers whose notion of
//! elapsed time comes from an injected
//! [`MonotonicClock`](ytaudit_platform::clock::MonotonicClock) —
//! [`RealClock`](ytaudit_platform::clock::RealClock) in production,
//! [`ManualClock`](ytaudit_platform::clock::ManualClock) in tests, so
//! deadline behaviour is exercised without real sleeps.

use std::sync::Arc;
use std::time::Duration;
use ytaudit_platform::clock::{MonotonicClock, RealClock};

/// Deterministic exponential backoff with multiplicative jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per attempt (≥ 1.0).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a value drawn
    /// from `[1 − jitter, 1]` using a per-attempt hash of `seed`.
    pub jitter: f64,
    /// Seed for deterministic jitter (useful in tests; any value works).
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base: Duration::from_millis(100),
            factor: 2.0,
            max: Duration::from_secs(30),
            jitter: 0.25,
            seed: 0x5EED,
        }
    }
}

impl Backoff {
    /// The delay to sleep before retry number `attempt` (0-based: the delay
    /// after the first failure is `delay(0)`).
    pub fn delay(&self, attempt: u32) -> Duration {
        let unjittered = self.base.as_secs_f64() * self.factor.powi(attempt as i32);
        let capped = unjittered.min(self.max.as_secs_f64());
        let jitter_scale = if self.jitter > 0.0 {
            // splitmix-style hash of (seed, attempt) → [0, 1).
            let mut x = self.seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let unit = ((x >> 11) as f64) / ((1u64 << 53) as f64);
            1.0 - self.jitter * unit
        } else {
            1.0
        };
        Duration::from_secs_f64(capped * jitter_scale)
    }
}

/// How a retry loop ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOutcome<T, E> {
    /// The operation succeeded on some attempt (0-based attempt index).
    Success(T, u32),
    /// Every allowed attempt failed; the final error is returned.
    Exhausted(E, u32),
    /// A non-retryable error stopped the loop early.
    Fatal(E, u32),
}

/// A retry policy: attempt budget plus backoff schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts allowed (≥ 1); 1 means "no retries".
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: Backoff::default(),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
        }
    }

    /// Runs `op` until success, a non-retryable error, or the attempt
    /// budget is spent. `is_retryable` classifies errors; `sleep` is
    /// injected so tests don't wait on wall clocks.
    pub fn run_with<T, E>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
        is_retryable: impl Fn(&E) -> bool,
        mut sleep: impl FnMut(Duration),
    ) -> RetryOutcome<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return RetryOutcome::Success(value, attempt),
                Err(err) if !is_retryable(&err) => return RetryOutcome::Fatal(err, attempt),
                Err(err) => {
                    if attempt + 1 >= attempts {
                        return RetryOutcome::Exhausted(err, attempt);
                    }
                    sleep(self.backoff.delay(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// [`run_with`](Self::run_with) sleeping on the real clock, flattened
    /// to a `Result`.
    pub fn run<T, E>(
        &self,
        op: impl FnMut(u32) -> Result<T, E>,
        is_retryable: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        match self.run_with(op, is_retryable, std::thread::sleep) {
            RetryOutcome::Success(value, _) => Ok(value),
            RetryOutcome::Exhausted(err, _) | RetryOutcome::Fatal(err, _) => Err(err),
        }
    }
}

/// The pure token-bucket core: time is an explicit `f64` seconds argument.
#[derive(Debug, Clone)]
pub struct BucketCore {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_update: f64,
}

impl BucketCore {
    /// A full bucket holding `capacity` tokens refilled at
    /// `refill_per_sec`.
    pub fn new(capacity: f64, refill_per_sec: f64) -> BucketCore {
        BucketCore {
            capacity: capacity.max(0.0),
            refill_per_sec: refill_per_sec.max(0.0),
            tokens: capacity.max(0.0),
            last_update: 0.0,
        }
    }

    fn refill(&mut self, now: f64) {
        if now > self.last_update {
            self.tokens = (self.tokens + (now - self.last_update) * self.refill_per_sec)
                .min(self.capacity);
            self.last_update = now;
        }
    }

    /// Attempts to take `cost` tokens at time `now`; returns `Ok(())` or
    /// the seconds to wait until enough tokens accrue.
    pub fn try_acquire(&mut self, cost: f64, now: f64) -> Result<(), f64> {
        self.refill(now);
        if self.tokens >= cost {
            self.tokens -= cost;
            Ok(())
        } else if self.refill_per_sec <= 0.0 {
            Err(f64::INFINITY)
        } else {
            Err((cost - self.tokens) / self.refill_per_sec)
        }
    }

    /// Tokens currently available at time `now`.
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// A thread-safe token bucket over an injected monotonic clock.
pub struct TokenBucket {
    core: parking_lot::Mutex<BucketCore>,
    clock: Arc<dyn MonotonicClock>,
}

impl TokenBucket {
    /// A bucket with `capacity` tokens refilled at `refill_per_sec`,
    /// timed by the process clock.
    pub fn new(capacity: f64, refill_per_sec: f64) -> TokenBucket {
        TokenBucket::with_clock(capacity, refill_per_sec, Arc::new(RealClock::default()))
    }

    /// Same bucket with an explicit clock (tests inject `ManualClock`).
    pub fn with_clock(
        capacity: f64,
        refill_per_sec: f64,
        clock: Arc<dyn MonotonicClock>,
    ) -> TokenBucket {
        TokenBucket {
            core: parking_lot::Mutex::new(BucketCore::new(capacity, refill_per_sec)),
            clock,
        }
    }

    fn now(&self) -> f64 {
        self.clock.now().as_secs_f64()
    }

    /// Non-blocking acquire of `cost` tokens.
    pub fn try_acquire(&self, cost: f64) -> bool {
        self.core.lock().try_acquire(cost, self.now()).is_ok()
    }

    /// Blocking acquire: sleeps on the injected clock until tokens are
    /// available or `timeout` elapses. Returns whether the tokens were
    /// obtained.
    pub fn acquire(&self, cost: f64, timeout: Duration) -> bool {
        let deadline = self.clock.now() + timeout;
        loop {
            let wait = match self.core.lock().try_acquire(cost, self.now()) {
                Ok(()) => return true,
                Err(secs) => secs,
            };
            if !wait.is_finite()
                || self.clock.now() + Duration::from_secs_f64(wait) > deadline
            {
                return false;
            }
            self.clock.sleep(Duration::from_secs_f64(wait.clamp(0.0005, 0.05)));
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.core.lock().available(self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff {
            jitter: 0.0,
            ..Backoff::default()
        };
        assert_eq!(b.delay(0), Duration::from_millis(100));
        assert_eq!(b.delay(1), Duration::from_millis(200));
        assert_eq!(b.delay(2), Duration::from_millis(400));
        assert_eq!(b.delay(20), Duration::from_secs(30)); // capped
    }

    #[test]
    fn backoff_jitter_within_bounds_and_deterministic() {
        let b = Backoff::default();
        for attempt in 0..10 {
            let d1 = b.delay(attempt);
            let d2 = b.delay(attempt);
            assert_eq!(d1, d2, "jitter must be deterministic per attempt");
            let unjittered = b.base.as_secs_f64() * b.factor.powi(attempt as i32);
            let capped = unjittered.min(b.max.as_secs_f64());
            assert!(d1.as_secs_f64() <= capped + 1e-9);
            assert!(d1.as_secs_f64() >= capped * (1.0 - b.jitter) - 1e-9);
        }
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let policy = RetryPolicy::default();
        let mut slept = Vec::new();
        let outcome = policy.run_with(
            |attempt| {
                if attempt < 2 {
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
            |_| true,
            |d| slept.push(d),
        );
        assert_eq!(outcome, RetryOutcome::Success(2, 2));
        assert_eq!(slept.len(), 2);
    }

    #[test]
    fn retry_stops_on_fatal_error() {
        let policy = RetryPolicy::default();
        let outcome = policy.run_with(
            |_: u32| Err::<(), _>("quotaExceeded"),
            |e| *e != "quotaExceeded",
            |_| panic!("must not sleep on fatal errors"),
        );
        assert_eq!(outcome, RetryOutcome::Fatal("quotaExceeded", 0));
    }

    #[test]
    fn retry_exhausts_budget() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let outcome = policy.run_with(
            |_| {
                calls += 1;
                Err::<(), _>("still broken")
            },
            |_| true,
            |_| {},
        );
        assert_eq!(outcome, RetryOutcome::Exhausted("still broken", 2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn no_retries_policy_tries_once() {
        let mut calls = 0;
        let outcome = RetryPolicy::no_retries().run_with(
            |_| {
                calls += 1;
                Err::<(), _>("x")
            },
            |_| true,
            |_| {},
        );
        assert!(matches!(outcome, RetryOutcome::Exhausted("x", 0)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn bucket_core_consumes_and_refills() {
        let mut core = BucketCore::new(10.0, 2.0);
        assert!(core.try_acquire(10.0, 0.0).is_ok());
        // Empty now; need 5 tokens → 2.5 s wait.
        let wait = core.try_acquire(5.0, 0.0).unwrap_err();
        assert!((wait - 2.5).abs() < 1e-9);
        // After 3 s, 6 tokens accrued.
        assert!(core.try_acquire(5.0, 3.0).is_ok());
        assert!((core.available(3.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_core_never_exceeds_capacity() {
        let mut core = BucketCore::new(4.0, 100.0);
        assert!((core.available(1_000.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_core_zero_refill_reports_infinite_wait() {
        let mut core = BucketCore::new(1.0, 0.0);
        assert!(core.try_acquire(1.0, 0.0).is_ok());
        assert_eq!(core.try_acquire(1.0, 10.0).unwrap_err(), f64::INFINITY);
    }

    #[test]
    fn token_bucket_refills_on_manual_clock() {
        let clock = ytaudit_platform::clock::ManualClock::new();
        let bucket = TokenBucket::with_clock(2.0, 1.0, Arc::new(clock.clone()));
        assert!(bucket.try_acquire(2.0));
        assert!(!bucket.try_acquire(1.0), "bucket drained");
        // One simulated second refills one token; no real sleep happens.
        clock.advance(Duration::from_secs(1));
        assert!(bucket.try_acquire(1.0));
        clock.advance(Duration::from_secs(60));
        assert!((bucket.available() - 2.0).abs() < 1e-9, "refill caps at capacity");
    }

    #[test]
    fn blocking_acquire_waits_on_the_injected_clock() {
        let clock = ytaudit_platform::clock::ManualClock::new();
        let bucket = TokenBucket::with_clock(1.0, 1.0, Arc::new(clock.clone()));
        assert!(bucket.try_acquire(1.0));
        // `acquire` sleeps on the manual clock, which advances simulated
        // time instantly, so this "one-second wait" returns immediately.
        assert!(bucket.acquire(1.0, Duration::from_secs(5)));
        assert!(clock.now() >= Duration::from_millis(900), "waited on the clock");
    }

    #[test]
    fn acquire_times_out_without_real_sleeps() {
        let clock = ytaudit_platform::clock::ManualClock::new();
        let slow = TokenBucket::with_clock(1.0, 0.0, Arc::new(clock.clone()));
        assert!(slow.try_acquire(1.0));
        // Zero refill: infinite wait is reported as a timeout, not a hang.
        assert!(!slow.acquire(1.0, Duration::from_millis(10)));
        // A finite but too-long wait also times out, advancing only
        // simulated time.
        let trickle = TokenBucket::with_clock(1.0, 0.001, Arc::new(clock.clone()));
        assert!(trickle.try_acquire(1.0));
        assert!(!trickle.acquire(1.0, Duration::from_secs(1)));
    }

    #[test]
    fn token_bucket_wall_clock_smoke() {
        // The default constructor still runs on the process clock.
        let bucket = TokenBucket::new(2.0, 1000.0);
        assert!(bucket.try_acquire(1.0));
        assert!(bucket.try_acquire(1.0));
        // Refill is fast (1000/s): blocking acquire succeeds quickly.
        assert!(bucket.acquire(1.0, Duration::from_secs(1)));
    }
}
