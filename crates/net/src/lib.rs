//! # ytaudit-net
//!
//! A minimal, dependency-light HTTP/1.1 stack over `std::net`, sized for the
//! needs of the `ytaudit` workspace: a REST API served and consumed on
//! loopback, with the failure modes the audit cares about (quota errors,
//! transient 5xx, truncated frames, timeouts) exercised over real sockets.
//!
//! Layout follows the classic layering of a networking library:
//!
//! * [`url`] — percent-encoding, query strings, and a small URL type;
//! * [`message`] — methods, status codes, case-insensitive headers, and the
//!   [`Request`]/[`Response`] types;
//! * [`framing`] — reading and writing HTTP/1.1 messages on byte streams,
//!   including chunked transfer encoding and hard limits on header/body
//!   sizes (a server must never trust the peer's length claims);
//! * [`server`] — a blocking, thread-pool TCP server with keep-alive and
//!   graceful shutdown;
//! * [`evloop`] — a non-blocking event-loop server multiplexing thousands
//!   of keep-alive connections on one thread, with 429 + `Retry-After`
//!   load shedding past a connection cap;
//! * [`loadgen`] — a closed-loop load driver with raw-sample latency
//!   percentiles for benchmarking both servers;
//! * [`client`] — a blocking client with per-host connection reuse;
//! * [`pipeline`] — bounded HTTP/1.1 request pipelining on one keep-alive
//!   connection, with strict rules about what may ride a pipeline and how
//!   unanswered requests are resubmitted when a connection dies;
//! * [`resilience`] — retry policies with exponential backoff plus a token
//!   bucket rate limiter, the two mechanisms a well-behaved API client
//!   needs when a quota-priced endpoint sits on the other side.
//!
//! The stack is intentionally synchronous: the audit's request pattern is
//! thousands of small sequential calls (hourly time bins), which threads
//! handle predictably; see the workspace DESIGN.md for the rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod evloop;
pub mod framing;
pub mod loadgen;
pub mod message;
pub mod pipeline;
pub mod resilience;
pub mod server;
pub mod url;

pub use client::{HttpClient, PoolStats};
pub use evloop::{EvloopHandle, EvloopServer};
pub use loadgen::{LoadConfig, LoadReport};
pub use pipeline::{PipelinedConn, SubmitRefusal};
pub use message::{Headers, Method, Request, Response, StatusCode};
pub use resilience::{Backoff, RetryPolicy, TokenBucket};
pub use server::{Handler, Server, ServerConfig, ServerHandle, ServerStats};
pub use url::{QueryString, Url};

/// The crate-local error type. `ytaudit-net` has no dependency on
/// `ytaudit-types`, so it carries its own error and higher layers convert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Malformed URL, query string, or HTTP syntax.
    Protocol(String),
    /// Socket-level failure or timeout.
    Io(String),
    /// A peer violated a configured limit (header block too large, body too
    /// large, too many headers).
    LimitExceeded(String),
    /// The connection closed before a full message was read.
    UnexpectedEof(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Io(m) => write!(f, "I/O error: {m}"),
            NetError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            NetError::UnexpectedEof(m) => write!(f, "unexpected EOF: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> NetError {
        NetError::Io(err.to_string())
    }
}

/// Crate-local result alias.
pub type Result<T, E = NetError> = std::result::Result<T, E>;
