//! A non-blocking, readiness-polled event-loop HTTP/1.1 server.
//!
//! Where [`crate::server`] parks one worker thread per connection, this
//! server multiplexes every connection on a single loop thread: sockets
//! are non-blocking, each connection owns an input and an output byte
//! buffer, and one sweep of the loop moves whatever bytes each socket is
//! ready to move. Readiness is discovered level-triggered — a read or
//! write that returns `WouldBlock` simply means "not this sweep" — so the
//! loop needs no platform poller and stays FFI-free; when a whole sweep
//! makes no progress the loop sleeps briefly (escalating to a few
//! milliseconds) instead of spinning.
//!
//! The payoff is capacity: a keep-alive connection between requests costs
//! one socket and two (usually empty) buffers instead of a parked thread,
//! so thousands of concurrent tenants fit in one process. The cost is
//! latency granularity — an idle server answers within the sleep quantum
//! rather than instantly — which is well under the millisecond noise
//! floor of the simulated API.
//!
//! Overload policy: connections past `max_connections` are still
//! accepted, answered with `429 Too Many Requests` + `Retry-After`, and
//! closed. Shedding with an explicit verdict beats letting the backlog
//! time out, because the client's retry classifier can treat the 429 as
//! the transient signal it is.

use crate::framing::{try_parse_request, write_response};
use crate::message::{Response, StatusCode};
use crate::server::{shed_at_accept, Handler, ServerConfig, ServerStats};
use crate::{NetError, Result};
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read scratch size: one sweep pulls at most this many bytes per read
/// syscall from a connection.
const READ_CHUNK: usize = 16 * 1024;

/// Reads per connection per sweep. Bounds how long one firehosing peer
/// can monopolize a sweep; everything it sent stays in the kernel buffer
/// for the next sweep.
const READS_PER_SWEEP: usize = 8;

/// Accepted connections per sweep, bounding accept-flood monopolization
/// the same way.
const ACCEPTS_PER_SWEEP: usize = 1024;

/// Soft cap on buffered response bytes per connection. Once a peer falls
/// this far behind on reading, the loop stops parsing its pipelined
/// requests until the backlog drains — backpressure instead of unbounded
/// buffering. A single response larger than the cap is still buffered
/// whole.
const OUTBUF_SOFT_CAP: usize = 256 * 1024;

/// Idle sleep schedule: consecutive no-progress sweeps escalate through
/// these delays and stay at the last one.
const IDLE_SLEEPS: [Duration; 4] = [
    Duration::from_micros(200),
    Duration::from_micros(500),
    Duration::from_millis(1),
    Duration::from_millis(2),
];

/// The event-loop server. Construct with [`EvloopServer::bind`]; stop
/// with [`EvloopHandle::shutdown`].
pub struct EvloopServer;

impl EvloopServer {
    /// Binds `addr` and starts the loop thread, dispatching to `handler`.
    ///
    /// Takes the same [`ServerConfig`] as the blocking server so the two
    /// are benchmarkable like-for-like; `workers`, `queue_depth`, and
    /// `read_timeout` are meaningless under an event loop and ignored.
    pub fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> Result<EvloopHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(ServerStats::default());
        let loop_thread = {
            let running = Arc::clone(&running);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ytaudit-net-evloop".into())
                .spawn(move || event_loop(&listener, &*handler, &config, &running, &stats))
                .map_err(|e| NetError::Io(e.to_string()))?
        };
        Ok(EvloopHandle {
            local_addr,
            running,
            stats,
            loop_thread: Mutex::new(Some(loop_thread)),
        })
    }
}

/// Handle to a running event-loop server: address, stats, shutdown.
pub struct EvloopHandle {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    loop_thread: Mutex<Option<JoinHandle<()>>>,
}

impl EvloopHandle {
    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's base URL, e.g. `http://127.0.0.1:41234`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.local_addr)
    }

    /// Cumulative counters (shared [`ServerStats`] shape with the
    /// blocking server).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops the loop and joins its thread. Responses already buffered
    /// but not yet flushed are abandoned. Idempotent.
    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(thread) = self.loop_thread.lock().take() {
            let _ = thread.join();
        }
    }
}

impl Drop for EvloopHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection state: the socket plus everything the loop needs to
/// resume the connection mid-message on any sweep.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed into a request.
    inbuf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// How much of `outbuf` has been written so far.
    out_pos: usize,
    /// Requests served on this connection (keep-alive budget).
    served: usize,
    /// Last sweep at which the connection moved bytes.
    last_activity: Instant,
    /// Finish flushing `outbuf`, then close.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            served: 0,
            last_activity: now,
            close_after_flush: false,
        }
    }
}

/// What one sweep of one connection concluded.
enum Sweep {
    /// Bytes moved or a request was served.
    Progress,
    /// Nothing to do this sweep.
    Idle,
    /// Drop the connection.
    Close,
}

fn event_loop(
    listener: &TcpListener,
    handler: &dyn Handler,
    config: &ServerConfig,
    running: &AtomicBool,
    stats: &ServerStats,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut idle_streak: usize = 0;
    while running.load(Ordering::SeqCst) {
        // ytlint: allow(determinism) — wall time drives idle-connection
        // reaping and loop pacing only; dataset bytes never depend on it
        let now = Instant::now();
        let mut progress = false;

        // Accept phase: take everything waiting (bounded per sweep),
        // shedding connections past the cap with an explicit 429.
        for _ in 0..ACCEPTS_PER_SWEEP {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if conns.len() >= config.max_connections {
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        shed_at_accept(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    conns.push(Conn::new(stream, now));
                    let peak = conns.len() as u64;
                    if stats.peak_connections.load(Ordering::Relaxed) < peak {
                        stats.peak_connections.store(peak, Ordering::Relaxed);
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // Sweep phase: move bytes on every connection that is ready.
        let mut i = 0;
        while let Some(conn) = conns.get_mut(i) {
            match sweep_conn(conn, handler, config, stats, &mut scratch, now) {
                Sweep::Progress => {
                    progress = true;
                    i += 1;
                }
                Sweep::Idle => i += 1,
                Sweep::Close => {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    conns.swap_remove(i);
                    progress = true;
                }
            }
        }

        if progress {
            idle_streak = 0;
        } else {
            let sleep = IDLE_SLEEPS
                .get(idle_streak)
                .or(IDLE_SLEEPS.last())
                .copied()
                .unwrap_or(Duration::from_millis(1));
            idle_streak = (idle_streak + 1).min(IDLE_SLEEPS.len());
            // ytlint: allow(evloop-blocking) — idle pacing: only taken
            // when every connection had nothing to read or write, so no
            // request can be waiting behind this bounded (≤ 1ms) nap
            std::thread::sleep(sleep);
        }
    }
    // Shutdown: drop every connection. Unflushed responses are abandoned
    // — shutdown is the one moment the server may cut a peer off.
    for conn in conns {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

/// One sweep of one connection: read what's ready, parse and serve every
/// complete request, write what the socket will take, reap if idle.
fn sweep_conn(
    conn: &mut Conn,
    handler: &dyn Handler,
    config: &ServerConfig,
    stats: &ServerStats,
    scratch: &mut [u8],
    now: Instant,
) -> Sweep {
    let mut progress = false;

    // Read phase.
    let mut peer_closed = false;
    for _ in 0..READS_PER_SWEEP {
        match conn.stream.read(scratch) {
            Ok(0) => {
                peer_closed = true;
                break;
            }
            Ok(n) => {
                progress = true;
                conn.last_activity = now;
                if let Some(bytes) = scratch.get(..n) {
                    conn.inbuf.extend_from_slice(bytes);
                }
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Sweep::Close,
        }
    }
    if conn.close_after_flush {
        // Already condemned: anything further from the peer is discarded
        // so the buffer cannot grow while the close drains.
        conn.inbuf.clear();
    }

    // Parse-and-serve phase. Every complete request already buffered is
    // answered this sweep (pipelining); backpressure pauses parsing when
    // the peer is not draining its responses.
    while !conn.close_after_flush && conn.outbuf.len() - conn.out_pos < OUTBUF_SOFT_CAP {
        match try_parse_request(&conn.inbuf, &config.limits) {
            Ok(Some((request, consumed))) => {
                conn.inbuf.drain(..consumed);
                progress = true;
                conn.last_activity = now;
                let client_wants_close = request.headers.wants_close();
                let response = match catch_unwind(AssertUnwindSafe(|| handler.handle(&request))) {
                    Ok(resp) => resp,
                    Err(_) => {
                        stats.handler_panics.fetch_add(1, Ordering::Relaxed);
                        Response::text(StatusCode::INTERNAL_SERVER_ERROR, "handler panicked")
                    }
                };
                stats.requests.fetch_add(1, Ordering::Relaxed);
                conn.served += 1;
                let keep_alive = !client_wants_close
                    && !response.headers.wants_close()
                    && conn.served < config.max_requests_per_connection;
                let _ = write_response(&mut conn.outbuf, &response, keep_alive);
                if !keep_alive {
                    conn.close_after_flush = true;
                    conn.inbuf.clear();
                }
            }
            Ok(None) => break,
            Err(err) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let status = match err {
                    NetError::LimitExceeded(_) => StatusCode::PAYLOAD_TOO_LARGE,
                    _ => StatusCode::BAD_REQUEST,
                };
                let resp = Response::text(status, err.to_string());
                let _ = write_response(&mut conn.outbuf, &resp, false);
                conn.close_after_flush = true;
                conn.inbuf.clear();
            }
        }
    }
    if peer_closed {
        // Complete requests were answered above; a trailing partial
        // message can never complete now.
        conn.close_after_flush = true;
        conn.inbuf.clear();
    }

    // Write phase.
    while conn.out_pos < conn.outbuf.len() {
        let pending = conn.outbuf.get(conn.out_pos..).unwrap_or(&[]);
        match conn.stream.write(pending) {
            Ok(0) => return Sweep::Close,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = now;
                progress = true;
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => break,
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Sweep::Close,
        }
    }
    if conn.out_pos > 0 && conn.out_pos >= conn.outbuf.len() {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }

    let flushed = conn.outbuf.is_empty();
    if conn.close_after_flush && flushed {
        return Sweep::Close;
    }
    if flushed
        && conn.inbuf.is_empty()
        && now.duration_since(conn.last_activity) > config.idle_timeout
    {
        return Sweep::Close;
    }
    if progress {
        Sweep::Progress
    } else {
        Sweep::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{write_request, FrameLimits, MessageReader};
    use crate::message::{Method, Request};
    use std::io::Write as _;

    fn echo_server(config: ServerConfig) -> EvloopHandle {
        let handler = Arc::new(|req: &Request| {
            Response::text(
                StatusCode::OK,
                format!("{} {} q={}", req.method, req.path, req.query.encode()),
            )
        });
        EvloopServer::bind("127.0.0.1:0", handler, config).unwrap()
    }

    fn raw_round_trip(handle: &EvloopHandle, request: &Request) -> Response {
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        write_request(&mut stream, request, &handle.local_addr().to_string()).unwrap();
        let mut reader = MessageReader::new(stream);
        reader
            .read_response(&FrameLimits::default(), request.method == Method::Head)
            .unwrap()
    }

    #[test]
    fn serves_get_requests() {
        let handle = echo_server(ServerConfig::default());
        let resp = raw_round_trip(
            &handle,
            &Request::get("/search").with_query(crate::url::QueryString::new().with("q", "x")),
        );
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text().unwrap(), "GET /search q=q=x");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let handle = echo_server(ServerConfig::default());
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut write = stream.try_clone().unwrap();
        let mut reader = MessageReader::new(stream);
        for path in ["/a", "/b", "/c"] {
            write_request(&mut write, &Request::get(path), "h").unwrap();
            let resp = reader
                .read_response(&FrameLimits::default(), false)
                .unwrap();
            assert!(resp.body_text().unwrap().contains(path));
            assert_eq!(resp.headers.get("connection"), Some("keep-alive"));
        }
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 3);
        assert_eq!(handle.stats().connections.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn pipelined_burst_in_one_write_is_answered_in_order() {
        let handle = echo_server(ServerConfig::default());
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut write = stream.try_clone().unwrap();
        let mut burst = Vec::new();
        for path in ["/p0", "/p1", "/p2", "/p3"] {
            write_request(&mut burst, &Request::get(path), "h").unwrap();
        }
        write.write_all(&burst).unwrap();
        let mut reader = MessageReader::new(stream);
        for path in ["/p0", "/p1", "/p2", "/p3"] {
            let resp = reader
                .read_response(&FrameLimits::default(), false)
                .unwrap();
            assert!(resp.body_text().unwrap().contains(path), "{path}");
        }
        handle.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let handle = echo_server(ServerConfig::default());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(b"NONSENSE REQUEST LINE\r\n\r\n").unwrap();
        let mut reader = MessageReader::new(stream);
        let resp = reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        assert_eq!(resp.headers.get("connection"), Some("close"));
        assert_eq!(handle.stats().protocol_errors.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn oversized_request_gets_413() {
        let handle = echo_server(ServerConfig::default());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        stream.write_all(&raw).unwrap();
        let mut reader = MessageReader::new(stream);
        let resp = reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(resp.status, StatusCode::PAYLOAD_TOO_LARGE);
        handle.shutdown();
    }

    #[test]
    fn handler_panic_returns_500_and_server_survives() {
        let handler = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("induced failure");
            }
            Response::text(StatusCode::OK, "fine")
        });
        let handle = EvloopServer::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let boom = raw_round_trip(&handle, &Request::get("/boom"));
        assert_eq!(boom.status, StatusCode::INTERNAL_SERVER_ERROR);
        let ok = raw_round_trip(&handle, &Request::get("/fine"));
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(handle.stats().handler_panics.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_429() {
        let config = ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        };
        let handle = echo_server(config);
        // Pin the one slot with a kept-alive connection (the round trip
        // guarantees the server has accepted it).
        let pinned = TcpStream::connect(handle.local_addr()).unwrap();
        let mut pinned_write = pinned.try_clone().unwrap();
        write_request(&mut pinned_write, &Request::get("/hold"), "h").unwrap();
        let mut pinned_reader = MessageReader::new(pinned);
        let held = pinned_reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(held.status, StatusCode::OK);
        // The next connection is over capacity: explicit 429 + Retry-After.
        let over = TcpStream::connect(handle.local_addr()).unwrap();
        let mut reader = MessageReader::new(over);
        let resp = reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(resp.status, StatusCode::TOO_MANY_REQUESTS);
        assert_eq!(resp.headers.get("retry-after"), Some("1"));
        assert_eq!(handle.stats().shed.load(Ordering::Relaxed), 1);
        // The pinned connection still works.
        write_request(&mut pinned_write, &Request::get("/again"), "h").unwrap();
        let again = pinned_reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(again.status, StatusCode::OK);
        handle.shutdown();
    }

    #[test]
    fn idle_keep_alive_connection_is_closed_promptly() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let handle = echo_server(config);
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut write = stream.try_clone().unwrap();
        let mut reader = MessageReader::new(stream);
        write_request(&mut write, &Request::get("/x"), "h").unwrap();
        let resp = reader
            .read_response(&FrameLimits::default(), false)
            .unwrap();
        assert_eq!(resp.headers.get("connection"), Some("keep-alive"));
        // Go silent; the loop reaps the connection after idle_timeout.
        let started = Instant::now();
        let err = reader.read_response(&FrameLimits::default(), false);
        assert!(err.is_err(), "expected EOF, got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "idle close took {:?}",
            started.elapsed()
        );
        handle.shutdown();
    }

    #[test]
    fn many_concurrent_keep_alive_connections() {
        let handle = Arc::new(echo_server(ServerConfig::default()));
        // Open a modest herd of kept-alive connections, then use them all
        // a second time: every socket stays alive concurrently.
        let mut conns = Vec::new();
        for _ in 0..128 {
            let stream = TcpStream::connect(handle.local_addr()).unwrap();
            let write = stream.try_clone().unwrap();
            conns.push((write, MessageReader::new(stream)));
        }
        for round in 0..2 {
            for (i, (write, reader)) in conns.iter_mut().enumerate() {
                write_request(write, &Request::get(format!("/c{i}/{round}")), "h").unwrap();
                let resp = reader
                    .read_response(&FrameLimits::default(), false)
                    .unwrap();
                assert_eq!(resp.status, StatusCode::OK);
            }
        }
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 256);
        assert_eq!(handle.stats().connections.load(Ordering::Relaxed), 128);
        assert!(handle.stats().peak_connections.load(Ordering::Relaxed) >= 128);
        handle.shutdown();
    }

    #[test]
    fn respects_connection_close() {
        let handle = echo_server(ServerConfig::default());
        let resp = raw_round_trip(
            &handle,
            &Request::get("/x").with_header("connection", "close"),
        );
        assert_eq!(resp.headers.get("connection"), Some("close"));
        handle.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let handle = echo_server(ServerConfig::default());
        handle.shutdown();
        handle.shutdown();
    }
}
