//! HTTP message types: methods, status codes, headers, requests, responses.

use crate::url::QueryString;
use crate::{NetError, Result};
use std::fmt;

/// The request methods the stack supports. The Data API is read-only for
/// our purposes, but POST/DELETE exist for admin endpoints (sim-clock
/// control) and completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Safe, idempotent retrieval.
    Get,
    /// Non-idempotent submission (admin endpoints).
    Post,
    /// Idempotent replacement.
    Put,
    /// Idempotent deletion.
    Delete,
    /// Headers-only retrieval.
    Head,
}

impl Method {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }

    /// Parses a wire name (case-sensitive, per RFC 9110).
    pub fn parse(raw: &str) -> Result<Method> {
        Ok(match raw {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            other => return Err(NetError::Protocol(format!("unsupported method {other:?}"))),
        })
    }

    /// Whether requests with this method are safe to retry automatically.
    pub fn is_idempotent(self) -> bool {
        !matches!(self, Method::Post)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 204 No Content.
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden (quota errors use this).
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 408 Request Timeout.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 413 Content Too Large.
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 429 Too Many Requests.
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// The canonical reason phrase for logging and the status line.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Whether this is a 2xx status.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Whether this is a 5xx status (transient server failure; retryable).
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// A case-insensitive header multimap preserving insertion order.
///
/// Header names are stored lowercased (HTTP header names are
/// case-insensitive; normalizing at the edge keeps lookups cheap).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header, keeping any existing values for the same name.
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_ascii_lowercase(), value.into()));
    }

    /// Replaces all values of `name` with a single `value`.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let lower = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != lower);
        self.entries.push((lower, value.into()));
    }

    /// First value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name` in insertion order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes all values of `name`.
    pub fn remove(&mut self, name: &str) {
        let lower = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != lower);
    }

    /// All `(name, value)` entries, names lowercased.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses `Content-Length`, if present and well-formed.
    pub fn content_length(&self) -> Result<Option<usize>> {
        match self.get("content-length") {
            None => Ok(None),
            Some(raw) => raw
                .trim()
                .parse::<usize>()
                .map(Some)
                .map_err(|_| NetError::Protocol(format!("bad Content-Length: {raw:?}"))),
        }
    }

    /// Whether `Transfer-Encoding: chunked` applies (last encoding wins,
    /// per RFC 9112 §6.1).
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding")
            .map(|v| {
                v.split(',')
                    .next_back()
                    .map(|token| token.trim().eq_ignore_ascii_case("chunked"))
                    .unwrap_or(false)
            })
            .unwrap_or(false)
    }

    /// Whether the peer asked to close the connection after this message.
    pub fn wants_close(&self) -> bool {
        self.get("connection")
            .map(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
            .unwrap_or(false)
    }
}

/// An HTTP request: method, path, query, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Absolute path (no query).
    pub path: String,
    /// Parsed query parameters.
    pub query: QueryString,
    /// Request headers.
    pub headers: Headers,
    /// Request body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a bodyless GET request.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            query: QueryString::new(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Builds a POST request with a body.
    pub fn post(path: impl Into<String>, body: impl Into<Vec<u8>>) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            query: QueryString::new(),
            headers: Headers::new(),
            body: body.into(),
        }
    }

    /// Builder: sets the query string.
    pub fn with_query(mut self, query: QueryString) -> Request {
        self.query = query;
        self
    }

    /// Builder: adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.append(name, value);
        self
    }

    /// The request-target for the request line.
    pub fn target(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query.encode())
        }
    }
}

/// An HTTP response: status, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Response status.
    pub status: StatusCode,
    /// Response headers.
    pub headers: Headers,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Builds a response with the given status and empty body.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// A 200 response carrying a JSON body.
    pub fn json(status: StatusCode, body: impl Into<Vec<u8>>) -> Response {
        let mut resp = Response::new(status);
        resp.headers.set("content-type", "application/json; charset=utf-8");
        resp.body = body.into();
        resp
    }

    /// A plain-text response.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        let mut resp = Response::new(status);
        resp.headers.set("content-type", "text/plain; charset=utf-8");
        resp.body = body.into().into_bytes();
        resp
    }

    /// Builder: adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.append(name, value);
        self
    }

    /// The body decoded as UTF-8, for tests and logging.
    pub fn body_text(&self) -> Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| NetError::Protocol("response body is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        for m in [Method::Get, Method::Post, Method::Put, Method::Delete, Method::Head] {
            assert_eq!(Method::parse(m.as_str()).unwrap(), m);
        }
        assert!(Method::parse("get").is_err());
        assert!(Method::parse("BREW").is_err());
        assert!(Method::Get.is_idempotent());
        assert!(!Method::Post.is_idempotent());
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::FORBIDDEN.is_success());
        assert!(StatusCode::INTERNAL_SERVER_ERROR.is_server_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert!(!StatusCode::BAD_REQUEST.is_server_error());
        assert_eq!(StatusCode::FORBIDDEN.to_string(), "403 Forbidden");
        assert_eq!(StatusCode(599).reason(), "Unknown");
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.append("Content-Type", "application/json");
        assert_eq!(h.get("content-type"), Some("application/json"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
        assert!(h.contains("Content-type"));
        h.set("content-TYPE", "text/plain");
        assert_eq!(h.get_all("content-type"), vec!["text/plain"]);
        h.remove("Content-Type");
        assert!(h.is_empty());
    }

    #[test]
    fn headers_multi_value() {
        let mut h = Headers::new();
        h.append("set-cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        assert_eq!(h.get("set-cookie"), Some("a=1"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length().unwrap(), None);
        h.set("content-length", "123");
        assert_eq!(h.content_length().unwrap(), Some(123));
        h.set("content-length", " 99 ");
        assert_eq!(h.content_length().unwrap(), Some(99));
        h.set("content-length", "-5");
        assert!(h.content_length().is_err());
        h.set("content-length", "abc");
        assert!(h.content_length().is_err());
    }

    #[test]
    fn chunked_detection() {
        let mut h = Headers::new();
        assert!(!h.is_chunked());
        h.set("transfer-encoding", "chunked");
        assert!(h.is_chunked());
        h.set("transfer-encoding", "gzip, chunked");
        assert!(h.is_chunked());
        h.set("transfer-encoding", "chunked, gzip");
        assert!(!h.is_chunked());
        h.set("Transfer-Encoding", "CHUNKED");
        assert!(h.is_chunked());
    }

    #[test]
    fn connection_close_detection() {
        let mut h = Headers::new();
        assert!(!h.wants_close());
        h.set("connection", "keep-alive");
        assert!(!h.wants_close());
        h.set("connection", "close");
        assert!(h.wants_close());
        h.set("connection", "Keep-Alive, Close");
        assert!(h.wants_close());
    }

    #[test]
    fn request_target_includes_query() {
        let req = Request::get("/youtube/v3/search")
            .with_query(QueryString::new().with("q", "us capitol").with("maxResults", "50"))
            .with_header("x-api-key", "k");
        assert_eq!(req.target(), "/youtube/v3/search?q=us+capitol&maxResults=50");
        assert_eq!(Request::get("/healthz").target(), "/healthz");
    }

    #[test]
    fn response_builders() {
        let resp = Response::json(StatusCode::OK, br#"{"ok":true}"#.to_vec());
        assert_eq!(resp.headers.get("content-type"), Some("application/json; charset=utf-8"));
        assert_eq!(resp.body_text().unwrap(), r#"{"ok":true}"#);
        let text = Response::text(StatusCode::NOT_FOUND, "nope");
        assert_eq!(text.status, StatusCode::NOT_FOUND);
        assert_eq!(text.body, b"nope");
    }
}
