//! TikTok research-API wire shapes.
//!
//! Every response is one [`Envelope`]: a `data` object plus an `error`
//! object whose `code` is `"ok"` on success — unlike YouTube, errors are
//! not a separate envelope shape, and the HTTP status alone never tells
//! the whole story. Timestamps ride the wire as Unix epoch seconds
//! (`create_time`), not RFC 3339 strings; the client converts at the
//! platform seam. Rendering and parsing are hand-rolled over
//! [`crate::json`] so the wire path carries no external runtime
//! dependency.

use crate::json::{self, push_str_literal, JsonValue};
use std::fmt::Write as _;

/// Success code carried in [`ErrorObject::code`].
pub const CODE_OK: &str = "ok";
/// Daily request budget exhausted (HTTP 429, fatal for the day).
pub const CODE_QUOTA_EXHAUSTED: &str = "quota_exhausted";
/// Transient shed (HTTP 429, retryable; carries `retry_after`).
pub const CODE_RATE_LIMIT: &str = "rate_limit_exceeded";
/// A request parameter failed validation (HTTP 400).
pub const CODE_INVALID_PARAMS: &str = "invalid_params";
/// The addressed resource does not exist or was removed (HTTP 404).
pub const CODE_NOT_FOUND: &str = "resource_not_found";
/// Missing or unknown client key (HTTP 403).
pub const CODE_ACCESS_DENIED: &str = "access_denied";
/// Simulated server-side failure (HTTP 500, retryable).
pub const CODE_INTERNAL: &str = "internal_error";

/// The outermost response object.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Present on success; absent on errors.
    pub data: Option<Data>,
    /// Always present; `code == "ok"` on success.
    pub error: ErrorObject,
}

/// The error (or success marker) object.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorObject {
    /// Machine-readable code (one of the `CODE_*` constants).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Seconds until capacity returns, on 429s.
    pub retry_after: Option<u64>,
}

impl ErrorObject {
    /// The success marker.
    pub fn ok() -> ErrorObject {
        ErrorObject {
            code: CODE_OK.to_string(),
            message: String::new(),
            retry_after: None,
        }
    }
}

/// The payload of a successful response. Which fields are populated
/// depends on the endpoint; empty/absent ones stay off the wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Data {
    /// Video query / video info results.
    pub videos: Vec<WireVideo>,
    /// User (creator) info results.
    pub users: Vec<WireUser>,
    /// Comment list / reply list results.
    pub comments: Vec<WireComment>,
    /// Next page cursor (video query only).
    pub cursor: Option<u64>,
    /// Whether another page exists (video query only).
    pub has_more: Option<bool>,
    /// The window's pool-size estimate (video query) or list length.
    pub total: Option<u64>,
}

/// One video on the wire. The query endpoint returns only `id`,
/// `username`, and `create_time`; the info endpoint fills everything.
#[derive(Debug, Clone, PartialEq)]
pub struct WireVideo {
    /// Video ID.
    pub id: String,
    /// Uploading creator's username.
    pub username: Option<String>,
    /// Upload instant, Unix epoch seconds.
    pub create_time: i64,
    /// Duration in seconds.
    pub duration: Option<u64>,
    /// `"hd"` or `"sd"`.
    pub definition: Option<String>,
    /// View count.
    pub view_count: Option<u64>,
    /// Like count.
    pub like_count: Option<u64>,
    /// Comment count.
    pub comment_count: Option<u64>,
}

/// One creator on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireUser {
    /// The creator's username (the platform-neutral channel ID).
    pub username: String,
    /// Account creation instant, Unix epoch seconds.
    pub create_time: i64,
    /// Follower count (the subscriber analog).
    pub follower_count: u64,
    /// Number of posted videos.
    pub video_count: u64,
    /// Total views across the account's videos.
    pub view_count: u64,
}

/// One comment on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireComment {
    /// Comment ID.
    pub id: String,
    /// The video the comment is on.
    pub video_id: String,
    /// Posting instant, Unix epoch seconds.
    pub create_time: i64,
    /// Like count on the comment.
    pub like_count: u64,
    /// Number of replies under this comment (top-level lists only).
    pub reply_count: u64,
    /// The parent comment for replies; absent on top-level comments.
    pub parent_comment_id: Option<String>,
}

impl Envelope {
    /// Renders the envelope as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        if let Some(data) = &self.data {
            out.push_str("\"data\":");
            data.render_into(&mut out);
            out.push(',');
        }
        out.push_str("\"error\":{\"code\":");
        push_str_literal(&mut out, &self.error.code);
        out.push_str(",\"message\":");
        push_str_literal(&mut out, &self.error.message);
        if let Some(secs) = self.error.retry_after {
            let _ = write!(out, ",\"retry_after\":{secs}");
        }
        out.push_str("}}");
        out
    }

    /// Parses an envelope from JSON text.
    pub fn parse(text: &str) -> Result<Envelope, String> {
        let value = json::parse(text)?;
        let error = value
            .get("error")
            .ok_or_else(|| "envelope without error object".to_string())?;
        let error = ErrorObject {
            code: error
                .get("code")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "error object without code".to_string())?
                .to_string(),
            message: error
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            retry_after: error.get("retry_after").and_then(JsonValue::as_u64),
        };
        let data = match value.get("data") {
            Some(node) => Some(Data::from_json(node)?),
            None => None,
        };
        Ok(Envelope { data, error })
    }
}

impl Data {
    fn render_into(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        if !self.videos.is_empty() {
            out.push_str("\"videos\":[");
            for (i, video) in self.videos.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                video.render_into(out);
            }
            out.push(']');
            first = false;
        }
        if !self.users.is_empty() {
            if !first {
                out.push(',');
            }
            out.push_str("\"users\":[");
            for (i, user) in self.users.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                user.render_into(out);
            }
            out.push(']');
            first = false;
        }
        if !self.comments.is_empty() {
            if !first {
                out.push(',');
            }
            out.push_str("\"comments\":[");
            for (i, comment) in self.comments.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                comment.render_into(out);
            }
            out.push(']');
            first = false;
        }
        for (name, value) in [("cursor", self.cursor), ("total", self.total)] {
            if let Some(v) = value {
                if !first {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{v}");
                first = false;
            }
        }
        if let Some(more) = self.has_more {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"has_more\":{more}");
        }
        out.push('}');
    }

    fn from_json(node: &JsonValue) -> Result<Data, String> {
        let list = |name: &str| -> &[JsonValue] {
            node.get(name).and_then(JsonValue::as_arr).unwrap_or(&[])
        };
        Ok(Data {
            videos: list("videos")
                .iter()
                .map(WireVideo::from_json)
                .collect::<Result<_, _>>()?,
            users: list("users")
                .iter()
                .map(WireUser::from_json)
                .collect::<Result<_, _>>()?,
            comments: list("comments")
                .iter()
                .map(WireComment::from_json)
                .collect::<Result<_, _>>()?,
            cursor: node.get("cursor").and_then(JsonValue::as_u64),
            has_more: node.get("has_more").and_then(JsonValue::as_bool),
            total: node.get("total").and_then(JsonValue::as_u64),
        })
    }
}

impl WireVideo {
    fn render_into(&self, out: &mut String) {
        out.push_str("{\"id\":");
        push_str_literal(out, &self.id);
        if let Some(username) = &self.username {
            out.push_str(",\"username\":");
            push_str_literal(out, username);
        }
        let _ = write!(out, ",\"create_time\":{}", self.create_time);
        for (name, value) in [
            ("duration", self.duration),
            ("view_count", self.view_count),
            ("like_count", self.like_count),
            ("comment_count", self.comment_count),
        ] {
            if let Some(v) = value {
                let _ = write!(out, ",\"{name}\":{v}");
            }
        }
        if let Some(definition) = &self.definition {
            out.push_str(",\"definition\":");
            push_str_literal(out, definition);
        }
        out.push('}');
    }

    fn from_json(node: &JsonValue) -> Result<WireVideo, String> {
        Ok(WireVideo {
            id: node
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "video without id".to_string())?
                .to_string(),
            username: node
                .get("username")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            create_time: node
                .get("create_time")
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| "video without create_time".to_string())?,
            duration: node.get("duration").and_then(JsonValue::as_u64),
            definition: node
                .get("definition")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            view_count: node.get("view_count").and_then(JsonValue::as_u64),
            like_count: node.get("like_count").and_then(JsonValue::as_u64),
            comment_count: node.get("comment_count").and_then(JsonValue::as_u64),
        })
    }
}

impl WireUser {
    fn render_into(&self, out: &mut String) {
        out.push_str("{\"username\":");
        push_str_literal(out, &self.username);
        let _ = write!(
            out,
            ",\"create_time\":{},\"follower_count\":{},\"video_count\":{},\"view_count\":{}}}",
            self.create_time, self.follower_count, self.video_count, self.view_count
        );
    }

    fn from_json(node: &JsonValue) -> Result<WireUser, String> {
        let int = |name: &str| -> Result<u64, String> {
            node.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("user without {name}"))
        };
        Ok(WireUser {
            username: node
                .get("username")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "user without username".to_string())?
                .to_string(),
            create_time: node
                .get("create_time")
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| "user without create_time".to_string())?,
            follower_count: int("follower_count")?,
            video_count: int("video_count")?,
            view_count: int("view_count")?,
        })
    }
}

impl WireComment {
    fn render_into(&self, out: &mut String) {
        out.push_str("{\"id\":");
        push_str_literal(out, &self.id);
        out.push_str(",\"video_id\":");
        push_str_literal(out, &self.video_id);
        let _ = write!(
            out,
            ",\"create_time\":{},\"like_count\":{},\"reply_count\":{}",
            self.create_time, self.like_count, self.reply_count
        );
        if let Some(parent) = &self.parent_comment_id {
            out.push_str(",\"parent_comment_id\":");
            push_str_literal(out, parent);
        }
        out.push('}');
    }

    fn from_json(node: &JsonValue) -> Result<WireComment, String> {
        Ok(WireComment {
            id: node
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "comment without id".to_string())?
                .to_string(),
            video_id: node
                .get("video_id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "comment without video_id".to_string())?
                .to_string(),
            create_time: node
                .get("create_time")
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| "comment without create_time".to_string())?,
            like_count: node
                .get("like_count")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            reply_count: node
                .get("reply_count")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            parent_comment_id: node
                .get("parent_comment_id")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_and_elides_empty_fields() {
        let envelope = Envelope {
            data: Some(Data {
                videos: vec![WireVideo {
                    id: "v1".into(),
                    username: Some("c1".into()),
                    create_time: 1_700_000_000,
                    duration: None,
                    definition: None,
                    view_count: None,
                    like_count: None,
                    comment_count: None,
                }],
                cursor: Some(100),
                has_more: Some(true),
                total: Some(250),
                ..Data::default()
            }),
            error: ErrorObject::ok(),
        };
        let text = envelope.render();
        assert!(!text.contains("users"), "empty lists elided: {text}");
        assert!(!text.contains("duration"), "absent fields elided: {text}");
        let back = Envelope::parse(&text).expect("parses");
        assert_eq!(back, envelope);
    }

    #[test]
    fn full_video_and_user_and_comment_rows_round_trip() {
        let envelope = Envelope {
            data: Some(Data {
                videos: vec![WireVideo {
                    id: "v2".into(),
                    username: Some("c9".into()),
                    create_time: -3600,
                    duration: Some(181),
                    definition: Some("sd".into()),
                    view_count: Some(12),
                    like_count: Some(3),
                    comment_count: Some(1),
                }],
                users: vec![WireUser {
                    username: "c9".into(),
                    create_time: 86_400,
                    follower_count: 5,
                    video_count: 2,
                    view_count: 99,
                }],
                comments: vec![WireComment {
                    id: "k1.r0".into(),
                    video_id: "v2".into(),
                    create_time: 7,
                    like_count: 0,
                    reply_count: 0,
                    parent_comment_id: Some("k1".into()),
                }],
                cursor: None,
                has_more: None,
                total: Some(1),
            }),
            error: ErrorObject::ok(),
        };
        let back = Envelope::parse(&envelope.render()).expect("parses");
        assert_eq!(back, envelope);
    }

    #[test]
    fn error_envelope_carries_retry_after() {
        let text = r#"{"error":{"code":"rate_limit_exceeded","message":"shed","retry_after":7}}"#;
        let envelope = Envelope::parse(text).expect("parses");
        assert!(envelope.data.is_none());
        assert_eq!(envelope.error.code, CODE_RATE_LIMIT);
        assert_eq!(envelope.error.retry_after, Some(7));
        let rendered = Envelope {
            data: None,
            error: ErrorObject {
                code: CODE_RATE_LIMIT.to_string(),
                message: "shed".to_string(),
                retry_after: Some(7),
            },
        }
        .render();
        assert_eq!(rendered, text);
    }
}
