//! The TikTok client: a second [`Platform`] implementation.
//!
//! Where [`ytaudit_client::YouTubeClient`] chains `pageToken`s and
//! prices endpoints in units, this client walks opaque cursors, prices
//! everything at one request, and refuses queries without a date window
//! (the research API's video query has no un-windowed form). Above the
//! [`Platform`] seam none of that is visible: the collector receives
//! the same [`SearchWindow`]/[`VideoInfo`]/[`CommentsSnapshot`] records
//! either way.

use crate::service::TikTokService;
use crate::wire::{
    Data, Envelope, ErrorObject, WireUser, WireVideo, CODE_ACCESS_DENIED, CODE_INTERNAL,
    CODE_INVALID_PARAMS, CODE_NOT_FOUND, CODE_OK, CODE_QUOTA_EXHAUSTED, CODE_RATE_LIMIT,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ytaudit_api::quota::Endpoint;
use ytaudit_client::{SearchQuery, Transport};
use ytaudit_core::dataset::{
    ChannelInfo, CommentFetchError, CommentRecord, CommentsSnapshot, VideoInfo,
};
use ytaudit_core::platform::{Platform, SearchHit, SearchWindow};
use ytaudit_types::{ApiErrorReason, ChannelId, Error, PlatformKind, Result, Timestamp, VideoId};

/// Results requested per video-query page.
const PAGE_SIZE: usize = 100;
/// IDs per info-lookup request (the service's documented cap).
const LOOKUP_CHUNK: usize = 50;
/// Backstop against a cursor walk that never terminates.
const MAX_PAGES_PER_WINDOW: usize = 1_000;

/// In-process transport for the TikTok simulator, mirroring
/// [`ytaudit_client::InProcessTransport`].
pub struct TikTokTransport {
    service: Arc<TikTokService>,
}

impl TikTokTransport {
    /// Wraps a service.
    pub fn new(service: Arc<TikTokService>) -> TikTokTransport {
        TikTokTransport { service }
    }
}

impl Transport for TikTokTransport {
    fn execute(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: &str,
        now: Option<Timestamp>,
    ) -> Result<(u16, String)> {
        Ok(self.service.handle(endpoint, params, Some(api_key), now))
    }

    fn label(&self) -> &'static str {
        "tiktok-in-process"
    }
}

/// A typed client for the TikTok research API simulator.
pub struct TikTokClient {
    transport: Box<dyn Transport>,
    api_key: String,
    sim_time: Mutex<Option<Timestamp>>,
    requests: AtomicU64,
    page_size: usize,
}

impl TikTokClient {
    /// Builds a client over any transport.
    pub fn new(transport: Box<dyn Transport>, api_key: impl Into<String>) -> TikTokClient {
        TikTokClient {
            transport,
            api_key: api_key.into(),
            sim_time: Mutex::new(None),
            requests: AtomicU64::new(0),
            page_size: PAGE_SIZE,
        }
    }

    /// Overrides the video-query page size (tests exercise pagination
    /// with small pages). Clamped to the service's 1–100 range.
    pub fn with_page_size(mut self, page_size: usize) -> TikTokClient {
        self.page_size = page_size.clamp(1, PAGE_SIZE);
        self
    }

    /// Requests issued so far (the TikTok cost model: one unit each).
    pub fn requests_issued(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Copies the pinned simulated request time; the guard is released
    /// before the caller touches the transport, so `sim_time` never
    /// nests over transport-side locks.
    fn sim_now(&self) -> Option<Timestamp> {
        *self.sim_time.lock()
    }

    /// Issues one request and decodes the envelope.
    fn call(&self, endpoint: Endpoint, params: Vec<(String, String)>) -> Result<Data> {
        let now = self.sim_now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (_status, body) = self
            .transport
            .execute(endpoint, &params, &self.api_key, now)?;
        let envelope =
            Envelope::parse(&body).map_err(|e| Error::Decode(format!("TikTok response: {e}")))?;
        if envelope.error.code == CODE_OK {
            envelope
                .data
                .ok_or_else(|| Error::Decode("TikTok success response without data".into()))
        } else {
            Err(error_from(&envelope.error))
        }
    }
}

/// Maps a wire error object to the shared typed error vocabulary.
fn error_from(error: &ErrorObject) -> Error {
    let reason = match error.code.as_str() {
        CODE_QUOTA_EXHAUSTED => ApiErrorReason::QuotaExceeded,
        CODE_RATE_LIMIT => ApiErrorReason::RateLimited,
        CODE_INVALID_PARAMS => ApiErrorReason::InvalidParameter,
        CODE_NOT_FOUND => ApiErrorReason::NotFound,
        CODE_ACCESS_DENIED => ApiErrorReason::Forbidden,
        CODE_INTERNAL => ApiErrorReason::BackendError,
        other => return Error::Decode(format!("unknown TikTok error code '{other}'")),
    };
    match error.retry_after {
        Some(secs) => Error::api_with_retry_after(reason, error.message.clone(), secs),
        None => Error::api(reason, error.message.clone()),
    }
}

fn parse_video(video: &WireVideo) -> Option<VideoInfo> {
    Some(VideoInfo {
        id: VideoId::new(video.id.clone()),
        channel_id: ChannelId::new(video.username.clone()?),
        published_at: Timestamp(video.create_time),
        duration_secs: video.duration?,
        is_sd: video.definition.as_deref()? == "sd",
        views: video.view_count?,
        likes: video.like_count?,
        comments: video.comment_count?,
    })
}

fn parse_user(user: &WireUser) -> ChannelInfo {
    ChannelInfo {
        id: ChannelId::new(user.username.clone()),
        published_at: Timestamp(user.create_time),
        views: user.view_count,
        subscribers: user.follower_count,
        video_count: user.video_count,
    }
}

impl Platform for TikTokClient {
    fn kind(&self) -> PlatformKind {
        PlatformKind::Tiktok
    }

    fn set_sim_time(&self, t: Option<Timestamp>) {
        *self.sim_time.lock() = t;
    }

    fn units_spent(&self) -> u64 {
        self.requests_issued()
    }

    fn search_window(&self, query: &SearchQuery) -> Result<SearchWindow> {
        let (Some(after), Some(before)) = (query.published_after, query.published_before) else {
            return Err(Error::InvalidInput(
                "TikTok video queries are date-windowed: publishedAfter and publishedBefore are required"
                    .into(),
            ));
        };
        let mut base = vec![
            ("q".to_string(), query.q.clone().unwrap_or_default()),
            ("start_time".to_string(), after.0.to_string()),
            ("end_time".to_string(), before.0.to_string()),
            ("max_count".to_string(), self.page_size.to_string()),
        ];
        if let Some(channel) = &query.channel_id {
            base.push(("username".to_string(), channel.as_str().to_string()));
        }
        let mut hits = Vec::new();
        let mut total = None;
        let mut cursor = 0u64;
        for _ in 0..MAX_PAGES_PER_WINDOW {
            let mut params = base.clone();
            params.push(("cursor".to_string(), cursor.to_string()));
            let data = self.call(Endpoint::Search, params)?;
            total.get_or_insert(data.total.unwrap_or(0));
            hits.extend(data.videos.iter().map(|v| SearchHit {
                video_id: VideoId::new(v.id.clone()),
                published_at: Some(Timestamp(v.create_time).to_rfc3339()),
            }));
            let next = data
                .cursor
                .ok_or_else(|| Error::Decode("video query response without cursor".into()))?;
            if !data.has_more.unwrap_or(false) {
                return Ok(SearchWindow {
                    hits,
                    total_results: total.unwrap_or(0),
                });
            }
            if next <= cursor {
                return Err(Error::Protocol("TikTok cursor did not advance".into()));
            }
            cursor = next;
        }
        Err(Error::Protocol(format!(
            "video query exceeded {MAX_PAGES_PER_WINDOW} pages without exhausting the window"
        )))
    }

    fn video_meta(&self, ids: &[VideoId]) -> Result<(Vec<VideoInfo>, Vec<VideoId>)> {
        let mut infos = Vec::new();
        let mut returned = Vec::new();
        for chunk in ids.chunks(LOOKUP_CHUNK) {
            let list = chunk
                .iter()
                .map(|id| id.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let data = self.call(Endpoint::Videos, vec![("video_ids".to_string(), list)])?;
            for video in &data.videos {
                // Skip malformed rows rather than poisoning the batch,
                // mirroring the YouTube parse path.
                let Some(info) = parse_video(video) else {
                    continue;
                };
                returned.push(info.id.clone());
                infos.push(info);
            }
        }
        returned.sort();
        returned.dedup();
        Ok((infos, returned))
    }

    fn channel_meta(&self, ids: &[ChannelId]) -> Result<Vec<ChannelInfo>> {
        let mut infos = Vec::new();
        for chunk in ids.chunks(LOOKUP_CHUNK) {
            let list = chunk
                .iter()
                .map(|id| id.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let data = self.call(Endpoint::Channels, vec![("usernames".to_string(), list)])?;
            infos.extend(data.users.iter().map(parse_user));
        }
        Ok(infos)
    }

    fn comments(&self, videos: &[VideoId]) -> Result<CommentsSnapshot> {
        let mut snapshot = CommentsSnapshot::default();
        for video in videos {
            let params = vec![("video_id".to_string(), video.as_str().to_string())];
            let data = match self.call(Endpoint::CommentThreads, params) {
                Ok(data) => data,
                // A removed video is attrition signal, not a run-killer:
                // record it and keep crawling, like the YouTube path.
                Err(err) if err.api_reason() == Some(ApiErrorReason::NotFound) => {
                    snapshot.fetch_errors.push(CommentFetchError {
                        video_id: video.clone(),
                        error: format!("video/comment/list: {err}"),
                    });
                    continue;
                }
                Err(err) => return Err(err),
            };
            for comment in &data.comments {
                snapshot.comments.push(CommentRecord {
                    id: comment.id.clone(),
                    video_id: video.clone(),
                    is_reply: false,
                    published_at: Timestamp(comment.create_time),
                });
                if comment.reply_count == 0 {
                    continue;
                }
                let params = vec![("comment_id".to_string(), comment.id.clone())];
                let replies = self.call(Endpoint::Comments, params)?;
                snapshot
                    .comments
                    .extend(replies.comments.iter().map(|reply| CommentRecord {
                        id: reply.id.clone(),
                        video_id: video.clone(),
                        is_reply: true,
                        published_at: Timestamp(reply.create_time),
                    }));
            }
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_tiktok_client;
    use ytaudit_types::Topic;

    #[test]
    fn client_reports_its_kind_and_request_ledger() {
        let (client, _service) = test_tiktok_client(0.1);
        let platform: &dyn Platform = &client;
        assert_eq!(platform.kind(), PlatformKind::Tiktok);
        assert_eq!(platform.units_spent(), 0);
        let window = platform
            .search_window(&SearchQuery::for_topic(Topic::Higgs))
            .expect("windowed search succeeds");
        assert_eq!(window.video_ids().len(), window.hits.len());
        // Flat pricing: one unit per request, no 100-unit search premium.
        let spent = platform.units_spent();
        assert!(spent >= 1);
        assert!(
            spent < 100,
            "a single windowed search must not cost YouTube's 100 units (spent {spent})"
        );
    }

    #[test]
    fn unwindowed_queries_are_refused() {
        let (client, _service) = test_tiktok_client(0.05);
        let query = SearchQuery {
            published_after: None,
            published_before: None,
            ..SearchQuery::for_topic(Topic::Higgs)
        };
        let err = client.search_window(&query).expect_err("must refuse");
        assert!(matches!(err, Error::InvalidInput(_)), "{err:?}");
    }

    #[test]
    fn page_size_does_not_change_what_a_quirk_free_window_returns() {
        // With quirks off, pagination is a pure transport detail: a
        // 7-per-page walk and a 100-per-page walk see the same window.
        let (client_a, _svc_a) = test_tiktok_client_quirk_free(0.15);
        let (client_b, _svc_b) = test_tiktok_client_quirk_free(0.15);
        let client_b = client_b.with_page_size(7);
        let query = SearchQuery::for_topic(Topic::Higgs);
        let a = client_a.search_window(&query).expect("full pages");
        let b = client_b.search_window(&query).expect("small pages");
        assert_eq!(a, b);
        assert!(!a.hits.is_empty());
        for hit in &a.hits {
            let raw = hit.published_at.as_ref().expect("create_time present");
            Timestamp::parse_rfc3339(raw).expect("converted timestamps parse");
        }
    }

    fn test_tiktok_client_quirk_free(scale: f64) -> (TikTokClient, Arc<TikTokService>) {
        use crate::service::{QuirkConfig, RESEARCH_DAILY_REQUESTS};
        use ytaudit_platform::{Platform as CorpusPlatform, SimClock};
        let service = Arc::new(
            TikTokService::new(
                Arc::new(CorpusPlatform::small(scale)),
                SimClock::at_audit_start(),
            )
            .with_quirks(QuirkConfig::none()),
        );
        service
            .ledger()
            .register(crate::testutil::TEST_KEY, RESEARCH_DAILY_REQUESTS);
        let client = TikTokClient::new(
            Box::new(TikTokTransport::new(Arc::clone(&service))),
            crate::testutil::TEST_KEY,
        );
        (client, service)
    }

    #[test]
    fn metadata_and_comments_round_trip_through_the_seam() {
        let (client, service) = test_tiktok_client(0.2);
        let corpus = service.platform().corpus();
        client.set_sim_time(Some(corpus.config.audit_start));
        let mut ids: Vec<VideoId> = corpus.topics[0]
            .videos
            .iter()
            .take(5)
            .map(|v| v.id.clone())
            .collect();
        ids.push(VideoId::new("definitely-not-a-video"));
        let (infos, returned) = client.video_meta(&ids).expect("lookup succeeds");
        assert_eq!(infos.len(), 5, "the unknown ID is silently absent");
        assert_eq!(returned.len(), 5);
        assert!(returned.windows(2).all(|w| w[0] <= w[1]), "coverage sorted");

        let channels: Vec<ChannelId> = infos.iter().map(|i| i.channel_id.clone()).collect();
        let mut unique = channels.clone();
        unique.sort();
        unique.dedup();
        let channel_infos = client.channel_meta(&unique).expect("user lookup");
        assert_eq!(channel_infos.len(), unique.len());

        let mut crawl: Vec<VideoId> = ids[..2].to_vec();
        crawl.push(VideoId::new("definitely-not-a-video"));
        let snapshot = client.comments(&crawl).expect("comment crawl");
        assert_eq!(snapshot.fetch_errors.len(), 1, "missing video recorded");
        assert_eq!(
            snapshot.fetch_errors[0].video_id.as_str(),
            "definitely-not-a-video"
        );
        // Replies (when any) are fetched through the reply endpoint and
        // flagged; every record parses back to a real corpus comment.
        for record in &snapshot.comments {
            assert!(crawl.iter().any(|v| v == &record.video_id));
        }
    }
}
