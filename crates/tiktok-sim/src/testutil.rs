//! In-process TikTok harness constructors shared by tests, examples,
//! and the platform-matrix integration suite.

use crate::client::{TikTokClient, TikTokTransport};
use crate::service::{TikTokService, RESEARCH_DAILY_REQUESTS};
use std::sync::Arc;
use ytaudit_platform::{Platform as CorpusPlatform, SimClock};

/// The client key every test harness registers.
pub const TEST_KEY: &str = "tiktok-test-key";

/// A service over a small corpus, with [`TEST_KEY`] registered at the
/// research-application budget and the clock at audit start.
pub fn test_service(scale: f64) -> Arc<TikTokService> {
    let service = Arc::new(TikTokService::new(
        Arc::new(CorpusPlatform::small(scale)),
        SimClock::at_audit_start(),
    ));
    service.ledger().register(TEST_KEY, RESEARCH_DAILY_REQUESTS);
    service
}

/// A ready-to-collect client plus its service handle.
pub fn test_tiktok_client(scale: f64) -> (TikTokClient, Arc<TikTokService>) {
    let service = test_service(scale);
    let client = TikTokClient::new(
        Box::new(TikTokTransport::new(Arc::clone(&service))),
        TEST_KEY,
    );
    (client, service)
}
