//! A minimal, dependency-free JSON reader/writer for the TikTok wire
//! format.
//!
//! The workspace treats external crates as optional conveniences, not
//! load-bearing runtime dependencies (the HTTP stack in `ytaudit-net`
//! is hand-rolled for the same reason). The TikTok envelope is small
//! and fully known, so this module implements exactly the JSON subset
//! it needs: objects, arrays, strings with escapes, integers, booleans,
//! and `null`. Numbers are kept as raw tokens and converted on demand,
//! so 64-bit counts never round-trip through a float.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order irrelevant to the wire format).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte {c:#04x} at offset {pos}",
            pos = *pos
        )),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at offset {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| "non-UTF-8 number token".to_string())?;
    Ok(JsonValue::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "non-UTF-8 string".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "malformed \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "malformed \\u escape".to_string())?;
                        // The wire format never emits surrogate pairs;
                        // unpaired surrogates are rejected, BMP scalars
                        // accepted.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| "\\u escape is not a scalar value".to_string())?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err("unknown escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("malformed array at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member name at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("malformed object at offset {pos}", pos = *pos)),
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_str_literal(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_wire_uses() {
        let doc = r#"{"data":{"videos":[{"id":"v1","create_time":1700000000}],"cursor":100,"has_more":true,"total":250},"error":{"code":"ok","message":""}}"#;
        let value = parse(doc).expect("parses");
        let data = value.get("data").expect("data");
        let videos = data
            .get("videos")
            .and_then(JsonValue::as_arr)
            .expect("videos");
        assert_eq!(videos.len(), 1);
        assert_eq!(videos[0].get("id").and_then(JsonValue::as_str), Some("v1"));
        assert_eq!(
            videos[0].get("create_time").and_then(JsonValue::as_i64),
            Some(1_700_000_000)
        );
        assert_eq!(data.get("cursor").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(
            data.get("has_more").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("ok")
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        push_str_literal(&mut out, "a \"b\"\n\\c\u{1}");
        let back = parse(&out).expect("parses");
        assert_eq!(back.as_str(), Some("a \"b\"\n\\c\u{1}"));
    }

    #[test]
    fn negative_and_large_numbers_survive() {
        let value = parse("[-86400, 18446744073709551615]").expect("parses");
        let items = value.as_arr().expect("array");
        assert_eq!(items[0].as_i64(), Some(-86_400));
        assert_eq!(items[1].as_u64(), Some(u64::MAX));
        assert_eq!(items[1].as_i64(), None, "out of i64 range");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
