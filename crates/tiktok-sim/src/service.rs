//! The simulated TikTok research API service.
//!
//! Same ground-truth corpus as the YouTube simulator, completely
//! different API surface and economics:
//!
//! * **Quota** is a *daily request budget* — every request costs one
//!   unit regardless of endpoint, and the ledger resets at UTC midnight
//!   (YouTube's resets at Pacific midnight and prices endpoints from 1
//!   to 100 units).
//! * **Search** is a *date-windowed video query*: `start_time` and
//!   `end_time` are mandatory, results come back through an opaque
//!   `cursor`, and there is no `pageToken` chain.
//! * **Hidden sampling quirks** mirror what platform audits of the
//!   TikTok research API report (see PAPERS.md): a hard per-window
//!   result cap, windows whose tail pages silently vanish (`has_more`
//!   goes false while `total` still promises more), and intermittent
//!   pages that arrive empty yet advance the cursor. All three are
//!   deterministic in `(query, collection day, cursor)` — never in
//!   request order — so sequential and scheduled collections observe
//!   byte-identical behaviour.

use crate::wire::{
    Data, Envelope, ErrorObject, WireComment, WireUser, WireVideo, CODE_ACCESS_DENIED,
    CODE_INVALID_PARAMS, CODE_NOT_FOUND, CODE_QUOTA_EXHAUSTED,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use ytaudit_api::quota::Endpoint;
use ytaudit_platform::hash::{hash_bytes, mix64, mix_all, unit_f64};
use ytaudit_platform::{Platform as CorpusPlatform, SearchParams, SimClock};
use ytaudit_types::time::DAY;
use ytaudit_types::{ChannelId, CommentId, Definition, Timestamp, VideoId};

/// Default daily request budget per client key.
pub const DEFAULT_DAILY_REQUESTS: u64 = 1_000;
/// The elevated budget granted to approved research applications.
pub const RESEARCH_DAILY_REQUESTS: u64 = 1_000_000;
/// Hard page-size cap on the video query endpoint.
pub const MAX_PAGE_SIZE: usize = 100;
/// Page size when the request names none.
pub const DEFAULT_PAGE_SIZE: usize = 20;
/// Maximum IDs per video-info / user-info request.
pub const MAX_IDS_PER_LOOKUP: usize = 50;

/// The hidden-sampler knobs. Rates are probabilities evaluated from a
/// deterministic hash, so "0.2" means one in five `(query, day)` windows
/// — the *same* one in five on every run with the same seed.
#[derive(Debug, Clone)]
pub struct QuirkConfig {
    /// Seed folded into every quirk hash.
    pub seed: u64,
    /// Hard cap on results retrievable from one date window; `total`
    /// is capped to match, hiding how much of the pool is reachable.
    pub window_cap: usize,
    /// Fraction of `(query, day)` windows whose tail pages silently
    /// vanish: `has_more` goes false early while `total` still promises
    /// more results.
    pub tail_drop_rate: f64,
    /// Fraction of `(query, day, cursor)` pages that arrive empty while
    /// the cursor still advances — a silent hole mid-window.
    pub empty_page_rate: f64,
}

impl Default for QuirkConfig {
    fn default() -> QuirkConfig {
        QuirkConfig {
            seed: 0x71C7_0C5E_ED00_0001,
            window_cap: 250,
            tail_drop_rate: 0.2,
            empty_page_rate: 0.08,
        }
    }
}

impl QuirkConfig {
    /// A quirk-free configuration (cap still applies; rates zero).
    /// Useful for isolating which analysis signature each quirk carries.
    pub fn none() -> QuirkConfig {
        QuirkConfig {
            tail_drop_rate: 0.0,
            empty_page_rate: 0.0,
            ..QuirkConfig::default()
        }
    }
}

/// Outcome of charging one request against a key's daily budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Charge {
    /// Admitted; `remaining` requests left today.
    Granted {
        /// Requests left in today's budget after this one.
        remaining: u64,
    },
    /// Today's budget is spent; retry after UTC midnight.
    Exhausted {
        /// Seconds until the budget resets.
        retry_after_secs: u64,
    },
    /// The key was never registered.
    UnknownKey,
}

#[derive(Debug, Clone, Copy)]
struct KeyState {
    limit: u64,
    day: i64,
    used: u64,
}

/// Per-key daily *request* ledger (1 unit per request, any endpoint),
/// resetting at UTC midnight — deliberately unlike YouTube's
/// Pacific-midnight unit-priced ledger.
#[derive(Default)]
pub struct RequestLedger {
    keys: Mutex<HashMap<String, KeyState>>,
}

impl RequestLedger {
    /// Registers `key` with a daily request `limit`.
    pub fn register(&self, key: impl Into<String>, limit: u64) {
        self.keys.lock().insert(
            key.into(),
            KeyState {
                limit,
                day: i64::MIN,
                used: 0,
            },
        );
    }

    /// Charges one request at simulated instant `now`.
    pub fn charge(&self, key: &str, now: Timestamp) -> Charge {
        let mut keys = self.keys.lock();
        let Some(state) = keys.get_mut(key) else {
            return Charge::UnknownKey;
        };
        let day = now.0.div_euclid(DAY);
        if day != state.day {
            state.day = day;
            state.used = 0;
        }
        if state.used >= state.limit {
            let reset = (day + 1) * DAY;
            return Charge::Exhausted {
                retry_after_secs: (reset - now.0).max(0) as u64,
            };
        }
        state.used += 1;
        Charge::Granted {
            remaining: state.limit - state.used,
        }
    }

    /// Requests spent by `key` on the UTC day containing `now`.
    pub fn used_today(&self, key: &str, now: Timestamp) -> u64 {
        let keys = self.keys.lock();
        match keys.get(key) {
            Some(state) if state.day == now.0.div_euclid(DAY) => state.used,
            _ => 0,
        }
    }
}

/// The in-process TikTok research API simulator.
pub struct TikTokService {
    platform: Arc<CorpusPlatform>,
    clock: SimClock,
    ledger: RequestLedger,
    quirks: QuirkConfig,
}

impl TikTokService {
    /// Wraps a corpus façade with the default quirk configuration.
    pub fn new(platform: Arc<CorpusPlatform>, clock: SimClock) -> TikTokService {
        TikTokService {
            platform,
            clock,
            ledger: RequestLedger::default(),
            quirks: QuirkConfig::default(),
        }
    }

    /// Overrides the quirk configuration.
    pub fn with_quirks(mut self, quirks: QuirkConfig) -> TikTokService {
        self.quirks = quirks;
        self
    }

    /// The request ledger (register keys here).
    pub fn ledger(&self) -> &RequestLedger {
        &self.ledger
    }

    /// The underlying corpus façade.
    pub fn platform(&self) -> &CorpusPlatform {
        &self.platform
    }

    /// The quirk configuration in effect.
    pub fn quirks(&self) -> &QuirkConfig {
        &self.quirks
    }

    /// Handles one request, mapping the YouTube-shaped [`Endpoint`]
    /// vocabulary the transports speak onto the TikTok surface: `Search`
    /// is the video query, `Videos`/`Channels` are the info lookups,
    /// `CommentThreads`/`Comments` are the comment and reply lists, and
    /// `PlaylistItems` has no analog.
    pub fn handle(
        &self,
        endpoint: Endpoint,
        params: &[(String, String)],
        api_key: Option<&str>,
        now_override: Option<Timestamp>,
    ) -> (u16, String) {
        let now = now_override.unwrap_or_else(|| self.clock.now());
        let Some(key) = api_key else {
            return err_response(403, CODE_ACCESS_DENIED, "missing client key", None);
        };
        match self.ledger.charge(key, now) {
            Charge::UnknownKey => {
                return err_response(403, CODE_ACCESS_DENIED, "unknown client key", None)
            }
            Charge::Exhausted { retry_after_secs } => {
                return err_response(
                    429,
                    CODE_QUOTA_EXHAUSTED,
                    "daily request quota exhausted",
                    Some(retry_after_secs),
                )
            }
            Charge::Granted { .. } => {}
        }
        match endpoint {
            Endpoint::Search => self.video_query(params, now),
            Endpoint::Videos => self.video_info(params, now),
            Endpoint::Channels => self.user_info(params),
            Endpoint::CommentThreads => self.comment_list(params, now),
            Endpoint::Comments => self.reply_list(params, now),
            Endpoint::PlaylistItems => err_response(
                400,
                CODE_INVALID_PARAMS,
                "playlist endpoints are not part of the research API",
                None,
            ),
        }
    }

    /// The date-windowed, cursor-paginated video query.
    fn video_query(&self, params: &[(String, String)], now: Timestamp) -> (u16, String) {
        let Some(start) = int_param(params, "start_time") else {
            return err_response(400, CODE_INVALID_PARAMS, "start_time is required", None);
        };
        let Some(end) = int_param(params, "end_time") else {
            return err_response(400, CODE_INVALID_PARAMS, "end_time is required", None);
        };
        if end <= start {
            return err_response(
                400,
                CODE_INVALID_PARAMS,
                "end_time must be after start_time",
                None,
            );
        }
        let q = str_param(params, "q").unwrap_or_default();
        let username = str_param(params, "username");
        let cursor = int_param(params, "cursor").unwrap_or(0).max(0) as usize;
        let max_count = int_param(params, "max_count")
            .map(|n| (n.max(1) as usize).min(MAX_PAGE_SIZE))
            .unwrap_or(DEFAULT_PAGE_SIZE);

        let search = SearchParams {
            tokens: q.split_whitespace().map(str::to_lowercase).collect(),
            published_after: Some(Timestamp(start)),
            published_before: Some(Timestamp(end)),
            channel_id: username.clone().map(ChannelId::new),
            ..SearchParams::default()
        };
        let outcome = self.platform.search(&search, now);

        // Quirk: the per-window cap bounds both the retrievable results
        // and the advertised total, hiding the true pool size.
        let cap = self.quirks.window_cap;
        let mut ids = outcome.video_ids;
        ids.truncate(cap);
        let total = outcome.total_results.min(cap as u64);

        // All quirk draws key on (query, window, collection day) — never
        // on request order — so replays and reshuffled schedules observe
        // identical behaviour.
        let day = now.0.div_euclid(DAY) as u64;
        let qhash = mix_all(&[
            self.quirks.seed,
            hash_bytes(q.as_bytes()),
            hash_bytes(username.unwrap_or_default().as_bytes()),
            start as u64,
            end as u64,
        ]);

        // Quirk: silently dropped tail pages. The kept prefix shrinks,
        // `has_more` ends the walk early, and `total` never admits it.
        let tail = mix_all(&[qhash, 0x7417_D809, day]);
        if unit_f64(tail) < self.quirks.tail_drop_rate && !ids.is_empty() {
            let keep = 0.35 + 0.5 * unit_f64(mix64(tail ^ 0x9E37_79B9_7F4A_7C15));
            let kept = ((ids.len() as f64) * keep).floor().max(1.0) as usize;
            ids.truncate(kept);
        }

        let page_start = cursor.min(ids.len());
        let page_end = (cursor + max_count).min(ids.len());

        // Quirk: an intermittent empty page — the cursor advances past
        // results that are never served.
        let hole = mix_all(&[qhash, 0xE3B7_9A05, day, cursor as u64]);
        let page: &[VideoId] = if unit_f64(hole) < self.quirks.empty_page_rate {
            &[]
        } else {
            &ids[page_start..page_end]
        };

        let videos = page
            .iter()
            .filter_map(|id| {
                let video = self.platform.video(id, now)?;
                Some(WireVideo {
                    id: video.id.as_str().to_string(),
                    username: Some(video.channel_id.as_str().to_string()),
                    create_time: video.published_at.0,
                    duration: None,
                    definition: None,
                    view_count: None,
                    like_count: None,
                    comment_count: None,
                })
            })
            .collect();
        ok_response(Data {
            videos,
            cursor: Some(page_end as u64),
            has_more: Some(page_end < ids.len()),
            total: Some(total),
            ..Data::default()
        })
    }

    /// Video info lookup by comma-separated `video_ids`.
    fn video_info(&self, params: &[(String, String)], now: Timestamp) -> (u16, String) {
        let ids = match id_list(params, "video_ids") {
            Ok(ids) => ids,
            Err(response) => return response,
        };
        let videos = ids
            .iter()
            .filter_map(|raw| {
                let video = self.platform.video(&VideoId::new(raw.clone()), now)?;
                Some(WireVideo {
                    id: video.id.as_str().to_string(),
                    username: Some(video.channel_id.as_str().to_string()),
                    create_time: video.published_at.0,
                    duration: Some(video.duration.as_secs()),
                    definition: Some(
                        match video.definition {
                            Definition::Hd => "hd",
                            Definition::Sd => "sd",
                        }
                        .to_string(),
                    ),
                    view_count: Some(video.stats.views),
                    like_count: Some(video.stats.likes),
                    comment_count: Some(video.stats.comments),
                })
            })
            .collect();
        ok_response(Data {
            videos,
            ..Data::default()
        })
    }

    /// Creator info lookup by comma-separated `usernames`.
    fn user_info(&self, params: &[(String, String)]) -> (u16, String) {
        let names = match id_list(params, "usernames") {
            Ok(names) => names,
            Err(response) => return response,
        };
        let users = names
            .iter()
            .filter_map(|raw| {
                let channel = self.platform.channel(&ChannelId::new(raw.clone()))?;
                Some(WireUser {
                    username: channel.id.as_str().to_string(),
                    create_time: channel.published_at.0,
                    follower_count: channel.stats.subscribers,
                    video_count: channel.stats.video_count,
                    view_count: channel.stats.views,
                })
            })
            .collect();
        ok_response(Data {
            users,
            ..Data::default()
        })
    }

    /// Top-level comment list for one `video_id`.
    fn comment_list(&self, params: &[(String, String)], now: Timestamp) -> (u16, String) {
        let Some(raw) = str_param(params, "video_id") else {
            return err_response(400, CODE_INVALID_PARAMS, "video_id is required", None);
        };
        let id = VideoId::new(raw);
        if self.platform.video(&id, now).is_none() {
            return err_response(404, CODE_NOT_FOUND, "video not found or removed", None);
        }
        let threads = self.platform.comment_threads(&id, now);
        let comments: Vec<WireComment> = threads
            .iter()
            .map(|thread| WireComment {
                id: thread.top_level.id.as_str().to_string(),
                video_id: thread.top_level.video_id.as_str().to_string(),
                create_time: thread.top_level.published_at.0,
                like_count: thread.top_level.like_count,
                reply_count: thread.replies.len() as u64,
                parent_comment_id: None,
            })
            .collect();
        let total = comments.len() as u64;
        ok_response(Data {
            comments,
            total: Some(total),
            ..Data::default()
        })
    }

    /// Reply list for one `comment_id`.
    fn reply_list(&self, params: &[(String, String)], now: Timestamp) -> (u16, String) {
        let Some(raw) = str_param(params, "comment_id") else {
            return err_response(400, CODE_INVALID_PARAMS, "comment_id is required", None);
        };
        let parent = CommentId::new(raw.clone());
        let replies = self.platform.comments_by_parent(&parent, now);
        let comments: Vec<WireComment> = replies
            .iter()
            .map(|reply| WireComment {
                id: reply.id.as_str().to_string(),
                video_id: reply.video_id.as_str().to_string(),
                create_time: reply.published_at.0,
                like_count: reply.like_count,
                reply_count: 0,
                parent_comment_id: Some(raw.clone()),
            })
            .collect();
        let total = comments.len() as u64;
        ok_response(Data {
            comments,
            total: Some(total),
            ..Data::default()
        })
    }
}

fn str_param(params: &[(String, String)], name: &str) -> Option<String> {
    params
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .filter(|v| !v.is_empty())
}

fn int_param(params: &[(String, String)], name: &str) -> Option<i64> {
    str_param(params, name).and_then(|v| v.parse().ok())
}

fn id_list(params: &[(String, String)], name: &str) -> Result<Vec<String>, (u16, String)> {
    let Some(raw) = str_param(params, name) else {
        return Err(err_response(
            400,
            CODE_INVALID_PARAMS,
            &format!("{name} is required"),
            None,
        ));
    };
    let ids: Vec<String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if ids.len() > MAX_IDS_PER_LOOKUP {
        return Err(err_response(
            400,
            CODE_INVALID_PARAMS,
            &format!("{name} accepts at most {MAX_IDS_PER_LOOKUP} IDs"),
            None,
        ));
    }
    Ok(ids)
}

fn ok_response(data: Data) -> (u16, String) {
    let envelope = Envelope {
        data: Some(data),
        error: ErrorObject::ok(),
    };
    (200, envelope.render())
}

fn err_response(status: u16, code: &str, message: &str, retry_after: Option<u64>) -> (u16, String) {
    let envelope = Envelope {
        data: None,
        error: ErrorObject {
            code: code.to_string(),
            message: message.to_string(),
            retry_after,
        },
    };
    (status, envelope.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{test_service, TEST_KEY};
    use ytaudit_types::Topic;

    fn query_params(
        q: &str,
        start: i64,
        end: i64,
        cursor: u64,
        max_count: usize,
    ) -> Vec<(String, String)> {
        vec![
            ("q".to_string(), q.to_string()),
            ("start_time".to_string(), start.to_string()),
            ("end_time".to_string(), end.to_string()),
            ("cursor".to_string(), cursor.to_string()),
            ("max_count".to_string(), max_count.to_string()),
        ]
    }

    fn parse(body: &str) -> Envelope {
        Envelope::parse(body).expect("well-formed envelope")
    }

    fn topic_query(service: &TikTokService) -> (String, i64, i64, Timestamp) {
        let topic = Topic::Higgs;
        let q = topic.spec().query_tokens().join(" ");
        let now = service.platform().corpus().config.audit_start;
        (q, topic.window_start().0, topic.window_end().0, now)
    }

    #[test]
    fn daily_request_budget_is_flat_and_resets_at_utc_midnight() {
        let service = test_service(0.05);
        service.ledger().register("tight", 2);
        let now = Timestamp::from_ymd(2025, 3, 1).expect("valid date");
        let (q, start, end, _) = topic_query(&service);
        let params = query_params(&q, start, end, 0, 5);
        // Two requests of *different* endpoints both cost one unit.
        let (s1, _) = service.handle(Endpoint::Search, &params, Some("tight"), Some(now));
        assert_eq!(s1, 200);
        let lookup = vec![("video_ids".to_string(), "nope".to_string())];
        let (s2, _) = service.handle(Endpoint::Videos, &lookup, Some("tight"), Some(now));
        assert_eq!(s2, 200);
        // The third is refused with a retry hint pointing at UTC midnight.
        let (s3, body) = service.handle(Endpoint::Search, &params, Some("tight"), Some(now));
        assert_eq!(s3, 429);
        let envelope = parse(&body);
        assert_eq!(envelope.error.code, CODE_QUOTA_EXHAUSTED);
        assert_eq!(envelope.error.retry_after, Some(DAY as u64));
        // Next UTC day the budget is back.
        let tomorrow = Timestamp(now.0 + DAY);
        let (s4, _) = service.handle(Endpoint::Search, &params, Some("tight"), Some(tomorrow));
        assert_eq!(s4, 200);
        // Unknown keys never get in.
        let (s5, body) = service.handle(Endpoint::Search, &params, Some("nobody"), Some(now));
        assert_eq!(s5, 403);
        assert_eq!(parse(&body).error.code, CODE_ACCESS_DENIED);
    }

    #[test]
    fn video_query_requires_a_date_window() {
        let service = test_service(0.05);
        let params = vec![("q".to_string(), "higgs".to_string())];
        let (status, body) = service.handle(Endpoint::Search, &params, Some(TEST_KEY), None);
        assert_eq!(status, 400);
        assert_eq!(parse(&body).error.code, CODE_INVALID_PARAMS);
    }

    #[test]
    fn pagination_is_deterministic_and_respects_the_window_cap() {
        let service = test_service(0.2);
        let (q, start, end, now) = topic_query(&service);
        let walk = |svc: &TikTokService| {
            let mut ids = Vec::new();
            let mut cursor = 0u64;
            let mut total = 0;
            loop {
                let params = query_params(&q, start, end, cursor, 50);
                let (status, body) =
                    svc.handle(Endpoint::Search, &params, Some(TEST_KEY), Some(now));
                assert_eq!(status, 200, "{body}");
                let data = parse(&body).data.expect("data");
                ids.extend(data.videos.iter().map(|v| v.id.clone()));
                total = data.total.expect("total");
                let next = data.cursor.expect("cursor");
                if !data.has_more.expect("has_more") {
                    break;
                }
                assert!(next > cursor, "cursor must advance");
                cursor = next;
            }
            (ids, total)
        };
        let (ids_a, total_a) = walk(&service);
        let (ids_b, total_b) = walk(&service);
        assert_eq!(ids_a, ids_b, "same query + day ⇒ same pages");
        assert_eq!(total_a, total_b);
        assert!(ids_a.len() <= service.quirks().window_cap);
        assert!(total_a <= service.quirks().window_cap as u64);
    }

    #[test]
    fn quirks_truncate_tails_and_blank_pages_deterministically() {
        let base = test_service(0.2);
        let (q, start, end, now) = topic_query(&base);
        let count_with = |quirks: QuirkConfig| {
            let service = TikTokService::new(
                Arc::new(CorpusPlatform::small(0.2)),
                SimClock::at_audit_start(),
            )
            .with_quirks(quirks);
            service.ledger().register(TEST_KEY, RESEARCH_DAILY_REQUESTS);
            let mut seen = 0usize;
            let mut pages = 0usize;
            let mut cursor = 0u64;
            loop {
                let params = query_params(&q, start, end, cursor, 25);
                let (status, body) =
                    service.handle(Endpoint::Search, &params, Some(TEST_KEY), Some(now));
                assert_eq!(status, 200, "{body}");
                let data = parse(&body).data.expect("data");
                seen += data.videos.len();
                pages += 1;
                let next = data.cursor.expect("cursor");
                if !data.has_more.expect("has_more") {
                    break;
                }
                cursor = next;
            }
            (seen, pages)
        };
        let (clean, clean_pages) = count_with(QuirkConfig::none());
        assert!(clean > 0, "corpus window should not be empty");
        // Forcing the tail-drop quirk on every window shrinks the walk.
        let (dropped, _) = count_with(QuirkConfig {
            tail_drop_rate: 1.0,
            empty_page_rate: 0.0,
            ..QuirkConfig::default()
        });
        assert!(
            dropped < clean,
            "tail drop must lose results ({dropped} vs {clean})"
        );
        // Forcing the empty-page quirk serves nothing, yet the cursor
        // still walks the whole window and terminates.
        let (holes, hole_pages) = count_with(QuirkConfig {
            tail_drop_rate: 0.0,
            empty_page_rate: 1.0,
            ..QuirkConfig::default()
        });
        assert_eq!(holes, 0, "every page blanked");
        assert_eq!(hole_pages, clean_pages, "cursor walk is unchanged");
    }

    #[test]
    fn lookups_omit_unknowns_and_comment_list_404s_on_missing_videos() {
        let service = test_service(0.2);
        let corpus = service.platform().corpus();
        let now = corpus.config.audit_start;
        let known = corpus.topics[0].videos[0].id.as_str().to_string();
        let params = vec![(
            "video_ids".to_string(),
            format!("{known},definitely-not-a-video"),
        )];
        let (status, body) = service.handle(Endpoint::Videos, &params, Some(TEST_KEY), Some(now));
        assert_eq!(status, 200);
        let data = parse(&body).data.expect("data");
        assert_eq!(data.videos.len(), 1, "unknown IDs silently omitted");
        assert_eq!(data.videos[0].id, known);
        assert!(data.videos[0].duration.is_some(), "info lookup hydrates");

        let params = vec![("video_id".to_string(), "missing-video".to_string())];
        let (status, body) =
            service.handle(Endpoint::CommentThreads, &params, Some(TEST_KEY), Some(now));
        assert_eq!(status, 404);
        assert_eq!(parse(&body).error.code, CODE_NOT_FOUND);
    }
}
