//! # ytaudit-tiktok-sim
//!
//! A TikTok-shaped backend for the audit harness — the second
//! implementation of [`ytaudit_core::Platform`], proving the
//! methodology is platform-generic:
//!
//! * [`service`] — the simulated research API: a *daily request
//!   budget* (one unit per request, UTC-midnight reset) instead of
//!   YouTube's unit-priced endpoints; a date-windowed, cursor-paginated
//!   video query; and hidden sampling quirks (per-window result cap,
//!   silently dropped tail pages, intermittent empty pages) modeled on
//!   published audits of the real research API;
//! * [`wire`] — the envelope-per-response wire shapes (epoch-second
//!   timestamps, `error.code == "ok"` on success), rendered and parsed
//!   by the dependency-free [`json`] module;
//! * [`client`] — [`client::TikTokClient`], the typed client that
//!   implements the [`ytaudit_core::Platform`] seam, plus the
//!   in-process [`client::TikTokTransport`];
//! * [`testutil`] — harness constructors for tests and examples.
//!
//! Every quirk is deterministic in `(query, collection day, cursor)` —
//! never in request arrival order — so sequential and scheduled
//! collections against this backend commit byte-identical stores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod service;
pub mod testutil;
pub mod wire;

pub use client::{TikTokClient, TikTokTransport};
pub use service::{QuirkConfig, RequestLedger, TikTokService, RESEARCH_DAILY_REQUESTS};
