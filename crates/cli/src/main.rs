//! `ytaudit` — the command-line face of the reproduction.
//!
//! ```text
//! ytaudit serve    [--addr 127.0.0.1:8080] [--scale 1.0] [--seed N]
//!                  [--researcher-key KEY] [--miss-rate 0.012] [--error-rate 0.0]
//!                  [--evloop] [--workers N] [--idle-timeout-ms N] [--max-conns N]
//!                  [--max-in-flight N] [--tenant-key KEY] [--tenant-rate U]
//!                  [--bench] [--bench-conns N] [--bench-secs N] [--bench-out PATH]
//! ytaudit collect  [--topics blm,brexit,…|all] [--snapshots N] [--interval-days 5]
//!                  [--paper] [--no-comments] [--no-metadata] [--scale 1.0]
//!                  [--base-url http://…] [--out dataset.json]
//!                  [--store audit.yts] [--resume]
//!                  [--workers N] [--shards N] [--rate units/sec]
//! ytaudit coordinate --store audit.yts [--shards N] [--listen 127.0.0.1:0]
//!                  [--ttl-secs 30] [--merge] [plan flags as collect]
//! ytaudit work     --coordinator http://… [--workdir dist-work] [--name W]
//!                  [--key KEY] [--workers N] [--scale 1.0] [--base-url http://…]
//! ytaudit analyze  <dataset.json> [--store audit.yts] [--experiment all|table1|
//!                  table2|table3|table4|table5|table6|table7|fig1|fig2|fig3|fig4]
//!                  [--follow] [--poll-ms 250] [--checkpoint analyze.ckpt]
//!                  [--max-buffered N] [--report report.json|-]
//! ytaudit store    <info|verify|compact|merge|export-json> <file.yts> [--out …]
//! ytaudit quota    --searches N [--id-calls M] [--daily 10000]
//! ytaudit lint     [--root PATH] [--format human|json] [--rule NAME]...
//! ytaudit topics
//! ```
//!
//! `serve` starts the simulated Data API on a real socket; `collect`
//! runs the paper's methodology against an in-process platform (default)
//! or any served instance (`--base-url`), writing the dataset as JSON or
//! committing it pair-by-pair to a crash-safe snapshot store (`--store`,
//! resumable with `--resume`, shardable across per-topic stores with
//! `--shards`); `coordinate`/`work` distribute the same plan across
//! processes — crash-safe leases over HTTP, exactly-once shard
//! hand-off, byte-canonical merge; `analyze` re-runs any of the paper's analyses on a
//! stored dataset — or, with `--store --follow`, tails a live store and
//! folds each committed pair into streaming accumulators as it lands,
//! checkpointing so a crashed analysis resumes instead of restarting;
//! `store` inspects, verifies, compacts, merges
//! (`collect --shards` output), or exports snapshot stores; `quota`
//! prices a collection plan in quota
//! units and key-days; `lint` runs the workspace invariant checker
//! (`ytaudit-lint`) over the source tree.

mod args;
mod commands;

use args::{ArgError, Args};

const USAGE: &str = "\
ytaudit — simulated YouTube Data API audit toolkit

USAGE:
    ytaudit <command> [options]

COMMANDS:
    serve      start the simulated Data API v3 on a TCP socket
    collect    run an audit collection (JSON dataset or snapshot store)
    coordinate lease a collection plan to distributed workers over HTTP
    work       execute leased ranges for a coordinator
    analyze    run the paper's analyses on a collected dataset
    store      inspect, verify, compact, merge, or export a snapshot store
    quota      price a collection plan in quota units
    lint       check workspace source invariants (ytaudit-lint)
    topics     list the six audit topics and their parameters
    help       show this message

Run `ytaudit <command> --help` for command options.";

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(tokens) {
        Ok(()) => {}
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}

fn run(tokens: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(
        tokens,
        &[
            "help",
            "paper",
            "quick",
            "no-comments",
            "no-metadata",
            "no-channels",
            "hourly",
            "resume",
            "evloop",
            "bench",
            "merge",
            "follow",
        ],
    )?;
    let command = args.positional(0).unwrap_or("help");
    if args.flag("help") {
        println!("{}", commands::usage_for(command).unwrap_or(USAGE));
        return Ok(());
    }
    match command {
        "serve" => commands::serve::run(&args),
        "collect" => commands::collect::run(&args),
        "coordinate" => commands::dist::coordinate(&args),
        "work" => commands::dist::work(&args),
        "analyze" => commands::analyze::run(&args),
        "store" => commands::store::run(&args),
        "quota" => commands::quota::run(&args),
        "lint" => commands::lint::run(&args),
        "topics" => commands::topics::run(&args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown command {other:?}; run `ytaudit help`"
        ))),
    }
}
