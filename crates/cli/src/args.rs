//! A small, dependency-free argument parser: `--key value`, `--flag`,
//! and positional arguments, with typed accessors and helpful errors.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
}

/// An argument-parsing or validation error (printed to stderr with usage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream. `known_flags` lists options that take no
    /// value (everything else starting with `--` consumes the next
    /// token).
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        known_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError("unexpected bare `--`".into()));
                }
                // `--key=value` form.
                if let Some((key, value)) = name.split_once('=') {
                    args.options
                        .entry(key.to_string())
                        .or_default()
                        .push(value.to_string());
                    continue;
                }
                if known_flags.contains(&name) {
                    args.flags.push(name.to_string());
                    continue;
                }
                let value = iter.next().ok_or_else(|| {
                    ArgError(format!("option --{name} expects a value"))
                })?;
                args.options
                    .entry(name.to_string())
                    .or_default()
                    .push(value);
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Positional argument `idx`.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// All positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positional
    }

    /// Last value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable `--key`.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.options
            .get(key)
            .map(|v| v.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Whether `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Typed accessor with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {raw:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str], flags: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()), flags).unwrap()
    }

    #[test]
    fn parses_positionals_options_and_flags() {
        let args = parse(
            &["collect", "--topics", "blm,higgs", "--snapshots", "4", "--paper", "out.json"],
            &["paper"],
        );
        assert_eq!(args.positional(0), Some("collect"));
        assert_eq!(args.positional(1), Some("out.json"));
        assert_eq!(args.get("topics"), Some("blm,higgs"));
        assert_eq!(args.get_parsed("snapshots", 0usize).unwrap(), 4);
        assert!(args.flag("paper"));
        assert!(!args.flag("quick"));
    }

    #[test]
    fn equals_form_and_repeats() {
        let args = parse(&["--key=a=1", "--key", "b", "--x=1"], &[]);
        assert_eq!(args.get_all("key"), vec!["a=1", "b"]);
        assert_eq!(args.get("key"), Some("b"));
        assert_eq!(args.get("x"), Some("1"));
    }

    #[test]
    fn missing_value_errors() {
        let err = Args::parse(vec!["--name".to_string()], &[]).unwrap_err();
        assert!(err.0.contains("--name"));
        assert!(Args::parse(vec!["--".to_string()], &[]).is_err());
    }

    #[test]
    fn typed_accessor_validates() {
        let args = parse(&["--n", "abc"], &[]);
        assert!(args.get_parsed("n", 1u32).is_err());
        assert_eq!(args.get_parsed("missing", 7u32).unwrap(), 7);
    }
}
