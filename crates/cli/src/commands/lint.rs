//! `ytaudit lint` — the workspace invariant checker, wired into the main
//! CLI so a contributor never has to remember the `-p ytaudit-lint`
//! spelling. Exits 0 when clean and 1 when violations are found, so the
//! command composes in shell scripts and CI the same way the standalone
//! binary does.

use crate::args::{ArgError, Args};
use ytaudit_lint::{all_rules, check_path, find_root, render, rule_names, CheckOptions, Format};

pub const USAGE: &str = "\
ytaudit lint — check workspace invariants (determinism, panic-freedom,
retry-classification exhaustiveness, quota-table consistency, event-loop
blocking-reachability, lock ordering, fsync-then-rename discipline)

USAGE:
    ytaudit lint [--root PATH] [--format human|json|sarif] [--rule NAME]...
    ytaudit lint rules

OPTIONS:
    --root PATH      workspace root (default: walk up from the cwd)
    --format FMT     human (default), json, or sarif (2.1.0, for CI
                     code-scanning annotations)
    --rule NAME      run only this rule (repeatable; default: all rules,
                     including suppression hygiene)

Suppress a provably-safe finding at its site:
    // ytlint: allow(rule) — <why this site is safe>
or for a whole file of fixed-size-array arithmetic:
    // ytlint: allow-file(rule) — <why every site is safe>";

pub fn run(args: &Args) -> Result<(), ArgError> {
    match args.positional(1) {
        Some("rules") => {
            for rule in all_rules() {
                println!("{:<18} {}", rule.name(), rule.description());
            }
            return Ok(());
        }
        Some(other) => {
            return Err(ArgError(format!(
                "unknown lint subcommand {other:?}; expected `rules` or no subcommand"
            )));
        }
        None => {}
    }

    let format = match args.get("format").unwrap_or("human") {
        "human" => Format::Human,
        "json" => Format::Json,
        "sarif" => Format::Sarif,
        other => {
            return Err(ArgError(format!(
                "unknown format {other:?}; expected human, json, or sarif"
            )))
        }
    };

    let rules: Vec<String> = args.get_all("rule").iter().map(|s| s.to_string()).collect();
    let known = rule_names();
    for rule in &rules {
        if !known.contains(&rule.as_str()) {
            return Err(ArgError(format!(
                "unknown rule {rule:?}; valid rules: {}",
                known.join(", ")
            )));
        }
    }

    let root = match args.get("root") {
        Some(path) => std::path::PathBuf::from(path),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("cannot determine working directory: {e}")))?;
            find_root(&cwd).ok_or_else(|| {
                ArgError(
                    "no workspace root (Cargo.toml + crates/) at or above the current \
                     directory; pass --root"
                        .into(),
                )
            })?
        }
    };

    let diags = check_path(&root, &CheckOptions { rules })
        .map_err(|e| ArgError(format!("cannot load workspace at {}: {e}", root.display())))?;
    print!("{}", render(&diags, format));
    if !diags.is_empty() {
        // Mirror the standalone binary's exit-code contract: 1 means the
        // workspace has violations (2 is reserved for usage/IO errors).
        std::process::exit(1);
    }
    Ok(())
}
