//! `ytaudit serve` — run the simulated Data API on a real socket,
//! behind either the blocking thread-pool server or the event-loop
//! server, with optional multi-tenant admission and a built-in
//! closed-loop load bench.

use crate::args::{ArgError, Args};
use std::sync::Arc;
use std::time::Duration;
use ytaudit_api::service::FaultConfig;
use ytaudit_api::{ApiService, RESEARCHER_DAILY_QUOTA};
use ytaudit_net::evloop::EvloopServer;
use ytaudit_net::loadgen::{self, LoadConfig, LoadReport};
use ytaudit_net::server::{Server, ServerConfig};
use ytaudit_net::{Request, Url};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SimClock};
use ytaudit_sched::{MetricsRegistry, QuotaGovernor, ServeFront, TenantRegistry};

/// Usage text.
pub const USAGE: &str = "\
ytaudit serve — start the simulated YouTube Data API v3

OPTIONS:
    --addr <host:port>      bind address        (default 127.0.0.1:8080)
    --scale <f64>           corpus scale        (default 1.0)
    --seed <u64>            corpus seed         (default the calibrated seed)
    --researcher-key <KEY>  register KEY with researcher-program quota
                            (repeatable; all other keys get 10 000/day)
    --miss-rate <f64>       Videos.list metadata-miss rate (default 0.012)
    --error-rate <f64>      transient 500 rate             (default 0.0)
    --evloop                serve on the event-loop server (single thread,
                            readiness-polled) instead of the thread pool
    --workers <N>           thread-pool workers            (default 4)
    --idle-timeout-ms <N>   keep-alive idle timeout        (default 5000)
    --max-conns <N>         connection cap; arrivals past it are shed
                            with 429 + Retry-After         (default 8192)
    --max-in-flight <N>     global in-flight request cap; 0 = uncapped
    --tenant-key <KEY>      admit KEY through its own quota bucket
                            (repeatable; unknown keys use service auth)
    --tenant-rate <f64>     per-tenant refill in quota units/sec
                            (default 1000; burst = 10x rate)

BENCH MODE:
    --bench                 bind BOTH servers on ephemeral ports, drive
                            each with a closed-loop load generator,
                            append a git-SHA-keyed report entry, and exit
                            (nonzero on any 5xx or connection reset)
    --bench-conns <N>       concurrent keep-alive connections (default 512)
    --bench-secs <N>        seconds per server                (default 5)
    --bench-out <PATH>      report history path (default BENCH_serve.json;
                            a JSON array, one entry per run keyed by the
                            commit SHA — runs accumulate instead of
                            overwriting)

Tenanted serving prices each request in quota units (search 100, all
other endpoints 1) and sheds with 429 + Retry-After when a tenant's
bucket is empty. GET /metrics renders admission and latency counters.
The server understands the X-Sim-Time request header and the
POST /admin/clock endpoint for time travel; see README.md.";

fn build_service(args: &Args) -> Result<Arc<ApiService>, ArgError> {
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let mut config = CorpusConfig {
        scale,
        ..CorpusConfig::default()
    };
    if let Some(seed) = args.get("seed") {
        config.seed = seed
            .parse()
            .map_err(|_| ArgError(format!("invalid --seed {seed:?}")))?;
    }
    let faults = FaultConfig {
        metadata_miss_rate: args.get_parsed("miss-rate", 0.012)?,
        backend_error_rate: args.get_parsed("error-rate", 0.0)?,
    };
    eprintln!("[serve] generating corpus (scale {scale})…");
    let platform = Platform::new(Corpus::generate(config));
    eprintln!(
        "[serve] corpus ready: {} videos, {} channels, {} comments",
        platform.corpus().video_count(),
        platform.corpus().channels.len(),
        platform.corpus().comments.len()
    );
    let service = Arc::new(
        ApiService::new(Arc::new(platform), SimClock::at_audit_start()).with_faults(faults),
    );
    for key in args.get_all("researcher-key") {
        service.quota().register(key, RESEARCHER_DAILY_QUOTA);
        eprintln!("[serve] registered researcher key {key:?}");
    }
    Ok(service)
}

fn build_front(args: &Args, service: &Arc<ApiService>) -> Result<Arc<ServeFront>, ArgError> {
    let max_in_flight: u64 = args.get_parsed("max-in-flight", 0u64)?;
    let tenant_rate: f64 = args.get_parsed("tenant-rate", 1000.0)?;
    let front = Arc::new(ServeFront::new(
        Arc::clone(service),
        Arc::new(TenantRegistry::new()),
        Arc::new(MetricsRegistry::new()),
        max_in_flight,
    ));
    for key in args.get_all("tenant-key") {
        front.tenants().register(
            key,
            QuotaGovernor::per_second(tenant_rate, tenant_rate * 10.0),
        );
        eprintln!("[serve] tenant {key:?} admitted at {tenant_rate} units/sec");
    }
    Ok(front)
}

fn server_config(args: &Args) -> Result<ServerConfig, ArgError> {
    let defaults = ServerConfig::default();
    let workers = args.get_parsed("workers", defaults.workers)?;
    let idle_timeout = Duration::from_millis(args.get_parsed("idle-timeout-ms", 5_000u64)?);
    let max_connections = args.get_parsed("max-conns", defaults.max_connections)?;
    Ok(ServerConfig {
        workers,
        idle_timeout,
        max_connections,
        ..defaults
    })
}

fn serve_forever(base_url: &str) -> ! {
    println!(
        "try: curl '{base_url}/youtube/v3/search?part=snippet&q=higgs+boson&type=video&key=demo'"
    );
    println!("     curl '{base_url}/metrics'");
    // Block forever; the process exits on signal. The server handle
    // stays alive in the caller's scope.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Runs the command (blocks until ctrl-c; `--bench` runs to completion).
pub fn run(args: &Args) -> Result<(), ArgError> {
    if args.flag("bench") {
        return bench(args);
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let service = build_service(args)?;
    let front = build_front(args, &service)?;
    let config = server_config(args)?;
    if args.flag("evloop") {
        let server = EvloopServer::bind(&addr, front, config)
            .map_err(|e| ArgError(format!("cannot bind {addr}: {e}")))?;
        println!("listening on {} (event loop)", server.base_url());
        serve_forever(&server.base_url())
    } else {
        let workers = config.workers;
        let server = Server::bind(&addr, front, config)
            .map_err(|e| ArgError(format!("cannot bind {addr}: {e}")))?;
        println!("listening on {} ({workers} workers)", server.base_url());
        serve_forever(&server.base_url())
    }
}

/// The request every bench iteration issues: a cheap (1-unit)
/// Videos.list call, so the measurement stresses the server loop, not
/// the corpus.
fn bench_request(base_url: &str) -> Result<(String, Request), ArgError> {
    let url = Url::parse(&format!(
        "{base_url}/youtube/v3/videos?part=id&id=benchvid&key=bench"
    ))
    .map_err(|e| ArgError(format!("bench url: {e}")))?;
    let request = Request::get(url.path.clone()).with_query(url.query.clone());
    Ok((url.authority(), request))
}

fn drive(label: &str, base_url: &str, config: &LoadConfig) -> Result<LoadReport, ArgError> {
    let (authority, request) = bench_request(base_url)?;
    eprintln!(
        "[bench] {label}: {} connections for {:?}…",
        config.connections, config.duration
    );
    let report = loadgen::run(&authority, &request, config)
        .map_err(|e| ArgError(format!("bench against {label}: {e}")))?;
    eprintln!(
        "[bench] {label}: {} requests, {:.0} req/s, p50 {}µs p99 {}µs p999 {}µs, \
         {} shed, {} 5xx, {} resets",
        report.requests,
        report.req_per_sec(),
        report.p50_us(),
        report.p99_us(),
        report.p999_us(),
        report.count(429),
        report.count_5xx(),
        report.resets
    );
    Ok(report)
}

fn report_json(label: &str, connections: usize, report: &LoadReport) -> String {
    format!(
        "  \"{label}\": {{\n    \"connections\": {},\n    \"requests\": {},\n    \
         \"elapsed_secs\": {:.3},\n    \"req_per_sec\": {:.1},\n    \
         \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}},\n    \
         \"status_200\": {},\n    \"status_429\": {},\n    \"status_5xx\": {},\n    \
         \"resets\": {},\n    \"abandoned\": {}\n  }}",
        connections,
        report.requests,
        report.elapsed.as_secs_f64(),
        report.req_per_sec(),
        report.p50_us(),
        report.p99_us(),
        report.p999_us(),
        report.max_us(),
        report.count(200),
        report.count(429),
        report.count_5xx(),
        report.resets,
        report.abandoned,
    )
}

/// The commit the bench ran at: `GITHUB_SHA` in CI, `git rev-parse
/// HEAD` on a developer checkout, `"unknown"` anywhere else. Keys the
/// report history so regressions are attributable to a commit.
fn bench_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Builds the new report file contents: the existing JSON array (if the
/// file holds one — the pre-history single-object format starts fresh)
/// with `entry` appended. The format stays plain enough to assemble
/// without a serializer: entries are joined inside one `[ … ]`.
fn append_history(path: &str, entry: &str) -> String {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim();
    let prior = trimmed
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .map(str::trim)
        .filter(|s| !s.is_empty());
    match prior {
        Some(entries) => format!("[\n{entries},\n{entry}\n]\n"),
        None => format!("[\n{entry}\n]\n"),
    }
}

fn bench(args: &Args) -> Result<(), ArgError> {
    let conns: usize = args.get_parsed("bench-conns", 512usize)?;
    let secs: u64 = args.get_parsed("bench-secs", 5u64)?;
    let out = args
        .get("bench-out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let service = build_service(args)?;
    // The bench key gets an effectively bottomless service-side ledger
    // and an unlimited tenant bucket: the bench measures the serving
    // path, not quota behavior.
    service.quota().register("bench", u64::MAX / 2);
    let mut config = server_config(args)?;
    // Both servers must hold every bench connection at once.
    config.max_connections = config.max_connections.max(conns + 16);

    // Like-for-like: each server gets its own front (fresh counters),
    // same service, same config.
    let evloop_front = build_front(args, &service)?;
    evloop_front
        .tenants()
        .register("bench", QuotaGovernor::unlimited());
    let evloop = EvloopServer::bind("127.0.0.1:0", evloop_front, config.clone())
        .map_err(|e| ArgError(format!("cannot bind event-loop server: {e}")))?;

    let blocking_front = build_front(args, &service)?;
    blocking_front
        .tenants()
        .register("bench", QuotaGovernor::unlimited());
    let blocking = Server::bind("127.0.0.1:0", blocking_front, config.clone())
        .map_err(|e| ArgError(format!("cannot bind blocking server: {e}")))?;

    let load = LoadConfig {
        connections: conns,
        duration: Duration::from_secs(secs),
        ..LoadConfig::default()
    };
    // The thread-pool server parks one worker per live connection, so
    // driving it with more connections than workers just measures
    // accept-queue starvation; clamp for a fair closed-loop comparison.
    let blocking_load = LoadConfig {
        connections: conns.min(config.workers),
        ..load.clone()
    };

    let ev_report = drive("evloop", &evloop.base_url(), &load)?;
    let bl_report = drive("blocking", &blocking.base_url(), &blocking_load)?;
    evloop.shutdown();
    blocking.shutdown();

    let entry = format!(
        "{{\n  \"sha\": \"{}\",\n{},\n{}\n}}",
        bench_sha(),
        report_json("evloop", load.connections, &ev_report),
        report_json("blocking", blocking_load.connections, &bl_report),
    );
    let json = append_history(&out, &entry);
    std::fs::write(&out, &json).map_err(|e| ArgError(format!("write {out}: {e}")))?;
    println!("bench report appended to {out}");

    let failures = ev_report.count_5xx()
        + bl_report.count_5xx()
        + ev_report.resets
        + bl_report.resets
        + ev_report.abandoned
        + bl_report.abandoned;
    if failures > 0 {
        return Err(ArgError(format!(
            "bench failed: {} 5xx, {} resets, {} abandoned across both servers",
            ev_report.count_5xx() + bl_report.count_5xx(),
            ev_report.resets + bl_report.resets,
            ev_report.abandoned + bl_report.abandoned,
        )));
    }
    if ev_report.requests == 0 || bl_report.requests == 0 {
        return Err(ArgError(
            "bench failed: a server completed zero requests".into(),
        ));
    }
    Ok(())
}
