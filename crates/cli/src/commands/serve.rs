//! `ytaudit serve` — run the simulated Data API on a real socket.

use crate::args::{ArgError, Args};
use std::sync::Arc;
use ytaudit_api::service::FaultConfig;
use ytaudit_api::{ApiService, RESEARCHER_DAILY_QUOTA};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SimClock};

/// Usage text.
pub const USAGE: &str = "\
ytaudit serve — start the simulated YouTube Data API v3

OPTIONS:
    --addr <host:port>      bind address        (default 127.0.0.1:8080)
    --scale <f64>           corpus scale        (default 1.0)
    --seed <u64>            corpus seed         (default the calibrated seed)
    --researcher-key <KEY>  register KEY with researcher-program quota
                            (repeatable; all other keys get 10 000/day)
    --miss-rate <f64>       Videos.list metadata-miss rate (default 0.012)
    --error-rate <f64>      transient 500 rate             (default 0.0)

The server understands the X-Sim-Time request header and the
POST /admin/clock endpoint for time travel; see README.md.";

/// Runs the command (blocks until ctrl-c).
pub fn run(args: &Args) -> Result<(), ArgError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let scale: f64 = args.get_parsed("scale", 1.0)?;
    let mut config = CorpusConfig {
        scale,
        ..CorpusConfig::default()
    };
    if let Some(seed) = args.get("seed") {
        config.seed = seed
            .parse()
            .map_err(|_| ArgError(format!("invalid --seed {seed:?}")))?;
    }
    let faults = FaultConfig {
        metadata_miss_rate: args.get_parsed("miss-rate", 0.012)?,
        backend_error_rate: args.get_parsed("error-rate", 0.0)?,
    };
    eprintln!("[serve] generating corpus (scale {scale})…");
    let platform = Platform::new(Corpus::generate(config));
    eprintln!(
        "[serve] corpus ready: {} videos, {} channels, {} comments",
        platform.corpus().video_count(),
        platform.corpus().channels.len(),
        platform.corpus().comments.len()
    );
    let service = Arc::new(
        ApiService::new(Arc::new(platform), SimClock::at_audit_start()).with_faults(faults),
    );
    for key in args.get_all("researcher-key") {
        service.quota().register(key, RESEARCHER_DAILY_QUOTA);
        eprintln!("[serve] registered researcher key {key:?}");
    }
    let server = ytaudit_api::serve(service, &addr)
        .map_err(|e| ArgError(format!("cannot bind {addr}: {e}")))?;
    println!("listening on {}", server.base_url());
    println!("try: curl '{}/youtube/v3/search?part=snippet&q=higgs+boson&type=video&key=demo'", server.base_url());
    // Block forever; the process exits on signal.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
