//! Command implementations.

pub mod analyze;
pub mod collect;
pub mod dist;
pub mod lint;
pub mod quota;
pub mod serve;
pub mod store;
pub mod topics;

/// Per-command usage text for `--help`.
pub fn usage_for(command: &str) -> Option<&'static str> {
    Some(match command {
        "serve" => serve::USAGE,
        "collect" => collect::USAGE,
        "coordinate" => dist::COORDINATE_USAGE,
        "work" => dist::WORK_USAGE,
        "analyze" => analyze::USAGE,
        "lint" => lint::USAGE,
        "quota" => quota::USAGE,
        "store" => store::USAGE,
        "topics" => topics::USAGE,
        _ => return None,
    })
}

/// Writes `contents` to `path` atomically and durably: a full write to
/// `<path>.tmp`, an fsync of the temp file, a rename, and an fsync of
/// the parent directory — so a crash at any point leaves either the old
/// file or the complete new one, and a completed call survives power
/// loss. (Plain `fs::write` + rename only guarantees atomicity, not
/// durability: the rename can land before the data does.)
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    let dir = std::path::Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Parses a `--topics` value (`all` or comma-separated keys).
pub fn parse_topics(raw: Option<&str>) -> Result<Vec<ytaudit_types::Topic>, crate::args::ArgError> {
    use ytaudit_types::Topic;
    match raw {
        None | Some("all") => Ok(Topic::ALL.to_vec()),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|key| {
                Topic::ALL
                    .into_iter()
                    .find(|t| t.key() == key)
                    .ok_or_else(|| {
                        crate::args::ArgError(format!(
                            "unknown topic {key:?}; valid keys: {}",
                            Topic::ALL
                                .iter()
                                .map(|t| t.key())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::Topic;

    #[test]
    fn topics_parse() {
        assert_eq!(parse_topics(None).unwrap().len(), 6);
        assert_eq!(parse_topics(Some("all")).unwrap().len(), 6);
        assert_eq!(
            parse_topics(Some("blm,higgs")).unwrap(),
            vec![Topic::Blm, Topic::Higgs]
        );
        assert!(parse_topics(Some("nope")).is_err());
    }

    #[test]
    fn usage_exists_for_all_commands() {
        for cmd in [
            "serve",
            "collect",
            "coordinate",
            "work",
            "analyze",
            "quota",
            "store",
            "topics",
        ] {
            assert!(usage_for(cmd).is_some(), "{cmd}");
        }
        assert!(usage_for("bogus").is_none());
    }
}
