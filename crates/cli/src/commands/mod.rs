//! Command implementations.

pub mod analyze;
pub mod collect;
pub mod dist;
pub mod lint;
pub mod quota;
pub mod serve;
pub mod store;
pub mod topics;

/// Per-command usage text for `--help`.
pub fn usage_for(command: &str) -> Option<&'static str> {
    Some(match command {
        "serve" => serve::USAGE,
        "collect" => collect::USAGE,
        "coordinate" => dist::COORDINATE_USAGE,
        "work" => dist::WORK_USAGE,
        "analyze" => analyze::USAGE,
        "lint" => lint::USAGE,
        "quota" => quota::USAGE,
        "store" => store::USAGE,
        "topics" => topics::USAGE,
        _ => return None,
    })
}

/// Writes `contents` to `path` atomically: a full write to `<path>.tmp`
/// followed by a rename, so a crash mid-write can never leave a
/// truncated file at the destination.
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Parses a `--topics` value (`all` or comma-separated keys).
pub fn parse_topics(raw: Option<&str>) -> Result<Vec<ytaudit_types::Topic>, crate::args::ArgError> {
    use ytaudit_types::Topic;
    match raw {
        None | Some("all") => Ok(Topic::ALL.to_vec()),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|key| {
                Topic::ALL
                    .into_iter()
                    .find(|t| t.key() == key)
                    .ok_or_else(|| {
                        crate::args::ArgError(format!(
                            "unknown topic {key:?}; valid keys: {}",
                            Topic::ALL
                                .iter()
                                .map(|t| t.key())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::Topic;

    #[test]
    fn topics_parse() {
        assert_eq!(parse_topics(None).unwrap().len(), 6);
        assert_eq!(parse_topics(Some("all")).unwrap().len(), 6);
        assert_eq!(
            parse_topics(Some("blm,higgs")).unwrap(),
            vec![Topic::Blm, Topic::Higgs]
        );
        assert!(parse_topics(Some("nope")).is_err());
    }

    #[test]
    fn usage_exists_for_all_commands() {
        for cmd in [
            "serve",
            "collect",
            "coordinate",
            "work",
            "analyze",
            "quota",
            "store",
            "topics",
        ] {
            assert!(usage_for(cmd).is_some(), "{cmd}");
        }
        assert!(usage_for("bogus").is_none());
    }
}
