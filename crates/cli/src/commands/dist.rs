//! `ytaudit coordinate` / `ytaudit work` — distribute a collection
//! plan across processes: the coordinator leases topic ranges over
//! HTTP, workers execute them through the ordinary scheduler and ship
//! their shard stores back for a byte-canonical merge.

use crate::args::{ArgError, Args};
use crate::commands::collect::{build_backend, plan_config, Backend};
use crate::commands::parse_topics;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use ytaudit_dist::{run_worker, Coordinator, HttpChannel, WorkerConfig};
use ytaudit_net::server::{Server, ServerConfig};
use ytaudit_platform::clock::RealClock;
use ytaudit_sched::SchedulerConfig;

/// Usage text for `ytaudit coordinate`.
pub const COORDINATE_USAGE: &str = "\
ytaudit coordinate — lease a collection plan to workers over HTTP

PLAN (same flags as `ytaudit collect`):
    --topics <keys|all>      comma-separated topic keys      (default all)
    --snapshots <N>          number of snapshots             (default 4)
    --interval-days <N>      days between snapshots          (default 5)
    --paper                  use the paper's exact 16-snapshot schedule
    --no-metadata            skip Videos.list fetches
    --no-channels            skip Channels.list fetches
    --no-comments            skip comment crawls (default: fetched)

COORDINATION:
    --store <file.yts>       merge destination; shard stores are received
                             beside it under the `store merge` naming
                             scheme (required; must not exist yet)
    --shards <N>             topic ranges to lease, plus the channels-only
                             finish range granted once every topic range
                             has committed                   (default 2)
    --listen <host:port>     bind address                    (default 127.0.0.1:0)
    --ttl-secs <N>           lease time-to-live; a worker that stops
                             renewing for this long forfeits its range
                             and the lease is re-issued      (default 30)
    --merge                  once every range has committed, fold the
                             received shards into --store (otherwise run
                             `ytaudit store merge <store>` afterwards)

The coordinator serves GET /dist/status and GET /dist/metrics for
observability, restarts crash-safe (committed shards are re-adopted
from disk), and exits once every range — including the finish range —
has been shipped and installed. Duplicate ships from stale leases are
verified no-ops, so the merged store is byte-identical to a
single-sink `ytaudit collect --store` run of the same plan.";

/// Usage text for `ytaudit work`.
pub const WORK_USAGE: &str = "\
ytaudit work — execute leased ranges for a `ytaudit coordinate` process

OPTIONS:
    --coordinator <URL>      coordinator base URL (required), e.g.
                             http://127.0.0.1:4321
    --workdir <dir>          where local shard stores are staged before
                             shipping                        (default dist-work)
    --name <worker name>     name reported on lease requests (default worker)
    --key <API KEY>          API key for collection          (default cli-key)
    --workers <N>            scheduler workers per leased range (default 2)
    --scale <f64>            in-process corpus scale         (default 1.0)
    --seed <u64>             in-process corpus seed
    --base-url <URL>         collect against a served API instead of an
                             in-process platform (every worker process must
                             then share that API so shards agree)

The worker leases ranges until the coordinator reports the plan done:
each range runs through the ordinary scheduler into a local shard
store (crash-resumable, like `collect --resume`), is shipped back in
CRC-checked chunks, and committed exactly once — a lease lost to a ttl
expiry simply abandons the range to whichever worker re-leased it.";

/// Runs `ytaudit coordinate`.
pub fn coordinate(args: &Args) -> Result<(), ArgError> {
    let topics = parse_topics(args.get("topics"))?;
    let config = plan_config(args, topics)?;
    let store = args
        .get("store")
        .ok_or_else(|| ArgError("--store is required".into()))?
        .to_string();
    let shards: usize = args.get_parsed("shards", 2)?;
    let ttl_secs: u64 = args.get_parsed("ttl-secs", 30)?;
    if ttl_secs == 0 {
        return Err(ArgError("--ttl-secs must be at least 1".into()));
    }
    let listen = args.get("listen").unwrap_or("127.0.0.1:0").to_string();

    let coordinator = Coordinator::new(
        &config,
        shards,
        Path::new(&store),
        Duration::from_secs(ttl_secs),
        Arc::new(RealClock::default()),
    )
    .map_err(|e| ArgError(format!("cannot start coordinator: {e}")))?;
    let coordinator = Arc::new(coordinator);
    let handler: Arc<dyn ytaudit_net::Handler> = Arc::clone(&coordinator) as _;
    let server = Server::bind(&listen, handler, ServerConfig::default())
        .map_err(|e| ArgError(format!("cannot bind {listen}: {e}")))?;
    let total = coordinator.plan().total_ranges();
    println!(
        "coordinating {} topic ranges + finish on {}",
        total - 1,
        server.base_url()
    );
    println!("workers:  ytaudit work --coordinator {}", server.base_url());
    println!("status:   {}/dist/status", server.base_url());
    println!("metrics:  {}/dist/metrics", server.base_url());

    // Poll for completion; the protocol work all happens on server
    // threads, so this loop only watches the lease table.
    while !coordinator.all_committed() {
        std::thread::sleep(Duration::from_millis(200));
    }
    eprint!("{}", coordinator.metrics_page());
    server.shutdown();

    if args.flag("merge") {
        let report = coordinator
            .merge()
            .map_err(|e| ArgError(format!("merge failed: {e}")))?;
        println!(
            "merged {} shards into {store}: {} pairs, {} bytes",
            total, report.pairs_merged, report.bytes
        );
    } else {
        println!("all ranges committed; fold the shards with `ytaudit store merge {store}`");
    }
    Ok(())
}

/// Runs `ytaudit work`.
pub fn work(args: &Args) -> Result<(), ArgError> {
    let url = args
        .get("coordinator")
        .ok_or_else(|| ArgError("--coordinator is required".into()))?;
    let workdir = args.get("workdir").unwrap_or("dist-work").to_string();
    let name = args.get("name").unwrap_or("worker").to_string();
    let key = args.get("key").unwrap_or("cli-key").to_string();
    let workers: usize = args.get_parsed("workers", 2)?;
    let backend = build_backend(args, &key, "work")?;
    if !matches!(backend, Backend::Http(_)) && args.get("base-url").is_none() {
        eprintln!(
            "[work] note: using a private in-process platform; run every worker with \
             the same --scale/--seed (the defaults agree) so shards describe one corpus"
        );
    }

    let chan = HttpChannel::new(url)
        .map_err(|e| ArgError(format!("invalid --coordinator {url:?}: {e}")))?;
    let cfg = WorkerConfig::new(&name, &workdir, SchedulerConfig::new(workers, &key));
    let factory = backend.factory(1);
    let report = run_worker(&chan, factory.as_ref(), &cfg)
        .map_err(|e| ArgError(format!("worker failed: {e}")))?;
    println!(
        "worker {name}: {} leases, {} committed, {} duplicate, {} abandoned, {} waits",
        report.leases, report.committed, report.duplicates, report.abandoned, report.waits
    );
    Ok(())
}
