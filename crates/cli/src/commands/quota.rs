//! `ytaudit quota` — price a collection plan in quota units.

use crate::args::{ArgError, Args};
use ytaudit_api::{DEFAULT_DAILY_QUOTA, RESEARCHER_DAILY_QUOTA};
use ytaudit_client::budget::price;

/// Usage text.
pub const USAGE: &str = "\
ytaudit quota — price a collection plan

USAGE:
    ytaudit quota --searches <N> [--id-calls <M>] [--daily <LIMIT>]
    ytaudit quota --paper               price the paper's full collection

OPTIONS:
    --searches <N>    number of Search.list calls (100 units each)
    --id-calls <M>    number of ID-based calls (1 unit each; default 0)
    --daily <LIMIT>   your key's daily quota (default 10 000)
    --paper           shorthand for one snapshot of the paper's design:
                      4 032 searches + ~1 500 ID calls, ×16 snapshots";

/// Runs the command.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let daily: u64 = args.get_parsed("daily", DEFAULT_DAILY_QUOTA)?;
    let (searches, id_calls, label) = if args.flag("paper") {
        // 24 h × 28 d × 6 topics searches per snapshot, 16 snapshots;
        // ID calls: ~14 Videos.list pages × 6 topics × 16 + channels +
        // comments ≈ 1 500 per snapshot-equivalent.
        (4_032u64 * 16, 24_000u64, "the paper's full 16-snapshot collection")
    } else {
        let searches: u64 = args
            .get("searches")
            .ok_or_else(|| ArgError("quota needs --searches (or --paper); see --help".into()))?
            .parse()
            .map_err(|_| ArgError("invalid --searches".into()))?;
        let id_calls: u64 = args.get_parsed("id-calls", 0)?;
        (searches, id_calls, "your plan")
    };
    let units = price(searches, id_calls);
    println!("plan: {label}");
    println!("  search calls : {searches:>10}  × 100 units = {:>10}", searches * 100);
    println!("  id calls     : {id_calls:>10}  ×   1 unit  = {id_calls:>10}");
    println!("  total        : {units:>10} units");
    println!();
    println!(
        "  with a {daily}-unit/day key : {:.1} key-days",
        units as f64 / daily as f64
    );
    println!(
        "  with the default key ({DEFAULT_DAILY_QUOTA}/day) : {:.1} key-days",
        units as f64 / DEFAULT_DAILY_QUOTA as f64
    );
    println!(
        "  with a researcher key ({RESEARCHER_DAILY_QUOTA}/day) : {:.2} key-days",
        units as f64 / RESEARCHER_DAILY_QUOTA as f64
    );
    if units > daily {
        println!(
            "\n  ⚠ the plan exceeds one day of your quota; the Search endpoint\n\
             \u{2002}\u{2002}'is not designed for volume' — consider the ID-based pipeline\n\
             \u{2002}\u{2002}or narrower queries (see `ytaudit topics` and the paper's §6.1)."
        );
    }
    Ok(())
}
