//! `ytaudit store` — inspect and maintain snapshot stores.

use crate::args::{ArgError, Args};
use crate::commands::write_atomic;
use std::path::{Path, PathBuf};
use ytaudit_store::{discover_shard_paths, discover_shard_paths_in, merge_shards, Store};

/// Usage text.
pub const USAGE: &str = "\
ytaudit store — inspect and maintain snapshot stores (.yts files)

USAGE:
    ytaudit store info        <file.yts>
    ytaudit store verify      <file.yts>
    ytaudit store compact     <file.yts> [--out <dest.yts>]
    ytaudit store merge       <dest.yts> [shard.yts | dir | glob ...]
    ytaudit store export-json <file.yts> [--out dataset.json]

ACTIONS:
    info          show size, record counts, dedup ratio, and collection
                  progress
    verify        read-only integrity check: every frame's checksum, every
                  record's decode, every commit's references; exits
                  non-zero on damage
    compact       rewrite committed data into a fresh file, dropping
                  orphan records and dead segments (in place via
                  tmp+rename unless --out names a destination)
    merge         fold the shard stores of a `collect --shards` (or
                  `coordinate`) run into one canonical store at
                  <dest.yts>, byte-identical to a single-sink collection.
                  With no shard arguments, shards are discovered next to
                  <dest.yts> by their canonical names; each argument may
                  be a shard file, a directory to discover shards in, or
                  a `*` glob (quote it past the shell). Crash-safe: an
                  interrupted merge resumes from its `.merging` file
    export-json   materialize the store as a legacy JSON dataset
                  (equivalent to `ytaudit collect --out`)";

/// Runs the command.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let action = args
        .positional(1)
        .ok_or_else(|| ArgError("store needs an action; see `ytaudit store --help`".into()))?;
    let spath = args
        .positional(2)
        .ok_or_else(|| ArgError(format!("store {action} needs a store path")))?;
    let path = Path::new(spath);
    match action {
        "info" => info(spath, path),
        "verify" => verify(spath, path),
        "compact" => compact(spath, path, args.get("out")),
        "merge" => merge(spath, path, &args.positionals()[3..]),
        "export-json" => export_json(spath, path, args.get("out").unwrap_or("dataset.json")),
        other => Err(ArgError(format!(
            "unknown store action {other:?}; see `ytaudit store --help`"
        ))),
    }
}

fn open(spath: &str, path: &Path) -> Result<Store, ArgError> {
    Store::open(path).map_err(|e| ArgError(format!("cannot open store {spath}: {e}")))
}

fn info(spath: &str, path: &Path) -> Result<(), ArgError> {
    let store = open(spath, path)?;
    let s = store.stats();
    println!("store {spath}");
    println!(
        "  size:      {} bytes, {} segments, {} records",
        s.log_len, s.segments, s.records
    );
    println!(
        "  blobs:     {} unique ({} bytes), {} references, dedup ×{:.2}",
        s.blobs,
        s.blob_bytes,
        s.refs_total,
        s.dedup_ratio()
    );
    match s.planned_pairs {
        Some(planned) => println!(
            "  progress:  {}/{planned} (topic, snapshot) pairs committed, complete: {}",
            s.committed_pairs,
            if s.complete { "yes" } else { "no" }
        ),
        None => println!("  progress:  no collection started"),
    }
    println!("  quota:     {} units recorded", s.quota_units);
    if s.recovered_bytes > 0 {
        println!(
            "  recovered: {} bytes of torn tail discarded on open",
            s.recovered_bytes
        );
    }
    Ok(())
}

fn verify(spath: &str, path: &Path) -> Result<(), ArgError> {
    let report = Store::verify_path(path)
        .map_err(|e| ArgError(format!("cannot verify {spath}: {e}")))?;
    println!(
        "verified {spath}: {} records in {} bytes, {} blobs, {} commits{}",
        report.records,
        report.file_len,
        report.blobs,
        report.commits,
        if report.complete { ", complete" } else { "" }
    );
    if report.torn_tail_bytes > 0 {
        println!(
            "  torn tail: {} bytes past byte {} (an interrupted append; reopening the \
             store will truncate it)",
            report.torn_tail_bytes, report.valid_len
        );
    }
    if let Some(error) = &report.first_error {
        return Err(ArgError(format!("{spath} is damaged: {error}")));
    }
    if report.torn_tail_bytes > 0 {
        return Err(ArgError(format!("{spath} has a torn tail (recoverable)")));
    }
    println!("  ok");
    Ok(())
}

fn compact(spath: &str, path: &Path, out: Option<&str>) -> Result<(), ArgError> {
    let mut store = open(spath, path)?;
    let before = store.stats().log_len;
    match out {
        Some(dest) => {
            if Path::new(dest).exists() {
                return Err(ArgError(format!("{dest} already exists")));
            }
            let compacted = store
                .compact(Path::new(dest))
                .map_err(|e| ArgError(format!("compaction failed: {e}")))?;
            println!(
                "compacted {spath} ({before} bytes) into {dest} ({} bytes)",
                compacted.stats().log_len
            );
        }
        None => {
            let compacted = store
                .compact_in_place()
                .map_err(|e| ArgError(format!("compaction failed: {e}")))?;
            let after = compacted.stats().log_len;
            println!("compacted {spath} in place: {before} → {after} bytes");
        }
    }
    Ok(())
}

/// Expands one `store merge` shard argument: a directory discovers the
/// canonically named shards inside it, a `*` pattern matches file names
/// in its parent directory, anything else is a literal path.
fn expand_shard_arg(dest: &Path, raw: &str) -> Result<Vec<PathBuf>, ArgError> {
    let path = Path::new(raw);
    if path.is_dir() {
        return discover_shard_paths_in(dest, path)
            .map_err(|e| ArgError(format!("cannot discover shards in {raw}: {e}")));
    }
    let pattern = path.file_name().and_then(|n| n.to_str()).unwrap_or(raw);
    if !pattern.contains('*') {
        return Ok(vec![path.to_path_buf()]);
    }
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ArgError(format!("cannot read directory {}: {e}", dir.display())))?;
    let mut matches: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|name| glob_match(pattern, name))
        })
        .map(|e| e.path())
        .collect();
    if matches.is_empty() {
        return Err(ArgError(format!("no files match {raw:?}")));
    }
    matches.sort();
    Ok(matches)
}

/// Matches a `*`-only glob (no `?`, no character classes): the literal
/// pieces between stars must appear in order, with the first and last
/// anchored to the ends of the name.
fn glob_match(pattern: &str, name: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    let Some((first, rest_parts)) = parts.split_first() else {
        return name.is_empty();
    };
    if parts.len() == 1 {
        return pattern == name;
    }
    let Some(mut rest) = name.strip_prefix(first) else {
        return false;
    };
    for (i, part) in rest_parts.iter().enumerate() {
        if i == rest_parts.len() - 1 {
            return rest.ends_with(part);
        }
        match rest.find(part) {
            Some(pos) => rest = &rest[pos + part.len()..],
            None => return false,
        }
    }
    true
}

fn merge(spath: &str, dest: &Path, explicit: &[String]) -> Result<(), ArgError> {
    let shard_paths: Vec<PathBuf> = if explicit.is_empty() {
        discover_shard_paths(dest)
            .map_err(|e| ArgError(format!("cannot discover shards for {spath}: {e}")))?
    } else {
        let mut paths = Vec::new();
        for raw in explicit {
            paths.append(&mut expand_shard_arg(dest, raw)?);
        }
        paths.sort();
        paths.dedup();
        paths
    };
    eprintln!("[store] merging {} shard stores into {spath}…", shard_paths.len());
    for p in &shard_paths {
        eprintln!("[store]   {}", p.display());
    }
    let report = merge_shards(dest, &shard_paths)
        .map_err(|e| ArgError(format!("merge failed: {e}")))?;
    println!(
        "merged {} shard stores into {spath}: {}/{} pairs ({} re-committed this run{}), \
         {} bytes",
        shard_paths.len(),
        report.pairs_total,
        report.pairs_total,
        report.pairs_merged,
        if report.resumed {
            ", resumed from an interrupted merge"
        } else {
            ""
        },
        report.bytes
    );
    println!(
        "the shard files are no longer needed; verify with `ytaudit store verify {spath}` \
         and delete them when satisfied"
    );
    Ok(())
}

fn export_json(spath: &str, path: &Path, out: &str) -> Result<(), ArgError> {
    let mut store = open(spath, path)?;
    let dataset = store
        .load_dataset()
        .map_err(|e| ArgError(format!("cannot load dataset from {spath}: {e}")))?;
    let json = dataset
        .to_json()
        .map_err(|e| ArgError(format!("cannot serialize dataset: {e}")))?;
    write_atomic(out, &json).map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {out}: {} snapshots, {} videos with metadata, {} channels, {} quota units",
        dataset.len(),
        dataset.video_meta.len(),
        dataset.channel_meta.len(),
        dataset.quota_units_spent
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matches_star_patterns() {
        assert!(glob_match("audit.shard-*.yts", "audit.shard-higgs.yts"));
        assert!(glob_match("audit.shard-*.yts", "audit.shard-0.yts"));
        assert!(!glob_match("audit.shard-*.yts", "audit.channels.yts"));
        assert!(!glob_match("audit.shard-*.yts", "other.shard-0.yts"));
        assert!(!glob_match("audit.shard-*.yts", "audit.shard-0.yts.bak"));
        assert!(glob_match("*.yts", "a.yts"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-c"));
        assert!(!glob_match("a*a", "a"));
        assert!(glob_match("exact.yts", "exact.yts"));
        assert!(!glob_match("exact.yts", "other.yts"));
    }

    #[test]
    fn expand_falls_back_to_literal_paths() {
        let dest = Path::new("audit.yts");
        assert_eq!(
            expand_shard_arg(dest, "some/literal.yts").unwrap(),
            vec![PathBuf::from("some/literal.yts")]
        );
        assert!(expand_shard_arg(dest, "no-such-dir/*.yts").is_err());
    }

    #[test]
    fn expand_discovers_in_directory_and_glob() {
        let dir = ytaudit_store::TempDir::new("cli-merge-expand");
        let dest = dir.file("audit.yts");
        let a = dir.file("audit.shard-0.yts");
        let b = dir.file("audit.shard-1.yts");
        let c = dir.file("audit.channels.yts");
        for p in [&a, &b, &c] {
            std::fs::write(p, b"x").unwrap();
        }
        std::fs::write(dir.file("unrelated.yts"), b"x").unwrap();

        let dir_arg = dir.path().to_str().unwrap().to_string();
        let mut expected = vec![a.clone(), b.clone(), c.clone()];
        expected.sort();
        assert_eq!(expand_shard_arg(&dest, &dir_arg).unwrap(), expected);

        let glob_arg = format!("{dir_arg}/audit.shard-*.yts");
        let mut shards_only = vec![a, b];
        shards_only.sort();
        assert_eq!(expand_shard_arg(&dest, &glob_arg).unwrap(), shards_only);
    }
}
