//! `ytaudit store` — inspect and maintain snapshot stores.

use crate::args::{ArgError, Args};
use crate::commands::write_atomic;
use std::path::{Path, PathBuf};
use ytaudit_store::{discover_shard_paths, merge_shards, Store};

/// Usage text.
pub const USAGE: &str = "\
ytaudit store — inspect and maintain snapshot stores (.yts files)

USAGE:
    ytaudit store info        <file.yts>
    ytaudit store verify      <file.yts>
    ytaudit store compact     <file.yts> [--out <dest.yts>]
    ytaudit store merge       <dest.yts> [shard.yts ...]
    ytaudit store export-json <file.yts> [--out dataset.json]

ACTIONS:
    info          show size, record counts, dedup ratio, and collection
                  progress
    verify        read-only integrity check: every frame's checksum, every
                  record's decode, every commit's references; exits
                  non-zero on damage
    compact       rewrite committed data into a fresh file, dropping
                  orphan records and dead segments (in place via
                  tmp+rename unless --out names a destination)
    merge         fold the shard stores of a `collect --shards` run into
                  one canonical store at <dest.yts>, byte-identical to a
                  single-sink collection; shard paths are discovered next
                  to <dest.yts> unless listed explicitly. Crash-safe: an
                  interrupted merge resumes from its `.merging` file
    export-json   materialize the store as a legacy JSON dataset
                  (equivalent to `ytaudit collect --out`)";

/// Runs the command.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let action = args
        .positional(1)
        .ok_or_else(|| ArgError("store needs an action; see `ytaudit store --help`".into()))?;
    let spath = args
        .positional(2)
        .ok_or_else(|| ArgError(format!("store {action} needs a store path")))?;
    let path = Path::new(spath);
    match action {
        "info" => info(spath, path),
        "verify" => verify(spath, path),
        "compact" => compact(spath, path, args.get("out")),
        "merge" => merge(spath, path, &args.positionals()[3..]),
        "export-json" => export_json(spath, path, args.get("out").unwrap_or("dataset.json")),
        other => Err(ArgError(format!(
            "unknown store action {other:?}; see `ytaudit store --help`"
        ))),
    }
}

fn open(spath: &str, path: &Path) -> Result<Store, ArgError> {
    Store::open(path).map_err(|e| ArgError(format!("cannot open store {spath}: {e}")))
}

fn info(spath: &str, path: &Path) -> Result<(), ArgError> {
    let store = open(spath, path)?;
    let s = store.stats();
    println!("store {spath}");
    println!(
        "  size:      {} bytes, {} segments, {} records",
        s.log_len, s.segments, s.records
    );
    println!(
        "  blobs:     {} unique ({} bytes), {} references, dedup ×{:.2}",
        s.blobs,
        s.blob_bytes,
        s.refs_total,
        s.dedup_ratio()
    );
    match s.planned_pairs {
        Some(planned) => println!(
            "  progress:  {}/{planned} (topic, snapshot) pairs committed, complete: {}",
            s.committed_pairs,
            if s.complete { "yes" } else { "no" }
        ),
        None => println!("  progress:  no collection started"),
    }
    println!("  quota:     {} units recorded", s.quota_units);
    if s.recovered_bytes > 0 {
        println!(
            "  recovered: {} bytes of torn tail discarded on open",
            s.recovered_bytes
        );
    }
    Ok(())
}

fn verify(spath: &str, path: &Path) -> Result<(), ArgError> {
    let report = Store::verify_path(path)
        .map_err(|e| ArgError(format!("cannot verify {spath}: {e}")))?;
    println!(
        "verified {spath}: {} records in {} bytes, {} blobs, {} commits{}",
        report.records,
        report.file_len,
        report.blobs,
        report.commits,
        if report.complete { ", complete" } else { "" }
    );
    if report.torn_tail_bytes > 0 {
        println!(
            "  torn tail: {} bytes past byte {} (an interrupted append; reopening the \
             store will truncate it)",
            report.torn_tail_bytes, report.valid_len
        );
    }
    if let Some(error) = &report.first_error {
        return Err(ArgError(format!("{spath} is damaged: {error}")));
    }
    if report.torn_tail_bytes > 0 {
        return Err(ArgError(format!("{spath} has a torn tail (recoverable)")));
    }
    println!("  ok");
    Ok(())
}

fn compact(spath: &str, path: &Path, out: Option<&str>) -> Result<(), ArgError> {
    let mut store = open(spath, path)?;
    let before = store.stats().log_len;
    match out {
        Some(dest) => {
            if Path::new(dest).exists() {
                return Err(ArgError(format!("{dest} already exists")));
            }
            let compacted = store
                .compact(Path::new(dest))
                .map_err(|e| ArgError(format!("compaction failed: {e}")))?;
            println!(
                "compacted {spath} ({before} bytes) into {dest} ({} bytes)",
                compacted.stats().log_len
            );
        }
        None => {
            let compacted = store
                .compact_in_place()
                .map_err(|e| ArgError(format!("compaction failed: {e}")))?;
            let after = compacted.stats().log_len;
            println!("compacted {spath} in place: {before} → {after} bytes");
        }
    }
    Ok(())
}

fn merge(spath: &str, dest: &Path, explicit: &[String]) -> Result<(), ArgError> {
    let shard_paths: Vec<PathBuf> = if explicit.is_empty() {
        discover_shard_paths(dest)
            .map_err(|e| ArgError(format!("cannot discover shards for {spath}: {e}")))?
    } else {
        explicit.iter().map(PathBuf::from).collect()
    };
    eprintln!("[store] merging {} shard stores into {spath}…", shard_paths.len());
    for p in &shard_paths {
        eprintln!("[store]   {}", p.display());
    }
    let report = merge_shards(dest, &shard_paths)
        .map_err(|e| ArgError(format!("merge failed: {e}")))?;
    println!(
        "merged {} shard stores into {spath}: {}/{} pairs ({} re-committed this run{}), \
         {} bytes",
        shard_paths.len(),
        report.pairs_total,
        report.pairs_total,
        report.pairs_merged,
        if report.resumed {
            ", resumed from an interrupted merge"
        } else {
            ""
        },
        report.bytes
    );
    println!(
        "the shard files are no longer needed; verify with `ytaudit store verify {spath}` \
         and delete them when satisfied"
    );
    Ok(())
}

fn export_json(spath: &str, path: &Path, out: &str) -> Result<(), ArgError> {
    let mut store = open(spath, path)?;
    let dataset = store
        .load_dataset()
        .map_err(|e| ArgError(format!("cannot load dataset from {spath}: {e}")))?;
    let json = dataset
        .to_json()
        .map_err(|e| ArgError(format!("cannot serialize dataset: {e}")))?;
    write_atomic(out, &json).map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {out}: {} snapshots, {} videos with metadata, {} channels, {} quota units",
        dataset.len(),
        dataset.video_meta.len(),
        dataset.channel_meta.len(),
        dataset.quota_units_spent
    );
    Ok(())
}
