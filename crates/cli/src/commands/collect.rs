//! `ytaudit collect` — run an audit collection, writing the dataset as
//! JSON or committing it pair-by-pair to a crash-safe snapshot store.

use crate::args::{ArgError, Args};
use crate::commands::{parse_topics, write_atomic};
use std::path::Path;
use std::sync::Arc;
use ytaudit_api::ApiService;
use ytaudit_client::{HttpTransport, InProcessTransport, YouTubeClient};
use ytaudit_core::dataset::ChannelInfo;
use ytaudit_core::{Collector, CollectorConfig, CollectorSink, MemorySink, Schedule, TopicCommit};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SimClock};
use ytaudit_sched::{
    run_sharded, HttpFactory, InProcessFactory, MetricsRegistry, QuotaGovernor, RunOutcome,
    Scheduler, SchedulerConfig, TikTokFactory, TransportFactory,
};
use ytaudit_store::Store;
use ytaudit_tiktok_sim::{TikTokClient, TikTokService, TikTokTransport, RESEARCH_DAILY_REQUESTS};
use ytaudit_types::{ChannelId, PlatformKind, Timestamp, Topic};

/// Usage text.
pub const USAGE: &str = "\
ytaudit collect — run the paper's collection methodology

OPTIONS:
    --topics <keys|all>      comma-separated topic keys      (default all)
    --snapshots <N>          number of snapshots             (default 4)
    --interval-days <N>      days between snapshots          (default 5)
    --paper                  use the paper's exact 16-snapshot schedule
    --no-metadata            skip Videos.list fetches
    --no-channels            skip Channels.list fetches
    --no-comments            skip comment crawls (default: fetched)
    --platform <name>        backend to audit: youtube | tiktok (default
                             youtube; recorded in the store manifest, and a
                             store refuses --resume / merge / analyze under
                             a different platform)
    --scale <f64>            in-process corpus scale         (default 1.0)
    --seed <u64>             in-process corpus seed
    --base-url <URL>         collect against a served API instead of
                             an in-process platform
    --key <API KEY>          API key to use                  (default cli-key)
    --workers <N>            collect with N concurrent workers through the
                             scheduler (default 0 = classic sequential path;
                             the dataset is identical either way)
    --shards <N>             split the plan across N topic shards, one
                             scheduler per shard committing to its own
                             `<store>.shard-*.yts` next to --store; fold them
                             afterwards with `ytaudit store merge` — the merged
                             store is byte-identical to a single-sink run
                             (requires --store; --workers is divided across
                             shards)
    --rate <units/sec>       pace all workers through a shared quota governor
                             refilling this many quota units per second
                             (requires --workers or --shards; with --shards,
                             one governor paces every shard)
    --in-flight <N>          keep up to N HTTP requests pipelined per
                             connection (default 1 = plain keep-alive;
                             requires --base-url — the in-process transport
                             has no connections to pipeline; the dataset is
                             byte-identical at any depth)
    --out <file.json>        where to write the dataset      (default dataset.json;
                             with --store, only written when given explicitly)
    --store <file.yts>       commit to a crash-safe snapshot store instead
                             of holding everything in memory
    --resume                 continue an interrupted --store collection;
                             committed (topic, snapshot) pairs are skipped
                             without re-issuing any API calls

The in-process mode registers the key with unbounded quota; against a
served API you must have registered a researcher key (see `ytaudit serve`).";

/// A [`CollectorSink`] wrapper that prints one progress line per
/// committed `(topic, snapshot)` pair: position in the plan, the pair's
/// quota cost, and wall-clock elapsed.
struct Progress<S> {
    inner: S,
    started: std::time::Instant,
    schedule_len: usize,
    total_pairs: usize,
    done: usize,
    session_units: u64,
}

impl<S: CollectorSink> Progress<S> {
    fn new(inner: S) -> Progress<S> {
        Progress {
            inner,
            // ytlint: allow(determinism) — progress display reports real
            // wall-clock elapsed to the operator; it never feeds analysis
            started: std::time::Instant::now(),
            schedule_len: 0,
            total_pairs: 0,
            done: 0,
            session_units: 0,
        }
    }

    fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CollectorSink> CollectorSink for Progress<S> {
    fn begin(&mut self, config: &CollectorConfig) -> ytaudit_types::Result<()> {
        self.inner.begin(config)?;
        self.schedule_len = config.schedule.len();
        self.total_pairs = config.topics.len() * self.schedule_len;
        self.done = (0..self.schedule_len)
            .map(|idx| {
                config
                    .topics
                    .iter()
                    .filter(|&&t| self.inner.is_committed(t, idx))
                    .count()
            })
            .sum();
        if self.done > 0 {
            eprintln!(
                "[collect] resuming: {}/{} pairs already committed, skipping their API calls",
                self.done, self.total_pairs
            );
        }
        Ok(())
    }

    fn is_committed(&self, topic: Topic, snapshot: usize) -> bool {
        self.inner.is_committed(topic, snapshot)
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn known_channel_ids(&self) -> ytaudit_types::Result<Vec<ChannelId>> {
        self.inner.known_channel_ids()
    }

    fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> ytaudit_types::Result<()> {
        let (topic, snapshot, delta) = (commit.topic, commit.snapshot, commit.quota_delta);
        self.inner.commit_topic_snapshot(commit)?;
        self.done += 1;
        self.session_units += delta;
        eprintln!(
            "[collect] {:10} snapshot {:>2}/{} pair {:>3}/{}  +{} units ({} this run)  {:.1}s elapsed",
            topic.key(),
            snapshot + 1,
            self.schedule_len,
            self.done,
            self.total_pairs,
            delta,
            self.session_units,
            self.started.elapsed().as_secs_f64()
        );
        Ok(())
    }

    fn finish(
        &mut self,
        channels: &[ChannelInfo],
        quota_final_delta: u64,
    ) -> ytaudit_types::Result<()> {
        self.inner.finish(channels, quota_final_delta)?;
        self.session_units += quota_final_delta;
        eprintln!(
            "[collect] done: {} channels, +{} units ({} this run), {:.1}s elapsed",
            channels.len(),
            quota_final_delta,
            self.session_units,
            self.started.elapsed().as_secs_f64()
        );
        Ok(())
    }
}

/// Where API traffic goes: a served base URL or an in-process simulated
/// service. Built once, before choosing the sequential or scheduler
/// path, so every worker shares the same platform and quota ledger.
/// Shared with `ytaudit work`, whose workers pick a backend the same
/// way.
pub(crate) enum Backend {
    Http(String),
    InProcess(Arc<ApiService>),
    Tiktok(Arc<TikTokService>),
}

impl Backend {
    /// A single client for the classic sequential collector.
    fn client(&self, key: &str, in_flight: usize) -> Box<dyn ytaudit_core::Platform> {
        match self {
            Backend::Http(base) => Box::new(YouTubeClient::new(
                Box::new(HttpTransport::new(base.clone()).with_max_in_flight(in_flight)),
                key,
            )),
            Backend::InProcess(service) => Box::new(YouTubeClient::new(
                Box::new(InProcessTransport::new(Arc::clone(service))),
                key,
            )),
            Backend::Tiktok(service) => Box::new(TikTokClient::new(
                Box::new(TikTokTransport::new(Arc::clone(service))),
                key,
            )),
        }
    }

    /// A per-worker transport factory for the scheduler.
    pub(crate) fn factory(&self, in_flight: usize) -> Box<dyn TransportFactory> {
        match self {
            Backend::Http(base) => {
                Box::new(HttpFactory::new(base.clone()).with_max_in_flight(in_flight))
            }
            Backend::InProcess(service) => Box::new(InProcessFactory::new(Arc::clone(service))),
            Backend::Tiktok(service) => Box::new(TikTokFactory::new(Arc::clone(service))),
        }
    }
}

/// Forwards to the wrapped sink and prints the scheduler's live metrics
/// line after every committed pair.
struct MetricsLine<'a> {
    inner: &'a mut dyn CollectorSink,
    metrics: Arc<MetricsRegistry>,
}

impl CollectorSink for MetricsLine<'_> {
    fn begin(&mut self, config: &CollectorConfig) -> ytaudit_types::Result<()> {
        self.inner.begin(config)
    }

    fn is_committed(&self, topic: Topic, snapshot: usize) -> bool {
        self.inner.is_committed(topic, snapshot)
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn known_channel_ids(&self) -> ytaudit_types::Result<Vec<ChannelId>> {
        self.inner.known_channel_ids()
    }

    fn commit_topic_snapshot(&mut self, commit: TopicCommit<'_>) -> ytaudit_types::Result<()> {
        self.inner.commit_topic_snapshot(commit)?;
        eprintln!("[sched] {}", self.metrics.snapshot().progress_line());
        Ok(())
    }

    fn finish(
        &mut self,
        channels: &[ChannelInfo],
        quota_final_delta: u64,
    ) -> ytaudit_types::Result<()> {
        self.inner.finish(channels, quota_final_delta)
    }
}

/// Drives one collection into `sink`, either through the classic
/// sequential [`Collector`] (`workers == 0`) or through the concurrent
/// [`Scheduler`]. The scheduler path prints the metrics summary table
/// whether the run completed or drained early; a drained store is left
/// resumable, so the error message points at `--resume`.
#[allow(clippy::too_many_arguments)]
fn drive(
    backend: &Backend,
    config: &CollectorConfig,
    key: &str,
    workers: usize,
    rate: f64,
    in_flight: usize,
    sink: &mut dyn CollectorSink,
) -> Result<(), ArgError> {
    if workers == 0 {
        let client = backend.client(key, in_flight);
        return Collector::new(client.as_ref(), config.clone())
            .run_with_sink(sink)
            .map_err(|e| ArgError(format!("collection failed: {e}")));
    }
    let factory = backend.factory(in_flight);
    let mut scheduler = Scheduler::new(
        factory.as_ref(),
        config.clone(),
        SchedulerConfig::new(workers, key),
    );
    if rate > 0.0 {
        scheduler = scheduler.with_governor(QuotaGovernor::per_second(rate, rate));
    }
    let metrics = scheduler.metrics();
    let mut lined = MetricsLine {
        inner: sink,
        metrics,
    };
    let report = scheduler
        .run(&mut lined)
        .map_err(|e| ArgError(format!("collection failed: {e}")))?;
    eprint!("{}", report.metrics.render_table());
    match report.outcome {
        RunOutcome::Completed => Ok(()),
        RunOutcome::Drained { error: None } => {
            eprintln!(
                "[collect] shutdown requested: in-flight work drained, committed pairs \
                 are banked"
            );
            Ok(())
        }
        RunOutcome::Drained { error: Some(e) } => Err(ArgError(format!(
            "collection drained after error: {e}; committed pairs are banked \
             (rerun with --store … --resume to continue)"
        ))),
    }
}

/// Builds the collection plan from the shared schedule flags
/// (`--paper` / `--snapshots` / `--interval-days` / `--no-*`). Used by
/// both `collect` and `coordinate` so a distributed run describes
/// exactly the plan a local one would.
pub(crate) fn plan_config(
    args: &Args,
    topics: Vec<Topic>,
) -> Result<CollectorConfig, ArgError> {
    let schedule = if args.flag("paper") {
        Schedule::paper()
    } else {
        let snapshots: usize = args.get_parsed("snapshots", 4)?;
        let interval: i64 = args.get_parsed("interval-days", 5)?;
        Schedule::every(Timestamp::from_ymd_const(2025, 2, 9), interval, snapshots)
    };
    Ok(CollectorConfig {
        topics,
        schedule,
        hourly_bins: true,
        fetch_metadata: !args.flag("no-metadata"),
        fetch_channels: !args.flag("no-channels"),
        fetch_comments: !args.flag("no-comments"),
        shard: None,
        platform: parse_platform(args)?,
    })
}

/// Parses the shared `--platform` flag (default `youtube`).
pub(crate) fn parse_platform(args: &Args) -> Result<PlatformKind, ArgError> {
    match args.get("platform") {
        None => Ok(PlatformKind::Youtube),
        Some(name) => PlatformKind::from_str_opt(name).ok_or_else(|| {
            ArgError(format!(
                "invalid --platform {name:?}; expected 'youtube' or 'tiktok'"
            ))
        }),
    }
}

/// Builds the traffic backend from the shared `--base-url` /
/// `--scale` / `--seed` flags; the in-process path registers `key`
/// with effectively unbounded quota. Used by both `collect` and
/// `work`.
pub(crate) fn build_backend(args: &Args, key: &str, tag: &str) -> Result<Backend, ArgError> {
    let platform = parse_platform(args)?;
    if platform == PlatformKind::Tiktok && args.get("base-url").is_some() {
        return Err(ArgError(
            "--platform tiktok is in-process only; it cannot target a served \
             --base-url (`ytaudit serve` speaks the YouTube API)"
                .into(),
        ));
    }
    Ok(match args.get("base-url") {
        Some(base) => Backend::Http(base.to_string()),
        None => {
            let scale: f64 = args.get_parsed("scale", 1.0)?;
            let mut corpus_config = CorpusConfig {
                scale,
                ..CorpusConfig::default()
            };
            if let Some(seed) = args.get("seed") {
                corpus_config.seed = seed
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --seed {seed:?}")))?;
            }
            eprintln!(
                "[{tag}] generating in-process corpus (scale {scale}, platform {platform})…"
            );
            let corpus = Arc::new(Platform::new(Corpus::generate(corpus_config)));
            match platform {
                PlatformKind::Youtube => {
                    let service = Arc::new(ApiService::new(corpus, SimClock::at_audit_start()));
                    service.quota().register(key, u64::MAX / 2);
                    Backend::InProcess(service)
                }
                PlatformKind::Tiktok => {
                    let service =
                        Arc::new(TikTokService::new(corpus, SimClock::at_audit_start()));
                    service.ledger().register(key, RESEARCH_DAILY_REQUESTS);
                    Backend::Tiktok(service)
                }
            }
        }
    })
}

/// Runs the command.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let topics = parse_topics(args.get("topics"))?;
    let key = args.get("key").unwrap_or("cli-key").to_string();
    let store_path = args.get("store").map(str::to_string);
    let resume = args.flag("resume");
    if resume && store_path.is_none() {
        return Err(ArgError("--resume requires --store".into()));
    }
    let workers: usize = args.get_parsed("workers", 0)?;
    let shards: usize = args.get_parsed("shards", 0)?;
    let rate: f64 = args.get_parsed("rate", 0.0)?;
    if args.get("rate").is_some() && workers == 0 && shards == 0 {
        return Err(ArgError("--rate requires --workers or --shards".into()));
    }
    let in_flight: usize = args.get_parsed("in-flight", 1)?;
    if in_flight == 0 {
        return Err(ArgError("--in-flight must be at least 1".into()));
    }
    if in_flight > 1 && args.get("base-url").is_none() {
        return Err(ArgError(
            "--in-flight pipelines HTTP connections and requires --base-url; the \
             in-process transport has nothing to pipeline"
                .into(),
        ));
    }
    if shards > 0 && store_path.is_none() {
        return Err(ArgError("--shards requires --store".into()));
    }
    if shards > 0 && args.get("out").is_some() {
        return Err(ArgError(
            "--shards writes shard stores, not a dataset; run `ytaudit store merge` \
             then `ytaudit store export-json`"
                .into(),
        ));
    }

    let config = plan_config(args, topics)?;
    let backend = build_backend(args, &key, "collect")?;

    eprintln!(
        "[collect] {} topics × {} snapshots, hourly-binned{}{}…",
        config.topics.len(),
        config.schedule.len(),
        if workers > 0 {
            format!(", {workers} workers")
        } else {
            String::new()
        },
        if shards > 0 {
            format!(", {shards} shards")
        } else {
            String::new()
        }
    );
    if shards > 0 {
        let spath = store_path.as_deref().unwrap_or_default();
        return collect_sharded(
            &backend,
            &config,
            &key,
            workers,
            rate,
            in_flight,
            shards,
            Path::new(spath),
            resume,
        );
    }
    match store_path {
        Some(spath) => {
            let path = Path::new(&spath);
            let store = if path.exists() {
                if !resume {
                    return Err(ArgError(format!(
                        "{spath} already exists; pass --resume to continue it, or delete it \
                         to start over"
                    )));
                }
                Store::open(path)
                    .map_err(|e| ArgError(format!("cannot open store {spath}: {e}")))?
            } else {
                Store::create(path)
                    .map_err(|e| ArgError(format!("cannot create store {spath}: {e}")))?
            };
            if store.recovered_bytes() > 0 {
                eprintln!(
                    "[collect] recovered {spath}: discarded {} bytes of torn tail; the \
                     interrupted pair will be re-collected",
                    store.recovered_bytes()
                );
            }
            let mut sink = Progress::new(store);
            let outcome = drive(&backend, &config, &key, workers, rate, in_flight, &mut sink);
            let mut store = sink.into_inner();
            let stats = store.stats();
            println!(
                "store {spath}: {}/{} pairs committed, {} records, {} unique blobs \
                 (dedup ×{:.2}), {} quota units total",
                stats.committed_pairs,
                stats.planned_pairs.unwrap_or(0),
                stats.records,
                stats.blobs,
                stats.dedup_ratio(),
                stats.quota_units
            );
            outcome?;
            if let Some(out) = args.get("out") {
                let dataset = store
                    .load_dataset()
                    .map_err(|e| ArgError(format!("cannot load dataset from {spath}: {e}")))?;
                write_dataset_json(out, &dataset)?;
            }
        }
        None => {
            let out = args.get("out").unwrap_or("dataset.json").to_string();
            let mut sink = Progress::new(MemorySink::new());
            drive(&backend, &config, &key, workers, rate, in_flight, &mut sink)?;
            let dataset = sink.into_inner().into_dataset();
            write_dataset_json(&out, &dataset)?;
        }
    }
    Ok(())
}

/// Drives a sharded collection: one scheduler per topic shard, each
/// committing to its own `<dest>.shard-*.yts`, all paced through one
/// shared quota governor, plus the channels-only finish store. The
/// shard set folds back into a byte-canonical single store with
/// `ytaudit store merge <dest>`.
#[allow(clippy::too_many_arguments)]
fn collect_sharded(
    backend: &Backend,
    config: &CollectorConfig,
    key: &str,
    workers: usize,
    rate: f64,
    in_flight: usize,
    shards: usize,
    dest: &Path,
    resume: bool,
) -> Result<(), ArgError> {
    // `--workers` is the total budget, divided across shards; the
    // classic default (0) gives each shard a single worker.
    let per_shard = if workers == 0 {
        1
    } else {
        (workers / shards).max(1)
    };
    let governor = Arc::new(if rate > 0.0 {
        QuotaGovernor::per_second(rate, rate)
    } else {
        QuotaGovernor::unlimited()
    });
    let factory = backend.factory(in_flight);
    let report = run_sharded(
        factory.as_ref(),
        config,
        &SchedulerConfig::new(per_shard, key),
        shards,
        governor,
        dest,
        resume,
    )
    .map_err(|e| ArgError(format!("sharded collection failed: {e}")))?;
    for shard in &report.shards {
        let topics: Vec<&str> = shard.topics.iter().map(|t| t.key()).collect();
        eprintln!(
            "[collect] shard {} [{}] → {}: {} pairs this run, {} quota units, {}",
            shard.index,
            topics.join(","),
            shard.path.display(),
            shard.report.pairs_committed,
            shard.report.quota_units,
            if shard.report.completed() {
                "complete"
            } else {
                "drained"
            }
        );
    }
    if report.finished {
        eprintln!(
            "[collect] finish → {}: {} channels, +{} units",
            report.finish_path.display(),
            report.channels,
            report.finish_quota
        );
    }
    println!(
        "sharded collection: {} pairs this run across {} shards, {} quota units",
        report.pairs_committed(),
        report.shards.len(),
        report.quota_units()
    );
    if report.completed() {
        println!(
            "all shards complete; fold them with `ytaudit store merge {}`",
            dest.display()
        );
        Ok(())
    } else {
        Err(ArgError(
            "sharded collection drained early; committed pairs are banked \
             (rerun with --shards … --resume to continue)"
                .into(),
        ))
    }
}

/// Writes the dataset atomically (`<out>.tmp` + rename), so an
/// interrupted write can never leave a half-serialized dataset at the
/// target path.
fn write_dataset_json(out: &str, dataset: &ytaudit_core::AuditDataset) -> Result<(), ArgError> {
    let json = dataset
        .to_json()
        .map_err(|e| ArgError(format!("cannot serialize dataset: {e}")))?;
    write_atomic(out, &json).map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {out}: {} snapshots, {} videos with metadata, {} channels",
        dataset.len(),
        dataset.video_meta.len(),
        dataset.channel_meta.len()
    );
    Ok(())
}
