//! `ytaudit collect` — run an audit collection and write the dataset.

use crate::args::{ArgError, Args};
use crate::commands::parse_topics;
use std::sync::Arc;
use ytaudit_client::{HttpTransport, InProcessTransport, YouTubeClient};
use ytaudit_core::{Collector, CollectorConfig, Schedule};
use ytaudit_platform::{Corpus, CorpusConfig, Platform, SimClock};
use ytaudit_types::Timestamp;

/// Usage text.
pub const USAGE: &str = "\
ytaudit collect — run the paper's collection methodology

OPTIONS:
    --topics <keys|all>      comma-separated topic keys      (default all)
    --snapshots <N>          number of snapshots             (default 4)
    --interval-days <N>      days between snapshots          (default 5)
    --paper                  use the paper's exact 16-snapshot schedule
    --no-metadata            skip Videos.list fetches
    --no-channels            skip Channels.list fetches
    --no-comments            skip comment crawls (default: fetched)
    --scale <f64>            in-process corpus scale         (default 1.0)
    --seed <u64>             in-process corpus seed
    --base-url <URL>         collect against a served API instead of
                             an in-process platform
    --key <API KEY>          API key to use                  (default cli-key)
    --out <file.json>        where to write the dataset      (default dataset.json)

The in-process mode registers the key with unbounded quota; against a
served API you must have registered a researcher key (see `ytaudit serve`).";

/// Runs the command.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let topics = parse_topics(args.get("topics"))?;
    let out = args.get("out").unwrap_or("dataset.json").to_string();
    let key = args.get("key").unwrap_or("cli-key").to_string();

    let schedule = if args.flag("paper") {
        Schedule::paper()
    } else {
        let snapshots: usize = args.get_parsed("snapshots", 4)?;
        let interval: i64 = args.get_parsed("interval-days", 5)?;
        Schedule::every(
            Timestamp::from_ymd(2025, 2, 9).expect("valid date"),
            interval,
            snapshots,
        )
    };
    let config = CollectorConfig {
        topics,
        schedule,
        hourly_bins: true,
        fetch_metadata: !args.flag("no-metadata"),
        fetch_channels: !args.flag("no-channels"),
        fetch_comments: !args.flag("no-comments"),
    };

    let client = match args.get("base-url") {
        Some(base) => YouTubeClient::new(Box::new(HttpTransport::new(base.to_string())), key),
        None => {
            let scale: f64 = args.get_parsed("scale", 1.0)?;
            let mut corpus_config = CorpusConfig {
                scale,
                ..CorpusConfig::default()
            };
            if let Some(seed) = args.get("seed") {
                corpus_config.seed = seed
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --seed {seed:?}")))?;
            }
            eprintln!("[collect] generating in-process corpus (scale {scale})…");
            let service = Arc::new(ytaudit_api::ApiService::new(
                Arc::new(Platform::new(Corpus::generate(corpus_config))),
                SimClock::at_audit_start(),
            ));
            service.quota().register(&key, u64::MAX / 2);
            YouTubeClient::new(Box::new(InProcessTransport::new(service)), key)
        }
    };

    eprintln!(
        "[collect] {} topics × {} snapshots, hourly-binned…",
        config.topics.len(),
        config.schedule.len()
    );
    let started = std::time::Instant::now();
    let dataset = Collector::new(&client, config)
        .run()
        .map_err(|e| ArgError(format!("collection failed: {e}")))?;
    eprintln!(
        "[collect] done in {:.1}s — {} quota units",
        started.elapsed().as_secs_f64(),
        dataset.quota_units_spent
    );
    std::fs::write(&out, dataset.to_json())
        .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {out}: {} snapshots, {} videos with metadata, {} channels",
        dataset.len(),
        dataset.video_meta.len(),
        dataset.channel_meta.len()
    );
    Ok(())
}
