//! `ytaudit analyze` — run the paper's analyses on a stored dataset.
//!
//! Batch (`<dataset.json>` or `--store`) and streaming (`--store
//! --follow`) runs share one numeric path: both fold `(topic, snapshot)`
//! pairs into the same streaming accumulators
//! ([`ytaudit_core::Analyzer`]), so their reports are bit-identical —
//! `--report` emits the canonical JSON the equivalence suite compares.

use crate::args::{ArgError, Args};
use crate::commands::collect::parse_platform;
use std::path::PathBuf;
use ytaudit_bench::tables;
use ytaudit_core::{AnalysisReport, Analyzer, AuditDataset};
use ytaudit_store::{follow_analyze, DatasetSelection, FollowOptions, Store, StoreError};
use ytaudit_types::PlatformKind;

/// Usage text.
pub const USAGE: &str = "\
ytaudit analyze — run the paper's analyses on a collected dataset

USAGE:
    ytaudit analyze <dataset.json> [--experiment <id>] [--report <path|->]
    ytaudit analyze --store <file.yts> [--experiment <id>] [--report <path|->]
    ytaudit analyze --store <file.yts> --follow [--poll-ms 250]
                    [--checkpoint <file.ckpt>] [--max-buffered <N>]

OPTIONS:
    --experiment <id>    one of: all (default), table1, table2, table3,
                         table4, table5, table6, table7, fig1, fig2, fig3, fig4
    --store <file.yts>   analyze a snapshot store instead of a JSON dataset;
                         only the slices the experiment needs are decoded
    --follow             tail a live store: fold each committed pair into the
                         running accumulators the moment it lands, and finish
                         once the collection ends (progress on stderr)
    --poll-ms <n>        follow poll interval in milliseconds (default 250)
    --checkpoint <path>  persist analyzer state after every advancing poll;
                         a restarted follow resumes from the checkpoint
                         instead of re-folding from scratch
    --max-buffered <n>   cap on out-of-order pairs held in memory while
                         following (exceeding it is an error)
    --platform <name>    assert the store was collected from this backend
                         (youtube | tiktok); a mismatch is an error before
                         any pair is read
    --report <path|->    also write the canonical report JSON (`-` = stdout)

The JSON dataset comes from `ytaudit collect --out dataset.json`; the
store comes from `ytaudit collect --store audit.yts`. Batch and follow
runs fold pairs through the same accumulators, so their `--report`
output is byte-identical for the same collection.";

/// Every `--experiment` id.
const EXPERIMENTS: &[&str] = &[
    "all", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig1", "fig2",
    "fig3", "fig4",
];

/// The store slices an experiment actually consumes: search-only
/// analyses skip decoding every metadata and comment blob.
fn selection_for(which: &str) -> DatasetSelection {
    match which {
        "table1" | "fig1" | "table2" | "fig2" | "fig3" | "table4" | "fig4" => {
            DatasetSelection::search_only()
        }
        "table5" => DatasetSelection {
            include_video_meta: false,
            include_channel_meta: false,
            include_comments: true,
        },
        _ => DatasetSelection::full(),
    }
}

/// Runs the command.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let which = args.get("experiment").unwrap_or("all");
    if !EXPERIMENTS.contains(&which) {
        return Err(ArgError(format!(
            "unknown experiment {which:?}; see `ytaudit analyze --help`"
        )));
    }
    let report = build_report(args, which)?;
    match args.get("report") {
        Some("-") => {
            // Machine output: the canonical JSON alone on stdout.
            println!("{}", report.to_json());
            return Ok(());
        }
        Some(path) => {
            let mut json = report.to_json();
            json.push('\n');
            std::fs::write(path, json)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        }
        None => {}
    }
    render(&report, which);
    Ok(())
}

/// Produces the report, by following the store live or by replaying a
/// materialized dataset through the same accumulators.
fn build_report(args: &Args, which: &str) -> Result<AnalysisReport, ArgError> {
    let expect_platform: Option<PlatformKind> = match args.get("platform") {
        None => None,
        Some(_) => Some(parse_platform(args)?),
    };
    if args.flag("follow") {
        let spath = args
            .get("store")
            .ok_or_else(|| ArgError("--follow needs --store <file.yts>".into()))?;
        if args.positionals().len() > 1 {
            return Err(ArgError(
                "pass either a JSON dataset path or --store, not both".into(),
            ));
        }
        let options = FollowOptions {
            follow: true,
            poll_ms: args.get_parsed("poll-ms", 250u64)?,
            checkpoint: args.get("checkpoint").map(PathBuf::from),
            max_buffered: match args.get("max-buffered") {
                None => None,
                Some(_) => Some(args.get_parsed("max-buffered", 0usize)?),
            },
            expect_platform,
        };
        let outcome = follow_analyze(std::path::Path::new(spath), &options, |p| {
            match p.planned_pairs {
                Some(planned) => eprint!(
                    "\rfollow: {}/{planned} pairs folded{} ",
                    p.folded_pairs,
                    if p.ended { ", collection ended" } else { "" }
                ),
                None => eprint!("\rfollow: waiting for a collection plan "),
            }
        })
        .map_err(|e| ArgError(format!("follow analysis of {spath} failed: {e}")))?;
        eprintln!();
        if let Some(folded) = outcome.resumed_from {
            eprintln!("follow: resumed from a checkpoint holding {folded} folded pairs");
        }
        return Ok(outcome.report);
    }

    let dataset = match args.get("store") {
        Some(spath) => {
            if args.positionals().len() > 1 {
                return Err(ArgError(
                    "pass either a JSON dataset path or --store, not both".into(),
                ));
            }
            let mut store = Store::open(std::path::Path::new(spath))
                .map_err(|e| ArgError(format!("cannot open store {spath}: {e}")))?;
            if let (Some(expected), Some(meta)) = (expect_platform, store.collection_meta()) {
                if meta.platform != expected {
                    let err = StoreError::PlatformMismatch {
                        stored: meta.platform,
                        requested: expected,
                    };
                    return Err(ArgError(format!("cannot analyze {spath}: {err}")));
                }
            }
            store
                .load_dataset_filtered(selection_for(which))
                .map_err(|e| ArgError(format!("cannot load dataset from {spath}: {e}")))?
        }
        None => {
            let path = args
                .positional(1)
                .ok_or_else(|| ArgError("analyze needs a dataset path; see --help".into()))?;
            if args.positionals().len() > 2 {
                return Err(ArgError(format!(
                    "unexpected extra arguments: {:?}",
                    &args.positionals()[2..]
                )));
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            AuditDataset::from_json(&text)
                .map_err(|e| ArgError(format!("{path} is not a dataset: {e}")))?
        }
    };
    Ok(Analyzer::analyze_dataset(&dataset))
}

/// Prints the human-readable tables for the selected experiment(s).
fn render(report: &AnalysisReport, which: &str) {
    let all = which == "all";

    if all || which == "table1" {
        println!("Table 1 — videos returned per collection");
        let rows: Vec<Vec<String>> = report
            .table1
            .iter()
            .map(|r| {
                vec![
                    r.topic.display_name().into(),
                    r.min.to_string(),
                    r.max.to_string(),
                    tables::f2(r.mean),
                    tables::f2(r.std),
                ]
            })
            .collect();
        print!("{}", tables::render(&["topic", "min", "max", "mean", "std"], &rows));
        println!();
    }
    if all || which == "fig1" {
        println!("Figure 1 — Jaccard decay");
        for tc in &report.figure1 {
            print!("  {:10}", tc.topic.key());
            for p in &tc.points {
                print!(" {:.2}", p.jaccard_first);
            }
            println!();
        }
        println!();
    }
    if all || which == "table2" {
        println!("Table 2 — per-hour returns");
        let rows: Vec<Vec<String>> = report
            .table2
            .iter()
            .map(|r| {
                vec![
                    r.topic.display_name().into(),
                    tables::f2(r.mean),
                    r.max.to_string(),
                    tables::f2(r.std),
                    format!("{}{:.2}", ytaudit_bench::paper::stars(r.rho_p), r.rho),
                    r.n_hours.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            tables::render(&["topic", "mean", "max", "std", "rho", "N"], &rows)
        );
        println!();
    }
    if all || which == "fig2" {
        println!("Figure 2 — daily frequencies (topic: day avg series)");
        for ft in &report.figure2 {
            print!("  {:10}", ft.topic.key());
            for d in &ft.days {
                print!(" {:.0}", d.avg);
            }
            println!();
        }
        println!();
    }
    if all || which == "fig3" {
        match &report.figure3 {
            Some(f) => {
                println!("Figure 3 — Markov transitions (PP/PA/AP/AA → P)");
                for (i, label) in ["PP", "PA", "AP", "AA"].iter().enumerate() {
                    // ytlint: allow(indexing) — transitions is a fixed [[f64; 2]; 4]
                    println!("  {label} → P {:.3} (n={})", f.transitions[i][0], f.counts[i]);
                }
            }
            None => println!("Figure 3 — not enough snapshots (need ≥ 3)"),
        }
        println!();
    }
    if all || which == "table4" {
        println!("Table 4 — pool sizes");
        let rows: Vec<Vec<String>> = report
            .table4
            .iter()
            .map(|r| {
                vec![
                    r.topic.display_name().into(),
                    tables::pool(r.min),
                    tables::pool(r.max),
                    tables::pool(r.mean),
                    tables::pool(r.mode),
                ]
            })
            .collect();
        print!("{}", tables::render(&["topic", "min", "max", "mean", "mode"], &rows));
        println!();
    }
    if all || which == "table5" {
        if report.table5.is_empty() {
            println!("Table 5 — no comment collections in this dataset");
        } else {
            println!("Table 5 — comment-set similarity");
            let printable: Vec<Vec<String>> = report
                .table5
                .iter()
                .map(|r| {
                    vec![
                        r.topic.display_name().into(),
                        tables::opt3(r.top_level_non_shared),
                        tables::opt3(r.nested_non_shared),
                        tables::opt3(r.top_level_shared),
                        tables::opt3(r.nested_shared),
                    ]
                })
                .collect();
            print!(
                "{}",
                tables::render(&["topic", "TL,NS", "N,NS", "TL,S", "N,S"], &printable)
            );
        }
        println!();
    }
    if all || which == "fig4" {
        println!("Figure 4 — Videos.list stability (min coverage / min common-J)");
        for ft in &report.figure4 {
            let min_cov = ft
                .vs_previous
                .iter()
                .map(|p| p.coverage_current.min(p.coverage_reference))
                .fold(f64::INFINITY, f64::min);
            let min_j = ft
                .vs_first
                .iter()
                .map(|p| p.jaccard_common)
                .fold(f64::INFINITY, f64::min);
            println!("  {:10} {:6.1}%  {:.3}", ft.topic.key(), min_cov, min_j);
        }
        println!();
    }
    if all || matches!(which, "table3" | "table6" | "table7") {
        match &report.regression {
            Err(e) => println!("regressions skipped: {e}"),
            Ok(reg) => {
                let print_fit = |title: &str,
                                 names: &[String],
                                 coeffs: &[f64],
                                 ps: &[f64]| {
                    println!("{title}");
                    let rows: Vec<Vec<String>> = names
                        .iter()
                        .zip(coeffs)
                        .zip(ps)
                        .map(|((n, c), p)| {
                            vec![
                                n.clone(),
                                format!("{}{:.3}", ytaudit_bench::paper::stars(*p), c),
                            ]
                        })
                        .collect();
                    print!("{}", tables::render(&["variable", "beta"], &rows));
                    println!();
                };
                if all || which == "table3" {
                    match &reg.table3 {
                        Ok(fit) => print_fit(
                            "Table 3 — binned ordinal (logit)",
                            &fit.names,
                            &fit.coefficients,
                            &fit.p_values,
                        ),
                        Err(e) => println!("table3 failed: {e}"),
                    }
                }
                if all || which == "table6" {
                    match &reg.table6 {
                        Ok(fit) => print_fit(
                            "Table 6 — OLS (HC1)",
                            &fit.names[1..],
                            &fit.coefficients[1..],
                            &fit.p_values[1..],
                        ),
                        Err(e) => println!("table6 failed: {e}"),
                    }
                }
                if all || which == "table7" {
                    match &reg.table7 {
                        Ok(fit) => print_fit(
                            "Table 7 — ordinal (cloglog)",
                            &fit.names,
                            &fit.coefficients,
                            &fit.p_values,
                        ),
                        Err(e) => println!("table7 failed: {e}"),
                    }
                }
            }
        }
    }
}
