//! `ytaudit topics` — list the six audit topics and their parameters.

use crate::args::{ArgError, Args};
use ytaudit_bench::tables;
use ytaudit_types::Topic;

/// Usage text.
pub const USAGE: &str = "\
ytaudit topics — list the six audit topics (Appendix A of the paper)

No options.";

/// Runs the command.
pub fn run(_args: &Args) -> Result<(), ArgError> {
    let rows: Vec<Vec<String>> = Topic::ALL
        .iter()
        .map(|t| {
            let spec = t.spec();
            vec![
                t.key().to_string(),
                format!("\"{}\"", spec.query),
                spec.focal_date.to_rfc3339(),
                tables::pool(spec.pool_size),
                spec.subtopics.join(", "),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(
            &["key", "query", "focal date", "pool", "subtopics (AND terms)"],
            &rows
        )
    );
    println!(
        "\nEach topic's collection window is its focal date ± 14 days,\n\
         queried one hour at a time (672 searches per topic per snapshot)."
    );
    Ok(())
}
