//! Stable hashing and smooth "value noise" — the deterministic randomness
//! underneath the simulated search endpoint.
//!
//! Everything the platform randomizes must be a *pure function* of
//! (seed, entity, time): two identical queries at the same simulated
//! instant must return identical results, while queries weeks apart drift.
//! `std`'s hashers are not guaranteed stable across runs, so we use our own
//! splitmix64-based mixer.

use ytaudit_types::time::DAY;
use ytaudit_types::Timestamp;

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines a sequence of words into one hash (order-sensitive).
pub fn mix_all(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // π digits, arbitrary non-zero
    for &w in words {
        acc = mix64(acc ^ w);
    }
    acc
}

/// FNV-1a over bytes, for hashing strings (query text, video IDs) into the
/// mixer's input space.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(acc)
}

/// Maps a hash to a uniform `f64` in `[0, 1)`.
pub fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Maps a hash to an approximately standard-normal value via the
/// Box–Muller transform on two derived uniforms.
pub fn unit_normal(hash: u64) -> f64 {
    let u1 = unit_f64(mix64(hash ^ 0xAAAA_AAAA_AAAA_AAAA)).max(1e-12);
    let u2 = unit_f64(mix64(hash ^ 0x5555_5555_5555_5555));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Smooth per-entity noise over time ("value noise"): hash values are
/// pinned at knots spaced `knot_days` apart and linearly interpolated
/// between them. The result is a deterministic function of
/// (seed, entity, t) that changes slowly — correlation between two samples
/// decays linearly to zero as they drift one knot apart.
///
/// This is the mechanism behind the paper's "rolling window" drop-in/
/// drop-out behaviour (Figure 3): a video's inclusion score moves smoothly
/// across collection snapshots, so presence persists over adjacent
/// snapshots and churns over months.
pub fn value_noise(seed: u64, entity: u64, t: Timestamp, knot_days: f64) -> f64 {
    debug_assert!(knot_days > 0.0);
    let knot_secs = knot_days * DAY as f64;
    let pos = t.as_secs() as f64 / knot_secs;
    let k0 = pos.floor();
    let frac = pos - k0;
    let k0 = k0 as i64;
    let v0 = unit_f64(mix_all(&[seed, entity, k0 as u64, 0x4B4E_4F54]));
    let v1 = unit_f64(mix_all(&[seed, entity, (k0 + 1) as u64, 0x4B4E_4F54]));
    v0 + (v1 - v0) * frac
}

/// Two-scale value noise: a fast component (short knots) layered on a slow
/// component (long knots). The fast part gives snapshot-to-snapshot churn;
/// the slow part keeps similarity decaying for months instead of
/// plateauing after one knot interval — matching Figure 1's long decay.
pub fn layered_noise(
    seed: u64,
    entity: u64,
    t: Timestamp,
    fast_days: f64,
    slow_days: f64,
    fast_weight: f64,
) -> f64 {
    let fast = value_noise(seed ^ 0xFA57, entity, t, fast_days);
    let slow = value_noise(seed ^ 0x5103, entity, t, slow_days);
    fast_weight * fast + (1.0 - fast_weight) * slow
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::Timestamp;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        assert_eq!(mix_all(&[1, 2, 3]), mix_all(&[1, 2, 3]));
        assert_ne!(mix_all(&[1, 2, 3]), mix_all(&[3, 2, 1]));
        assert_eq!(hash_bytes(b"brexit"), hash_bytes(b"brexit"));
        assert_ne!(hash_bytes(b"brexit"), hash_bytes(b"brexlt"));
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn unit_normal_moments() {
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let z = unit_normal(mix64(i));
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn value_noise_is_smooth_and_bounded() {
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        for entity in 0..50u64 {
            let mut prev = value_noise(7, entity, t0, 10.0);
            for day in 1..60 {
                let v = value_noise(7, entity, t0.add_days(day), 10.0);
                assert!((0.0..=1.0).contains(&v));
                // Max change per day is 1/knot_days of the full range.
                assert!((v - prev).abs() <= 1.0 / 10.0 + 1e-9);
                prev = v;
            }
        }
    }

    #[test]
    fn value_noise_decorrelates_over_knots() {
        // Correlation of samples 1 knot apart should be near zero, and
        // samples at the same instant identical.
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let knot = 10.0;
        let n = 4_000;
        let (mut sxy, mut sx, mut sy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for entity in 0..n {
            let a = value_noise(3, entity, t0, knot);
            let b = value_noise(3, entity, t0.add_days(20), knot);
            assert_eq!(a, value_noise(3, entity, t0, knot));
            sx += a;
            sy += b;
            sxy += a * b;
            sxx += a * a;
            syy += b * b;
        }
        let nf = n as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let corr = cov / ((sxx / nf - (sx / nf).powi(2)).sqrt() * (syy / nf - (sy / nf).powi(2)).sqrt());
        assert!(corr.abs() < 0.06, "corr {corr}");
    }

    #[test]
    fn nearby_samples_are_highly_correlated() {
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let knot = 30.0;
        let n = 4_000;
        let (mut sxy, mut sx, mut sy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for entity in 0..n {
            let a = value_noise(3, entity, t0, knot);
            let b = value_noise(3, entity, t0.add_days(3), knot);
            sx += a;
            sy += b;
            sxy += a * b;
            sxx += a * a;
            syy += b * b;
        }
        let nf = n as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let corr = cov / ((sxx / nf - (sx / nf).powi(2)).sqrt() * (syy / nf - (sy / nf).powi(2)).sqrt());
        assert!(corr > 0.8, "corr {corr}");
    }

    #[test]
    fn layered_noise_is_bounded() {
        let t0 = Timestamp::from_ymd(2025, 3, 1).unwrap();
        for entity in 0..100 {
            let v = layered_noise(9, entity, t0, 8.0, 45.0, 0.5);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
