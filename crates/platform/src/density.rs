//! Topical interest density over each topic's 28-day window.
//!
//! Section 4.2 of the paper concludes that the search endpoint "samples
//! videos from empirical distributions, returning results based on the
//! relative density of topical interest". This module is that empirical
//! distribution: a Gaussian burst centred near the focal date on top of a
//! constant background, with a diurnal cycle layered in (uploads dip in the
//! UTC night hours). The same density drives both the corpus generator
//! (uploads follow interest) and the hidden search sampler (returns follow
//! interest).

use crate::hash::{hash_bytes, mix_all, unit_normal};
use ytaudit_types::time::HOUR;
use ytaudit_types::{Timestamp, TopicSpec};

/// The per-hour interest profile of one topic across its audit window.
#[derive(Debug, Clone)]
pub struct InterestDensity {
    window_start: Timestamp,
    /// Relative weight per hour (length 672 for the standard window);
    /// normalized to mean 1.
    weights: Vec<f64>,
}

impl InterestDensity {
    /// Builds the density for a topic spec over `[window_start,
    /// window_end)`.
    pub fn for_topic(spec: &TopicSpec) -> InterestDensity {
        let window_start = spec.topic.window_start();
        let window_end = spec.topic.window_end();
        let hours = window_end.hours_since(window_start).max(0) as usize;
        let peak_time = spec.focal_date.as_secs() as f64
            + spec.peak_offset_days * 86_400.0;
        let sigma = (spec.peak_width_days * 86_400.0).max(3_600.0);
        // A sharp spike rides on the main burst: tight event topics
        // (Capitol, Grammys) concentrate heavily in the event hours, which
        // is what produces Table 2's per-hour maxima of ~20–30 returns.
        let spike_sigma = 3.0 * HOUR as f64;
        let spike_share = (1.5 / spec.peak_width_days).clamp(0.3, 3.0);
        let topic_hash = hash_bytes(spec.topic.key().as_bytes());
        let mut weights = Vec::with_capacity(hours);
        for h in 0..hours {
            let t = window_start.add_hours(h as i64);
            let mid = t.as_secs() as f64 + HOUR as f64 / 2.0;
            let z = (mid - peak_time) / sigma;
            let burst = (-0.5 * z * z).exp();
            let zs = (mid - peak_time) / spike_sigma;
            let spike = spike_share * (-0.5 * zs * zs).exp();
            // Diurnal cycle: ±35% swing, trough at 06:00 UTC.
            let hour_of_day = t.to_civil().hour as f64;
            let diurnal = 1.0
                + 0.35
                    * ((hour_of_day - 6.0) / 24.0 * std::f64::consts::TAU)
                        .sin();
            // Hour-level roughness: real upload streams are bursty.
            // Deterministic per (topic, hour) so every snapshot sees the
            // same density — Figure 2's stacked daily histograms coincide
            // because of this.
            let rough = (0.55 * unit_normal(mix_all(&[topic_hash, h as u64, 0xDE_51]))).exp();
            weights.push((spec.background_level + burst + spike) * diurnal * rough);
        }
        // Normalize to mean 1 so budgets read naturally.
        let mean = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
        if mean > 0.0 {
            for w in &mut weights {
                *w /= mean;
            }
        }
        InterestDensity {
            window_start,
            weights,
        }
    }

    /// Number of hour bins in the window.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The relative weight of the hour bin containing `t`, or 0 outside
    /// the window.
    pub fn weight_at(&self, t: Timestamp) -> f64 {
        let idx = t.hours_since(self.window_start);
        if idx < 0 || idx as usize >= self.weights.len() {
            0.0
        } else {
            self.weights[idx as usize]
        }
    }

    /// The weight of hour bin `idx`.
    pub fn weight(&self, idx: usize) -> f64 {
        self.weights.get(idx).copied().unwrap_or(0.0)
    }

    /// The start of hour bin `idx`.
    pub fn hour_start(&self, idx: usize) -> Timestamp {
        self.window_start.add_hours(idx as i64)
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The relative-density gate: hours with weight below `gate_fraction`
    /// of the mean (= 1.0 after normalization) are suppressed by the
    /// sampler — the paper's "forcing zero videos to be returned when this
    /// relative density is adequately low".
    pub fn is_gated(&self, idx: usize, gate_fraction: f64) -> bool {
        self.weight(idx) < gate_fraction
    }

    /// Total weight mass of non-gated hours. The sampler normalizes its
    /// per-hour budgets over this so gating redistributes rather than
    /// shrinks the per-collection total.
    pub fn open_mass(&self, gate_fraction: f64) -> f64 {
        self.weights
            .iter()
            .filter(|&&w| w >= gate_fraction)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytaudit_types::Topic;

    #[test]
    fn window_has_672_hours() {
        for topic in Topic::ALL {
            let d = InterestDensity::for_topic(&topic.spec());
            assert_eq!(d.len(), 672, "{topic}");
            assert!(!d.is_empty());
        }
    }

    #[test]
    fn weights_are_normalized_and_positive() {
        for topic in Topic::ALL {
            let d = InterestDensity::for_topic(&topic.spec());
            let mean: f64 = d.weights().iter().sum::<f64>() / d.len() as f64;
            assert!((mean - 1.0).abs() < 1e-9, "{topic}: mean {mean}");
            assert!(d.weights().iter().all(|&w| w > 0.0), "{topic}");
        }
    }

    /// Daily totals (roughness averages out over 24 hours).
    fn daily_totals(d: &InterestDensity) -> Vec<f64> {
        d.weights()
            .chunks(24)
            .map(|day| day.iter().sum::<f64>())
            .collect()
    }

    #[test]
    fn peak_day_is_near_focal_plus_offset() {
        for topic in Topic::ALL {
            let spec = topic.spec();
            let d = InterestDensity::for_topic(&spec);
            let days = daily_totals(&d);
            let peak_day = (0..days.len())
                .max_by(|&a, &b| days[a].partial_cmp(&days[b]).unwrap())
                .unwrap() as f64;
            // Day index of the focal date within the window is 14.
            let expected_day = 14.0 + spec.peak_offset_days;
            assert!(
                (peak_day - expected_day).abs() <= spec.peak_width_days.max(1.0) + 1.0,
                "{topic}: peak day {peak_day}, expected ~{expected_day}"
            );
        }
    }

    #[test]
    fn blm_peaks_after_focal_date() {
        // Figure 2: the BLM peak (Blackout Tuesday) lags the focal date.
        let d = InterestDensity::for_topic(&Topic::Blm.spec());
        let days = daily_totals(&d);
        let peak_day = (0..days.len())
            .max_by(|&a, &b| days[a].partial_cmp(&days[b]).unwrap())
            .unwrap();
        assert!(peak_day > 14 + 4, "peak day {peak_day}");
    }

    #[test]
    fn tight_topics_have_sharper_peaks() {
        let capitol = InterestDensity::for_topic(&Topic::Capitol.spec());
        let world_cup = InterestDensity::for_topic(&Topic::WorldCup.spec());
        let peak = |d: &InterestDensity| {
            d.weights().iter().cloned().fold(f64::MIN, f64::max)
        };
        // Capitol's burst is concentrated: a higher peak relative to its
        // mean than the ongoing World Cup.
        assert!(peak(&capitol) > 1.5 * peak(&world_cup));
    }

    #[test]
    fn weight_at_is_zero_outside_window() {
        let spec = Topic::Higgs.spec();
        let d = InterestDensity::for_topic(&spec);
        assert_eq!(d.weight_at(spec.topic.window_start().add_days(-1)), 0.0);
        assert_eq!(d.weight_at(spec.topic.window_end().add_days(1)), 0.0);
        assert!(d.weight_at(spec.focal_date) > 0.0);
    }

    #[test]
    fn gating_suppresses_low_density_hours() {
        let d = InterestDensity::for_topic(&Topic::Capitol.spec());
        let gated = (0..d.len()).filter(|&i| d.is_gated(i, 0.25)).count();
        let open = d.len() - gated;
        // The tight Capitol burst leaves a meaningful share of background
        // hours below a quarter of the mean, while the burst region stays
        // open. (Roughness and diurnal modulation keep the exact count
        // stochastic-looking but deterministic.)
        assert!(gated > 30, "gated {gated}");
        assert!(open > 300, "open {open}");
    }
}
