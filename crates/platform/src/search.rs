//! The hidden search sampler — the mechanism the paper infers and this
//! reproduction encodes, then re-derives through the audit.
//!
//! For a historical keyword query the sampler:
//!
//! 1. estimates the platform-wide matching pool (`totalResults`), noisily,
//!    capped at 1,000,000, *ignoring the query's time filters* (§5);
//! 2. allocates a per-hour return budget proportional to the topic's
//!    interest density, normalized so a full 28-day collection returns a
//!    roughly fixed total regardless of pool size (Tables 1 vs 4);
//! 3. gates hours whose relative density is too low — zero returns even
//!    though eligible videos exist (§4.2);
//! 4. scores each eligible video with a smooth time-varying key blending a
//!    static hash (weight = the topic's `stability`) with layered value
//!    noise, exponent-weighted by a popularity propensity (shorter, more-
//!    liked videos from high-view/low-subscriber channels score higher —
//!    Table 3's coefficient signs);
//! 5. returns the videos whose keys clear a per-hour threshold chosen so
//!    the expected count matches the budget, ordered per the request.
//!
//! Narrower queries shrink the estimated pool, which *raises* the
//! effective stability — the mechanism behind the paper's §6.1 advice to
//! split topics rather than time frames.

use crate::corpus::Corpus;
use crate::density::InterestDensity;
use crate::hash::{hash_bytes, layered_noise, mix_all, unit_f64, unit_normal, value_noise};
use ytaudit_types::{Channel, ChannelId, Timestamp, Topic, Video, VideoId};

/// The `order` parameter of `Search: list`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOrder {
    /// Reverse chronological (`order=date`) — the audit's choice, because
    /// upload time is immutable.
    #[default]
    Date,
    /// Relevance (the API default) — popularity-flavoured and mutable.
    Relevance,
    /// Descending view count.
    ViewCount,
}

/// A parsed search request as the sampler sees it.
#[derive(Debug, Clone, Default)]
pub struct SearchParams {
    /// Lowercased query tokens (AND semantics). Empty means "no keyword
    /// filter" (used with `channel_id`).
    pub tokens: Vec<String>,
    /// `publishedAfter` bound (inclusive).
    pub published_after: Option<Timestamp>,
    /// `publishedBefore` bound (exclusive).
    pub published_before: Option<Timestamp>,
    /// Restrict to one channel's uploads.
    pub channel_id: Option<ChannelId>,
    /// Result ordering.
    pub order: SearchOrder,
}

/// What the sampler returns for one query.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Ordered video IDs (already capped at the API's 500-per-query
    /// maximum).
    pub video_ids: Vec<VideoId>,
    /// The noisy `pageInfo.totalResults` pool estimate.
    pub total_results: u64,
}

/// The API's hard cap on results per query (50 per page × 10 pages).
pub const MAX_RESULTS_PER_QUERY: usize = 500;

/// The documented cap on `pageInfo.totalResults`.
pub const TOTAL_RESULTS_CAP: u64 = 1_000_000;

/// Every tunable of the hidden sampler, exposed so ablation experiments
/// can switch individual mechanisms off and observe which of the paper's
/// signatures disappears (see the `ablation` bench binary).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Relative-density gate: hours below this fraction of the topic's
    /// mean density return nothing. 0.0 disables gating.
    pub gate_fraction: f64,
    /// Propensity weight of (log) like count (+ in Table 3).
    pub propensity_likes: f64,
    /// Propensity weight of (log) duration (− in Table 3).
    pub propensity_duration: f64,
    /// Propensity weight of (log) channel views (+ in Table 3).
    pub propensity_channel_views: f64,
    /// Propensity weight of (log) channel subscribers (− in Table 3).
    pub propensity_channel_subs: f64,
    /// How strongly propensity shifts the inclusion key (additive, in key
    /// units). Kept small: the paper's regression explains only
    /// pseudo-R² ≈ 0.08 of the variance. 0.0 removes popularity bias.
    pub propensity_gain: f64,
    /// Knot spacing (days) of the fast noise layer.
    pub noise_fast_days: f64,
    /// Knot spacing (days) of the slow noise layer.
    pub noise_slow_days: f64,
    /// Weight of the fast layer within the noise blend.
    pub noise_fast_weight: f64,
    /// Overrides every topic's stability when set (1.0 freezes the
    /// sampler completely; 0.0 maximizes churn).
    pub stability_override: Option<f64>,
    /// Multiplier compensating bins whose eligible set runs out.
    pub budget_boost: f64,
    /// Optional planted seasonality: each video's inclusion key gains a
    /// sinusoid of this period and amplitude (with a per-video phase).
    /// Used to validate the §6.2 periodicity detector against ground
    /// truth; the calibrated sampler is aperiodic (`None`).
    pub seasonal: Option<SeasonalConfig>,
}

/// Planted periodicity parameters (see [`SamplerConfig::seasonal`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeasonalConfig {
    /// Period of the planted cycle, in days.
    pub period_days: f64,
    /// Amplitude of the key shift (key units; 0.05–0.15 is visible).
    pub amplitude: f64,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            gate_fraction: 0.22,
            propensity_likes: 0.60,
            propensity_duration: -0.30,
            propensity_channel_views: 0.85,
            propensity_channel_subs: -0.95,
            propensity_gain: 0.085,
            noise_fast_days: 25.0,
            noise_slow_days: 90.0,
            noise_fast_weight: 0.45,
            stability_override: None,
            budget_boost: 1.04,
            seasonal: None,
        }
    }
}

impl SamplerConfig {
    /// Ablation: no relative-density gating.
    pub fn without_gating(mut self) -> SamplerConfig {
        self.gate_fraction = 0.0;
        self
    }

    /// Ablation: no popularity bias.
    pub fn without_propensity(mut self) -> SamplerConfig {
        self.propensity_gain = 0.0;
        self
    }

    /// Ablation: a fully deterministic sampler (no rolling window).
    pub fn frozen(mut self) -> SamplerConfig {
        self.stability_override = Some(1.0);
        self
    }

    /// Plants a seasonal cycle of `period_days` with key-shift
    /// `amplitude` (for validating the periodicity detector).
    pub fn with_seasonality(mut self, period_days: f64, amplitude: f64) -> SamplerConfig {
        self.seasonal = Some(SeasonalConfig {
            period_days,
            amplitude,
        });
        self
    }

    /// Ablation: a memoryless sampler — no static component *and* noise
    /// whose correlation time (2.5-day knots) is shorter than the 5-day
    /// collection interval, so successive snapshots draw essentially
    /// independent samples.
    pub fn memoryless(mut self) -> SamplerConfig {
        self.stability_override = Some(0.0);
        self.noise_fast_days = 2.5;
        self.noise_fast_weight = 1.0;
        self
    }
}

/// The engine owning the per-topic densities and sampler state.
pub struct SearchEngine {
    seed: u64,
    config: SamplerConfig,
    densities: Vec<InterestDensity>, // parallel to Topic::ALL
}

impl SearchEngine {
    /// Builds the engine for a corpus with the calibrated default sampler.
    pub fn new(corpus: &Corpus) -> SearchEngine {
        SearchEngine::with_config(corpus, SamplerConfig::default())
    }

    /// Builds the engine with an explicit sampler configuration.
    pub fn with_config(corpus: &Corpus, config: SamplerConfig) -> SearchEngine {
        SearchEngine {
            seed: corpus.config.seed,
            config,
            densities: Topic::ALL
                .iter()
                .map(|t| InterestDensity::for_topic(&t.spec()))
                .collect(),
        }
    }

    /// The active sampler configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Density for a topic.
    pub fn density(&self, topic: Topic) -> &InterestDensity {
        &self.densities[topic.index()]
    }

    /// Detects which audit topic a token set belongs to: the topic whose
    /// full query-token set is contained in the video-side match. Returns
    /// `None` for queries that don't embed a known topic query.
    pub fn detect_topic(tokens: &[String]) -> Option<Topic> {
        Topic::ALL.into_iter().find(|t| {
            t.spec()
                .query_tokens()
                .iter()
                .all(|qt| tokens.iter().any(|t2| t2 == qt))
        })
    }

    /// The noisy pool estimate for a query. `match_fraction` is the share
    /// of the topic's corpus the (possibly narrowed) query matches.
    pub fn pool_estimate(
        &self,
        topic: Topic,
        match_fraction: f64,
        request_time: Timestamp,
        query_key: u64,
    ) -> u64 {
        let spec = topic.spec();
        let base = spec.pool_size as f64 * match_fraction.clamp(0.0, 1.0);
        // Noise varies per (query, request day, query hour) — successive
        // hourly queries in one collection see different estimates, giving
        // Table 4 its min/max spread.
        let h = mix_all(&[
            self.seed,
            query_key,
            request_time.floor_day().as_secs() as u64,
            0x706F_6F6C,
        ]);
        // Lognormal wobble with a smoothly compressed upside (a hard
        // clamp would pile an atom at the cap and corrupt the mode), plus
        // a rare deep under-estimate "glitch" — Table 4's minima sit far
        // below the mean (Grammys' min is 8.5% of its mean) while maxima
        // stay within ~1.6× of it.
        let raw = unit_normal(h);
        let compressed = if raw > 0.0 { 1.6 * (raw / 1.6).tanh() } else { raw };
        let mut noise = (0.30 * compressed - 0.045).exp();
        let glitch = unit_f64(mix_all(&[h, 0x61_71C4]));
        if glitch < 0.01 {
            // Depth scales with pool size: small pools glitch to ~10% of
            // their mean (Grammys min = 8.5% of mean, Higgs 14%), large
            // pools only to ~50–60% (BLM min = 69%, Capitol 53%).
            let depth = (0.08 + 0.5 * (base / 1.2e6)).min(0.6);
            noise *= depth * (0.8 + 0.4 * unit_f64(mix_all(&[h, 0xD1])));
        }
        ((base * noise).round() as u64).clamp(100, TOTAL_RESULTS_CAP)
    }

    /// Effective stability: narrower queries (smaller pool fraction) are
    /// more deterministic — the §6.1 strategy lever.
    fn effective_stability(base: f64, match_fraction: f64) -> f64 {
        let frac = match_fraction.clamp(1e-6, 1.0);
        1.0 - (1.0 - base) * frac.powf(0.4)
    }

    /// The popularity propensity of a video: a log-scale z-composite with
    /// the coefficient signs of Table 3. Normalization constants match the
    /// corpus generator's distributions.
    pub fn propensity(&self, video: &Video, channel: &Channel) -> f64 {
        let z_likes = ((video.stats.likes as f64).ln_1p() - 4.5) / 2.15;
        let z_duration = ((video.duration.as_secs() as f64).ln_1p() - 5.6) / 1.1;
        let z_ch_views = ((channel.stats.views as f64).ln_1p() - 11.0) / 2.3;
        let z_ch_subs = ((channel.stats.subscribers as f64).ln_1p() - 6.1) / 2.2;
        self.config.propensity_likes * z_likes
            + self.config.propensity_duration * z_duration
            + self.config.propensity_channel_views * z_ch_views
            + self.config.propensity_channel_subs * z_ch_subs
    }

    /// The smooth time-varying inclusion key of a video at `request_time`.
    ///
    /// `stability` weights the static hash; the remainder is two-scale
    /// value noise (25-day and 90-day knots) so set similarity decays for
    /// months (Figure 1) while adjacent snapshots stay close (Figure 3).
    pub fn inclusion_key(
        &self,
        video_hash: u64,
        stability: f64,
        propensity: f64,
        request_time: Timestamp,
    ) -> f64 {
        let static_part = unit_f64(mix_all(&[self.seed, video_hash, 0x5354_4154]));
        let noise_part = layered_noise(
            self.seed,
            video_hash,
            request_time,
            self.config.noise_fast_days,
            self.config.noise_slow_days,
            self.config.noise_fast_weight,
        );
        let mut u = stability * static_part + (1.0 - stability) * noise_part;
        if let Some(seasonal) = self.config.seasonal {
            let phase =
                unit_f64(mix_all(&[self.seed, video_hash, 0x5345_4153])) * std::f64::consts::TAU;
            let angle = std::f64::consts::TAU * request_time.as_secs() as f64
                / (seasonal.period_days * 86_400.0)
                + phase;
            u += seasonal.amplitude * angle.sin();
        }
        // A *mild* additive popularity edge. The paper's regression has a
        // pseudo-R² of only 0.079: popularity tilts the sampler, it does
        // not dominate it. A small additive shift in key space gives the
        // Table-3 coefficient signs without freezing the per-bin ranking.
        u + self.config.propensity_gain * propensity.clamp(-3.0, 3.0)
    }

    /// Runs a query. `lookup` resolves a video's channel; `videos` is the
    /// pre-filtered eligible slice (matching tokens, channel, time range,
    /// and visible at `request_time`), and `match_fraction` the share of
    /// the topic corpus the token filter keeps.
    pub fn run(
        &self,
        topic: Option<Topic>,
        params: &SearchParams,
        eligible: &[&Video],
        channel_of: impl Fn(&Video) -> Option<Channel>,
        match_fraction: f64,
        request_time: Timestamp,
    ) -> SearchOutcome {
        let query_key = query_hash(params);
        let Some(topic) = topic else {
            // Unknown topic: no density model — return the (small) exact
            // match set deterministically, newest first. totalResults is
            // just the match count.
            let mut ids: Vec<(&&Video, Timestamp)> =
                eligible.iter().map(|v| (v, v.published_at)).collect();
            ids.sort_by_key(|(v, t)| (std::cmp::Reverse(*t), v.id.clone()));
            return SearchOutcome {
                video_ids: ids
                    .into_iter()
                    .take(MAX_RESULTS_PER_QUERY)
                    .map(|(v, _)| v.id.clone())
                    .collect(),
                total_results: eligible.len() as u64,
            };
        };

        let spec = topic.spec();
        let density = self.density(topic);
        let base_stability = self
            .config
            .stability_override
            .unwrap_or(spec.stability);
        let stability = Self::effective_stability(base_stability, match_fraction);
        let total_results = self.pool_estimate(topic, match_fraction, request_time, query_key);

        // Group eligible videos by hour bin and apply the budgeted,
        // propensity-weighted threshold per bin.
        let mut selected: Vec<&Video> = Vec::new();
        let mut bins: std::collections::BTreeMap<i64, Vec<&Video>> = std::collections::BTreeMap::new();
        let window_start = topic.window_start();
        for &video in eligible {
            bins.entry(video.published_at.hours_since(window_start))
                .or_default()
                .push(video);
        }
        let open_mass = density.open_mass(self.config.gate_fraction).max(1.0);
        // Per-(topic, collection-day) budget wobble, shared by every
        // hourly query of one collection so snapshot totals vary
        // collectively (Table 1's per-collection std ≈ 2–4% of the mean).
        // Stable topics wobble less.
        let day_hash = mix_all(&[
            self.seed,
            hash_bytes(spec.topic.key().as_bytes()),
            request_time.floor_day().as_secs() as u64,
            0x54_4F54,
        ]);
        let day_sigma = 0.012 + 0.04 * (1.0 - stability);
        let day_factor = (day_sigma * unit_normal(day_hash)).exp();
        let channel_scoped = params.channel_id.is_some();
        for (bin, videos_in_bin) in bins {
            if bin < 0 || bin as usize >= density.len() {
                continue;
            }
            let weight = density.weight(bin as usize);
            if !channel_scoped && weight < self.config.gate_fraction {
                continue; // forced zero: relative density too low
            }
            // Budget ∝ density over the *open* (non-gated) mass, so the
            // per-collection total tracks the topic target; the 1.04
            // factor compensates bins whose eligible set runs out.
            // `match_fraction` scales it down for narrowed queries.
            //
            // Channel-scoped searches differ: the pool is the channel's
            // own catalogue, and the endpoint returns *most* of it while
            // still churning membership over time — incomplete and
            // unstable (§6.1's warning), but never degenerate.
            let budget = if channel_scoped {
                0.75 * videos_in_bin.len() as f64
            } else {
                self.config.budget_boost * day_factor * spec.returned_target * weight
                    / open_mass
                    * match_fraction
            };
            // Stochastic rounding of the fractional budget. The rounding
            // uniform is *value noise in the request date* (35-day knots),
            // so an hour's quota of, say, 0.7 rounds to 1 for a stretch of
            // weeks and to 0 for another stretch — temporally coherent
            // drop-in/drop-out at the bin level, and the source of
            // Table 1's per-collection spread.
            let round_entity = mix_all(&[query_key, bin as u64, 0x6B72_6E64]);
            let round_static = unit_f64(mix_all(&[self.seed, round_entity, 0x5253]));
            let round_noise = value_noise(self.seed ^ 0x42_4E, round_entity, request_time, 35.0);
            // Stability-weighted like the inclusion keys: a stable topic's
            // per-hour quotas are frozen, an unstable one's drift. The
            // blend is bell-shaped, so push it through an approximate
            // probability-integral transform to make the rounding draw
            // uniform — otherwise small fractional budgets under-round and
            // quiet hours starve even without the gate.
            let round_blend = stability * round_static + (1.0 - stability) * round_noise;
            let blend_sd = (stability * stability / 12.0
                + (1.0 - stability) * (1.0 - stability) * 0.0281)
                .sqrt()
                .max(1e-6);
            // Logistic approximation to the normal CDF (|err| < 0.01).
            let round_u = 1.0 / (1.0 + (-1.702 * (round_blend - 0.5) / blend_sd).exp());
            let k = budget.floor() as usize + usize::from(round_u < budget.fract());
            if k == 0 {
                continue;
            }
            // Key every video in the bin and keep the top k — an
            // Efraimidis–Spirakis weighted sample whose membership drifts
            // smoothly with the request date.
            let mut keyed: Vec<(f64, &Video)> = videos_in_bin
                .iter()
                .map(|&v| {
                    let vh = hash_bytes(v.id.as_str().as_bytes());
                    let prop = channel_of(v)
                        .map(|c| self.propensity(v, &c))
                        .unwrap_or(0.0);
                    (self.inclusion_key(vh, stability, prop, request_time), v)
                })
                .collect();
            keyed.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.id.cmp(&b.1.id))
            });
            for (_, v) in keyed.into_iter().take(k) {
                selected.push(v);
            }
        }

        // Order and cap.
        match params.order {
            SearchOrder::Date => {
                selected.sort_by(|a, b| {
                    b.published_at
                        .cmp(&a.published_at)
                        .then_with(|| a.id.cmp(&b.id))
                });
            }
            SearchOrder::ViewCount => {
                selected.sort_by(|a, b| {
                    b.stats
                        .views
                        .cmp(&a.stats.views)
                        .then_with(|| a.id.cmp(&b.id))
                });
            }
            SearchOrder::Relevance => {
                // Relevance ≈ propensity with a deterministic tiebreak.
                selected.sort_by(|a, b| {
                    let pa = channel_of(a).map(|c| self.propensity(a, &c)).unwrap_or(0.0);
                    let pb = channel_of(b).map(|c| self.propensity(b, &c)).unwrap_or(0.0);
                    pb.partial_cmp(&pa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.id.cmp(&b.id))
                });
            }
        }
        selected.truncate(MAX_RESULTS_PER_QUERY);
        SearchOutcome {
            video_ids: selected.iter().map(|v| v.id.clone()).collect(),
            total_results,
        }
    }
}

/// Stable hash of the query parameters that define a "logical query" for
/// noise-keying purposes (tokens + channel + time bounds).
pub fn query_hash(params: &SearchParams) -> u64 {
    let mut words: Vec<u64> = Vec::new();
    for token in &params.tokens {
        words.push(hash_bytes(token.as_bytes()));
    }
    if let Some(ch) = &params.channel_id {
        words.push(hash_bytes(ch.as_str().as_bytes()));
    }
    words.push(
        params
            .published_after
            .map(|t| t.as_secs() as u64)
            .unwrap_or(u64::MAX),
    );
    words.push(
        params
            .published_before
            .map(|t| t.as_secs() as u64)
            .unwrap_or(u64::MAX - 1),
    );
    mix_all(&words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn engine_and_corpus() -> (SearchEngine, Corpus) {
        let corpus = Corpus::generate(CorpusConfig {
            scale: 0.5,
            ..CorpusConfig::default()
        });
        let engine = SearchEngine::new(&corpus);
        (engine, corpus)
    }

    #[test]
    fn detect_topic_from_tokens() {
        let tokens = |s: &str| ytaudit_types::topic::tokenize(s);
        assert_eq!(SearchEngine::detect_topic(&tokens("higgs boson")), Some(Topic::Higgs));
        assert_eq!(
            SearchEngine::detect_topic(&tokens("higgs boson cern")),
            Some(Topic::Higgs)
        );
        assert_eq!(
            SearchEngine::detect_topic(&tokens("fifa world cup brazil")),
            Some(Topic::WorldCup)
        );
        assert_eq!(SearchEngine::detect_topic(&tokens("cooking pasta")), None);
        // Partial topic queries don't match.
        assert_eq!(SearchEngine::detect_topic(&tokens("higgs")), None);
    }

    #[test]
    fn pool_estimate_respects_cap_and_scales() {
        let (engine, _corpus) = engine_and_corpus();
        let t = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let full = engine.pool_estimate(Topic::WorldCup, 1.0, t, 1);
        assert!(full <= TOTAL_RESULTS_CAP);
        let narrow = engine.pool_estimate(Topic::WorldCup, 0.05, t, 1);
        assert!(narrow < full);
        // Higgs pool is tens of thousands.
        let higgs = engine.pool_estimate(Topic::Higgs, 1.0, t, 1);
        assert!(higgs < 100_000, "higgs pool {higgs}");
        // Deterministic per (query, day); varies across days for topics
        // below the 1M cap (capped topics may pin at the cap both days).
        assert_eq!(
            engine.pool_estimate(Topic::Blm, 1.0, t, 7),
            engine.pool_estimate(Topic::Blm, 1.0, t, 7)
        );
        assert_ne!(
            engine.pool_estimate(Topic::Brexit, 1.0, t, 7),
            engine.pool_estimate(Topic::Brexit, 1.0, t.add_days(5), 7)
        );
    }

    #[test]
    fn effective_stability_rises_for_narrow_queries() {
        let base = 0.5;
        let full = SearchEngine::effective_stability(base, 1.0);
        let narrow = SearchEngine::effective_stability(base, 0.1);
        let tiny = SearchEngine::effective_stability(base, 0.01);
        assert!((full - base).abs() < 1e-12);
        assert!(narrow > full);
        assert!(tiny > narrow);
        assert!(tiny < 1.0);
    }

    #[test]
    fn propensity_signs_match_table_3() {
        let (engine, corpus) = engine_and_corpus();
        let video = corpus.topics[0].videos[0].clone();
        let channel = corpus.channels[0].clone();
        let base = engine.propensity(&video, &channel);
        // More likes ⇒ higher propensity.
        let mut liked = video.clone();
        liked.stats.likes = video.stats.likes * 100 + 1_000;
        assert!(engine.propensity(&liked, &channel) > base);
        // Longer ⇒ lower propensity.
        let mut long = video.clone();
        long.duration = ytaudit_types::IsoDuration::from_secs(video.duration.as_secs() * 20 + 7_200);
        assert!(engine.propensity(&long, &channel) < base);
        // More channel views ⇒ higher; more subscribers ⇒ lower.
        let mut big_views = channel.clone();
        big_views.stats.views = channel.stats.views * 50 + 1_000_000;
        assert!(engine.propensity(&video, &big_views) > base);
        let mut big_subs = channel.clone();
        big_subs.stats.subscribers = channel.stats.subscribers * 50 + 1_000_000;
        assert!(engine.propensity(&video, &big_subs) < base);
    }

    #[test]
    fn ablation_configs_change_the_mechanism() {
        let corpus = Corpus::generate(crate::corpus::CorpusConfig {
            scale: 0.2,
            ..crate::corpus::CorpusConfig::default()
        });
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        // Frozen sampler: keys identical at any two dates.
        let frozen = SearchEngine::with_config(&corpus, SamplerConfig::default().frozen());
        for vh in 0..100u64 {
            let a = frozen.inclusion_key(vh, 1.0, 0.0, t0);
            let b = frozen.inclusion_key(vh, 1.0, 0.0, t0.add_days(80));
            assert_eq!(a, b);
        }
        // No propensity: popularity cannot shift the key.
        let unbiased = SearchEngine::with_config(&corpus, SamplerConfig::default().without_propensity());
        assert_eq!(
            unbiased.inclusion_key(7, 0.5, 3.0, t0),
            unbiased.inclusion_key(7, 0.5, -3.0, t0)
        );
        // No gating: open mass covers the whole window.
        let cfg = SamplerConfig::default().without_gating();
        assert_eq!(cfg.gate_fraction, 0.0);
        let d = frozen.density(Topic::Capitol);
        assert!(d.open_mass(0.0) >= d.open_mass(SamplerConfig::default().gate_fraction));
    }

    #[test]
    fn inclusion_key_is_deterministic_and_smooth() {
        let (engine, _) = engine_and_corpus();
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let k1 = engine.inclusion_key(42, 0.5, 0.0, t0);
        let k2 = engine.inclusion_key(42, 0.5, 0.0, t0);
        assert_eq!(k1, k2);
        assert!((0.0..=1.0).contains(&k1));
        // Smooth: a one-day step moves the key by a bounded amount.
        let k_next = engine.inclusion_key(42, 0.5, 0.0, t0.add_days(1));
        assert!((k_next - k1).abs() < 0.15);
        // High propensity pushes keys toward 1 on average.
        let mut higher = 0;
        for vh in 0..500u64 {
            let lo = engine.inclusion_key(vh, 0.5, -1.5, t0);
            let hi = engine.inclusion_key(vh, 0.5, 1.5, t0);
            if hi > lo {
                higher += 1;
            }
        }
        assert!(higher > 450, "{higher}/500");
    }

    #[test]
    fn high_stability_keys_barely_move() {
        let (engine, _) = engine_and_corpus();
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let t1 = t0.add_days(80);
        let mut drift_stable = 0.0;
        let mut drift_unstable = 0.0;
        for vh in 0..500u64 {
            drift_stable += (engine.inclusion_key(vh, 0.95, 0.0, t0)
                - engine.inclusion_key(vh, 0.95, 0.0, t1))
            .abs();
            drift_unstable += (engine.inclusion_key(vh, 0.3, 0.0, t0)
                - engine.inclusion_key(vh, 0.3, 0.0, t1))
            .abs();
        }
        assert!(drift_stable * 3.0 < drift_unstable, "{drift_stable} vs {drift_unstable}");
    }

    #[test]
    fn query_hash_distinguishes_queries() {
        let base = SearchParams {
            tokens: vec!["brexit".into(), "referendum".into()],
            ..SearchParams::default()
        };
        let mut other = base.clone();
        other.tokens.push("leave".into());
        assert_ne!(query_hash(&base), query_hash(&other));
        assert_eq!(query_hash(&base), query_hash(&base.clone()));
        let mut timed = base.clone();
        timed.published_after = Some(Timestamp::from_ymd(2016, 6, 9).unwrap());
        assert_ne!(query_hash(&base), query_hash(&timed));
    }
}
