//! Synthetic corpus generation: channels, videos, and comments for the six
//! audit topics, with the correlation structure the paper reports.
//!
//! Calibration targets (see DESIGN.md §6):
//! * engagement counters are log-normal with log-scale correlations that
//!   reproduce r(views, likes) ≈ 0.92, r(views, comments) ≈ 0.89;
//! * channel views and subscribers are nearly collinear (r ≈ 0.97), which
//!   is what makes the paper's channel-level coefficients unstable;
//! * upload times follow the topic's interest density, so the per-day
//!   upload histogram matches Figure 2's shape;
//! * a small fraction of videos is deleted during the audit period — the
//!   paper's "error bars" analysis shows deletions cannot explain the
//!   churn, and the simulator preserves that: deletions are an order of
//!   magnitude rarer than sampler churn.
//!
//! Note on scale: the real topic pools are 10⁵–10⁶ videos platform-wide
//! (Table 4), but the audit only ever *observes* the ≲ 800 videos per
//! snapshot the sampler returns. We therefore generate only the in-window
//! slice of each pool (a few thousand videos per topic — enough that the
//! sampler always has ~4× more eligible videos than it returns) and carry
//! the full pool size as metadata for `pageInfo.totalResults`. This keeps
//! the repository runnable on a laptop while preserving every observable
//! behaviour; DESIGN.md documents the substitution.

use crate::density::InterestDensity;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ytaudit_types::time::DAY;
use ytaudit_types::topic::tokenize;
use ytaudit_types::{
    Channel, ChannelId, ChannelStats, Comment, CommentId, Definition, IsoDuration, Timestamp,
    Topic, Video, VideoId, VideoStats,
};

/// Corpus generation knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master RNG seed: the whole platform is a pure function of it.
    pub seed: u64,
    /// Multiplier on in-window corpus sizes. 1.0 is full audit scale
    /// (~10k videos across topics); tests use smaller values.
    pub scale: f64,
    /// Ratio of eligible (generated) to returned videos; the headroom the
    /// sampler suppresses. The paper's pool sizes imply the true ratio is
    /// enormous; 4× suffices to reproduce every observable.
    pub eligible_factor: f64,
    /// Fraction of videos deleted at a uniformly random instant during the
    /// 12-week audit period.
    pub deletion_rate: f64,
    /// Start of the audit period (deletions happen after this).
    pub audit_start: Timestamp,
    /// Length of the audit period in days.
    pub audit_days: i64,
    /// Hard cap on generated comments per video (memory guard).
    pub max_comments_per_video: usize,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            seed: 0x59_54_41_55_44_49_54, // "YTAUDIT"
            scale: 1.0,
            eligible_factor: 4.0,
            deletion_rate: 0.015,
            // The paper's collection period: 2025-02-09 … 2025-04-30.
            audit_start: Timestamp::from_ymd_const(2025, 2, 9),
            audit_days: 81,
            max_comments_per_video: 18,
        }
    }
}

/// The generated ground truth for one topic.
#[derive(Debug, Clone)]
pub struct TopicCorpus {
    /// The topic.
    pub topic: Topic,
    /// Videos uploaded in the topic's 28-day window, sorted by
    /// `published_at` ascending.
    pub videos: Vec<Video>,
    /// Index range of this topic's channels in the shared channel table.
    pub channel_range: std::ops::Range<usize>,
}

/// The full generated platform state.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Configuration used to generate it.
    pub config: CorpusConfig,
    /// All channels across topics.
    pub channels: Vec<Channel>,
    /// Per-topic video sets.
    pub topics: Vec<TopicCorpus>,
    /// All comments, grouped by video elsewhere (see `Platform`).
    pub comments: Vec<Comment>,
}

impl Corpus {
    /// Generates the full corpus for all six topics.
    pub fn generate(config: CorpusConfig) -> Corpus {
        let mut channels = Vec::new();
        let mut topics = Vec::new();
        let mut comments = Vec::new();
        for (topic_idx, topic) in Topic::ALL.into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                config.seed ^ (0xA11CE << 8) ^ (topic_idx as u64),
            );
            let topic_corpus =
                generate_topic(topic, &config, &mut rng, &mut channels, &mut comments);
            topics.push(topic_corpus);
        }
        Corpus {
            config,
            channels,
            topics,
            comments,
        }
    }

    /// Total number of videos across topics.
    pub fn video_count(&self) -> usize {
        self.topics.iter().map(|t| t.videos.len()).sum()
    }
}

/// Draws a log-normal value `exp(N(mu, sigma))`.
fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    // Box–Muller from two uniforms (rand's StandardNormal lives in
    // rand_distr, which we avoid pulling in).
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// Standard normal draw.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn generate_topic(
    topic: Topic,
    config: &CorpusConfig,
    rng: &mut StdRng,
    channels: &mut Vec<Channel>,
    comments: &mut Vec<Comment>,
) -> TopicCorpus {
    let spec = topic.spec();
    let density = InterestDensity::for_topic(&spec);
    let n_videos = ((spec.returned_target * config.eligible_factor * config.scale).round()
        as usize)
        .max(24);
    let n_channels = (n_videos / 3).max(8);

    // --- Channels ---
    let channel_base = channels.len();
    let topic_tag = topic.key();
    for i in 0..n_channels {
        let global_idx = (channel_base + i) as u64;
        let id = ChannelId::mint(config.seed, global_idx);
        // Channel age: created 0.5–14 years before the focal date.
        let age_days = rng.gen_range(180.0..5_100.0);
        let published_at = spec.focal_date.add_days(-(age_days as i64));
        // Views log-normal over ~5 orders of magnitude.
        let log_views = 11.0 + 2.3 * normal(rng);
        let views = log_views.exp().max(10.0) as u64;
        // Subscribers nearly collinear with views in logs (r ≈ 0.97):
        // log subs = 0.92·log views − 4 + small noise.
        let log_subs = 0.92 * log_views - 4.0 + 0.45 * normal(rng);
        let subscribers = log_subs.exp().max(1.0) as u64;
        let video_count = log_normal(rng, 4.6, 1.1).max(1.0) as u64;
        channels.push(Channel {
            id,
            title: format!("{topic_tag} creator {i}"),
            published_at,
            stats: ChannelStats {
                views,
                subscribers,
                video_count,
            },
        });
    }
    let channel_range = channel_base..channels.len();

    // --- Videos ---
    // Cumulative density for weighted hour sampling.
    let weights = density.weights();
    let total_weight: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cumulative.push(acc);
    }

    let base_tokens = spec.query_tokens();
    // Subtopic assignment probabilities decay with rank so queries can be
    // made progressively more restrictive (§6.1 experiment).
    let subtopic_probs: Vec<f64> = (0..spec.subtopics.len())
        .map(|rank| 0.30 / (1.0 + rank as f64 * 0.45))
        .collect();

    let video_base_index: u64 = (topic.index() as u64) << 32;
    let mut videos = Vec::with_capacity(n_videos);
    for i in 0..n_videos {
        let id = VideoId::mint(config.seed, video_base_index + i as u64);
        // Weighted hour, uniform offset within the hour.
        let pick: f64 = rng.gen_range(0.0..total_weight);
        let hour_idx = match cumulative.binary_search_by(|c| c.total_cmp(&pick)) {
            Ok(idx) => idx,
            Err(idx) => idx,
        }
        .min(weights.len() - 1);
        let published_at = density.hour_start(hour_idx) + rng.gen_range(0..3_600i64);

        let channel_idx = rng.gen_range(channel_range.start..channel_range.end);
        let channel_id = channels[channel_idx].id.clone();

        // Engagement: one latent popularity factor drives views; likes and
        // comments follow in logs with small independent noise, which is
        // what produces the r ≈ 0.9 collinearity the paper reports.
        let log_views = 8.0 + 2.1 * normal(rng);
        let views = log_views.exp().max(1.0) as u64;
        let log_likes = log_views - 3.5 + 0.45 * normal(rng);
        let likes = log_likes.exp().max(0.0) as u64;
        let log_comments = log_views - 5.2 + 0.55 * normal(rng);
        let n_comments_stat = log_comments.exp().max(0.0) as u64;

        // Duration: log-normal around ~5 minutes, with a shorts-heavy
        // lower tail.
        let duration_secs = if rng.gen_bool(0.18) {
            rng.gen_range(15.0..60.0) // shorts
        } else {
            log_normal(rng, 5.8, 0.9).clamp(45.0, 4.0 * 3_600.0)
        };
        let definition = if rng.gen_bool(0.8) {
            Definition::Hd
        } else {
            Definition::Sd
        };

        // Searchable terms: the topic's base tokens plus a sample of
        // subtopic phrases.
        let mut terms = base_tokens.clone();
        for (rank, phrase) in spec.subtopics.iter().enumerate() {
            if rng.gen_bool(subtopic_probs[rank]) {
                for token in tokenize(phrase) {
                    if !terms.contains(&token) {
                        terms.push(token);
                    }
                }
            }
        }

        let deleted_at = if rng.gen_bool(config.deletion_rate) {
            let offset = rng.gen_range(0..config.audit_days.max(1));
            Some(config.audit_start.add_days(offset) + rng.gen_range(0..DAY))
        } else {
            None
        };

        videos.push(Video {
            id,
            channel_id,
            title: format!("{} video {}", spec.query, i),
            description: format!("Synthetic {} footage uploaded for the audit corpus", spec.query),
            terms,
            published_at,
            duration: IsoDuration::from_secs(duration_secs as u64),
            definition,
            stats: VideoStats {
                views,
                likes,
                comments: n_comments_stat,
            },
            deleted_at,
        });
    }
    videos.sort_by_key(|v| v.published_at);

    // --- Comments ---
    for video in &videos {
        let target = (2.0 + (video.stats.comments as f64).sqrt() * 0.6) as usize;
        let n_top_level = target.min(config.max_comments_per_video);
        for c in 0..n_top_level {
            let comment_seed_index =
                (video_base_index << 8) ^ (hash_id(&video.id) & 0xFFFF_FFFF) ^ (c as u64) << 40;
            let id = CommentId::mint_top_level(config.seed, comment_seed_index);
            let author_idx = rng.gen_range(channel_range.start..channel_range.end);
            let published_at = video.published_at + rng.gen_range(60..21 * DAY);
            let like_count = log_normal(rng, 0.5, 1.2) as u64;
            comments.push(Comment {
                id: id.clone(),
                video_id: video.id.clone(),
                author_channel_id: channels[author_idx].id.clone(),
                text: format!("comment {c} on {}", video.title),
                published_at,
                like_count,
            });
            // Replies: up to 5 nested comments per thread, except for
            // topics predating the reply affordance (Higgs, 2012).
            if spec.nested_comments && rng.gen_bool(0.35) {
                let n_replies = rng.gen_range(1..=5usize);
                for r in 0..n_replies {
                    let reply_author = rng.gen_range(channel_range.start..channel_range.end);
                    comments.push(Comment {
                        id: id.mint_reply(r as u64),
                        video_id: video.id.clone(),
                        author_channel_id: channels[reply_author].id.clone(),
                        text: format!("reply {r} to comment {c}"),
                        published_at: published_at + rng.gen_range(60..3 * DAY),
                        like_count: log_normal(rng, 0.0, 1.0) as u64,
                    });
                }
            }
        }
    }

    TopicCorpus {
        topic,
        videos,
        channel_range,
    }
}

/// Cheap stable hash of an ID string.
fn hash_id(id: &VideoId) -> u64 {
    crate::hash::hash_bytes(id.as_str().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            scale: 0.25,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusConfig {
            scale: 0.1,
            ..CorpusConfig::default()
        });
        let b = Corpus::generate(CorpusConfig {
            scale: 0.1,
            ..CorpusConfig::default()
        });
        assert_eq!(a.video_count(), b.video_count());
        assert_eq!(a.topics[0].videos, b.topics[0].videos);
        assert_eq!(a.channels, b.channels);
        assert_eq!(a.comments.len(), b.comments.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusConfig {
            scale: 0.1,
            seed: 1,
            ..CorpusConfig::default()
        });
        let b = Corpus::generate(CorpusConfig {
            scale: 0.1,
            seed: 2,
            ..CorpusConfig::default()
        });
        assert_ne!(a.topics[0].videos, b.topics[0].videos);
    }

    #[test]
    fn every_topic_has_a_corpus_inside_its_window() {
        let corpus = small_corpus();
        assert_eq!(corpus.topics.len(), 6);
        for tc in &corpus.topics {
            assert!(!tc.videos.is_empty(), "{}", tc.topic);
            let start = tc.topic.window_start();
            let end = tc.topic.window_end();
            for v in &tc.videos {
                assert!(v.published_at >= start && v.published_at < end, "{}", tc.topic);
            }
            // Sorted by upload time.
            assert!(tc.videos.windows(2).all(|w| w[0].published_at <= w[1].published_at));
        }
    }

    #[test]
    fn corpus_size_scales_with_eligible_factor() {
        let corpus = small_corpus();
        for tc in &corpus.topics {
            let spec = tc.topic.spec();
            let expected = spec.returned_target * 4.0 * 0.25;
            let actual = tc.videos.len() as f64;
            assert!(
                (actual - expected).abs() / expected < 0.05,
                "{}: {actual} vs {expected}",
                tc.topic
            );
        }
    }

    #[test]
    fn videos_match_their_topic_query() {
        let corpus = small_corpus();
        for tc in &corpus.topics {
            let tokens = tc.topic.spec().query_tokens();
            for v in &tc.videos {
                assert!(v.matches_tokens(&tokens), "{}: {:?}", tc.topic, v.terms);
            }
        }
    }

    #[test]
    fn engagement_is_log_correlated() {
        let corpus = Corpus::generate(CorpusConfig::default());
        let mut log_views = Vec::new();
        let mut log_likes = Vec::new();
        let mut log_comments = Vec::new();
        for tc in &corpus.topics {
            for v in &tc.videos {
                log_views.push((v.stats.views as f64).ln_1p());
                log_likes.push((v.stats.likes as f64).ln_1p());
                log_comments.push((v.stats.comments as f64).ln_1p());
            }
        }
        let r_vl = ytaudit_stats_free_pearson(&log_views, &log_likes);
        let r_vc = ytaudit_stats_free_pearson(&log_views, &log_comments);
        assert!(r_vl > 0.85, "views-likes log r = {r_vl}");
        assert!(r_vc > 0.80, "views-comments log r = {r_vc}");
    }

    #[test]
    fn channel_views_and_subs_nearly_collinear() {
        let corpus = Corpus::generate(CorpusConfig::default());
        let lv: Vec<f64> = corpus.channels.iter().map(|c| (c.stats.views as f64).ln_1p()).collect();
        let ls: Vec<f64> = corpus
            .channels
            .iter()
            .map(|c| (c.stats.subscribers as f64).ln_1p())
            .collect();
        let r = ytaudit_stats_free_pearson(&lv, &ls);
        assert!(r > 0.95, "channel views-subs log r = {r}");
    }

    #[test]
    fn deletion_rate_is_respected() {
        let corpus = Corpus::generate(CorpusConfig::default());
        let total = corpus.video_count();
        let deleted = corpus
            .topics
            .iter()
            .flat_map(|t| &t.videos)
            .filter(|v| v.deleted_at.is_some())
            .count();
        let rate = deleted as f64 / total as f64;
        assert!(rate > 0.005 && rate < 0.03, "deletion rate {rate}");
        // Deletions all fall inside the audit period.
        let start = corpus.config.audit_start;
        let end = start.add_days(corpus.config.audit_days + 1);
        for tc in &corpus.topics {
            for v in &tc.videos {
                if let Some(d) = v.deleted_at {
                    assert!(d >= start && d < end);
                }
            }
        }
    }

    #[test]
    fn higgs_has_no_reply_comments() {
        let corpus = small_corpus();
        let higgs_videos: std::collections::HashSet<_> = corpus
            .topics
            .iter()
            .find(|t| t.topic == Topic::Higgs)
            .unwrap()
            .videos
            .iter()
            .map(|v| v.id.clone())
            .collect();
        let mut higgs_comments = 0;
        for c in &corpus.comments {
            if higgs_videos.contains(&c.video_id) {
                higgs_comments += 1;
                assert!(!c.is_reply(), "Higgs must not have nested comments");
            }
        }
        assert!(higgs_comments > 0);
        // But other topics do have replies.
        assert!(corpus.comments.iter().any(Comment::is_reply));
    }

    #[test]
    fn uploads_concentrate_near_the_focal_date() {
        let corpus = Corpus::generate(CorpusConfig::default());
        for tc in &corpus.topics {
            let spec = tc.topic.spec();
            let peak_window_start = spec.focal_date.add_days(spec.peak_offset_days as i64 - 2);
            let peak_window_end = spec.focal_date.add_days(spec.peak_offset_days as i64 + 3);
            let in_peak = tc
                .videos
                .iter()
                .filter(|v| v.published_at >= peak_window_start && v.published_at < peak_window_end)
                .count() as f64;
            let share = in_peak / tc.videos.len() as f64;
            let uniform_share = 5.0 / 28.0;
            // Peak days hold more than their uniform share for burst
            // topics; World Cup is broad so just require non-degeneracy.
            if tc.topic != Topic::WorldCup {
                assert!(share > uniform_share, "{}: share {share}", tc.topic);
            } else {
                assert!(share > 0.05, "{}: share {share}", tc.topic);
            }
        }
    }

    #[test]
    fn comment_ids_are_unique() {
        let corpus = small_corpus();
        let ids: std::collections::HashSet<_> = corpus.comments.iter().map(|c| &c.id).collect();
        assert_eq!(ids.len(), corpus.comments.len());
    }

    /// Tiny local Pearson (avoids a dev-dependency cycle on ytaudit-stats).
    fn ytaudit_stats_free_pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (a, b) in x.iter().zip(y) {
            sxy += (a - mx) * (b - my);
            sxx += (a - mx) * (a - mx);
            syy += (b - my) * (b - my);
        }
        sxy / (sxx * syy).sqrt()
    }
}
