//! A simulated search-engine results page (SERP) — the §6.2 extension.
//!
//! SERP audits (Hussein et al. 2020; Jung et al. 2025) deploy sockpuppet
//! accounts that issue queries through the *user-facing* search page and
//! record the ranked results. The paper's §6.2 asks whether the Data API's
//! search endpoint could serve as "a low-resource way of conducting SERP
//! audits" — i.e. how similar API results are to what puppets see.
//!
//! The simulated SERP ranks a topic's live catalogue by a relevance score:
//! the same popularity propensity the hidden sampler uses, plus a small
//! per-puppet personalization term (fresh sockpuppets differ little — the
//! empirical finding of the audit literature) and a day-level freshness
//! shuffle. The `ytaudit-core::serp` analysis then measures puppet-puppet
//! and puppet-vs-API agreement.

use crate::hash::{hash_bytes, mix_all, unit_normal};
use crate::Platform;
use ytaudit_types::{Timestamp, Topic, VideoId};

/// How many results one SERP page carries.
pub const SERP_PAGE_SIZE: usize = 20;

/// Weight of the per-puppet personalization term (small: fresh accounts
/// see near-identical pages).
const PERSONALIZATION_WEIGHT: f64 = 0.10;

/// Weight of the day-level freshness shuffle.
const FRESHNESS_WEIGHT: f64 = 0.12;

impl Platform {
    /// The ranked SERP a sockpuppet `puppet` sees for `topic`'s query at
    /// simulated instant `now` (top [`SERP_PAGE_SIZE`] video IDs).
    pub fn serp(&self, topic: Topic, puppet: u64, now: Timestamp) -> Vec<VideoId> {
        let seed = self.corpus().config.seed;
        let topic_idx = topic.index();
        let mut scored: Vec<(f64, &VideoId)> = self.corpus().topics[topic_idx]
            .videos
            .iter()
            .filter(|v| v.visible_at(now))
            .map(|video| {
                let channel = self
                    .channel(&video.channel_id)
                    // ytlint: allow(panics) — corpus generation interns every
                    // channel id it mints, so the lookup is total
                    .expect("corpus channels are complete");
                let vh = hash_bytes(video.id.as_str().as_bytes());
                let relevance = self.engine().propensity(video, channel);
                let personalization =
                    unit_normal(mix_all(&[seed, puppet, vh, 0x5045_5253])) * PERSONALIZATION_WEIGHT;
                let freshness = unit_normal(mix_all(&[
                    seed,
                    vh,
                    now.floor_day().as_secs() as u64,
                    0x4652_4553,
                ])) * FRESHNESS_WEIGHT;
                (relevance + personalization + freshness, &video.id)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(b.1))
        });
        scored
            .into_iter()
            .take(SERP_PAGE_SIZE)
            .map(|(_, id)| id.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn overlap(a: &[VideoId], b: &[VideoId]) -> f64 {
        let sa: HashSet<_> = a.iter().collect();
        let sb: HashSet<_> = b.iter().collect();
        sa.intersection(&sb).count() as f64 / a.len().max(1) as f64
    }

    #[test]
    fn serp_is_deterministic_per_puppet_and_day() {
        let p = Platform::small(0.3);
        let now = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let a = p.serp(Topic::Brexit, 1, now);
        let b = p.serp(Topic::Brexit, 1, now);
        assert_eq!(a, b);
        assert_eq!(a.len(), SERP_PAGE_SIZE);
    }

    #[test]
    fn puppets_see_similar_but_not_identical_pages() {
        let p = Platform::small(0.5);
        let now = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let pages: Vec<_> = (0..4).map(|puppet| p.serp(Topic::Blm, puppet, now)).collect();
        let mut min_overlap: f64 = 1.0;
        let mut identical = true;
        for i in 0..pages.len() {
            for j in i + 1..pages.len() {
                min_overlap = min_overlap.min(overlap(&pages[i], &pages[j]));
                identical &= pages[i] == pages[j];
            }
        }
        assert!(min_overlap > 0.5, "fresh puppets agree broadly: {min_overlap}");
        assert!(!identical, "personalization must produce some variation");
    }

    #[test]
    fn serp_favours_high_propensity_videos() {
        let p = Platform::small(0.5);
        let now = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let page = p.serp(Topic::Grammys, 0, now);
        // Mean likes of SERP results beat the topic median by a wide
        // margin (relevance ranking is popularity-flavoured).
        let topic_idx = Topic::ALL.iter().position(|&t| t == Topic::Grammys).unwrap();
        let mut all_likes: Vec<u64> = p.corpus().topics[topic_idx]
            .videos
            .iter()
            .map(|v| v.stats.likes)
            .collect();
        all_likes.sort_unstable();
        let median = all_likes[all_likes.len() / 2] as f64;
        let serp_mean = page
            .iter()
            .map(|id| p.video(id, now).unwrap().stats.likes as f64)
            .sum::<f64>()
            / page.len() as f64;
        assert!(
            serp_mean > median * 2.0,
            "serp mean likes {serp_mean} vs corpus median {median}"
        );
    }

    #[test]
    fn serp_drifts_day_to_day_but_slowly() {
        let p = Platform::small(0.5);
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        let today = p.serp(Topic::WorldCup, 0, t0);
        let tomorrow = p.serp(Topic::WorldCup, 0, t0.add_days(1));
        let next_month = p.serp(Topic::WorldCup, 0, t0.add_days(30));
        assert!(overlap(&today, &tomorrow) > 0.5);
        // The freshness shuffle redraws per day; a month later is no more
        // different than tomorrow on average, but both differ from today.
        assert!(overlap(&today, &next_month) > 0.3);
        assert_ne!(today, tomorrow);
    }
}
