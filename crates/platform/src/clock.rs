//! The simulated wall clock.
//!
//! The paper's audit spans 12 calendar weeks; re-running it offline
//! requires time travel. Every platform operation takes the request
//! instant explicitly, and `SimClock` is the shared, settable source of
//! "now" for components (the HTTP service) that need an ambient clock.

use parking_lot::Mutex;
use std::sync::Arc;
use ytaudit_types::Timestamp;

/// A shared, settable simulated clock. Clones share state.
#[derive(Clone)]
pub struct SimClock {
    now: Arc<Mutex<Timestamp>>,
}

impl SimClock {
    /// A clock starting at `start`.
    pub fn new(start: Timestamp) -> SimClock {
        SimClock {
            now: Arc::new(Mutex::new(start)),
        }
    }

    /// A clock at the audit's first collection instant (2025-02-09).
    pub fn at_audit_start() -> SimClock {
        SimClock::new(Timestamp::from_ymd(2025, 2, 9).expect("valid date"))
    }

    /// The current simulated instant.
    pub fn now(&self) -> Timestamp {
        *self.now.lock()
    }

    /// Jumps to an absolute instant (forward or backward — the audit
    /// replays historical schedules).
    pub fn set(&self, t: Timestamp) {
        *self.now.lock() = t;
    }

    /// Advances by whole days.
    pub fn advance_days(&self, days: i64) {
        let mut now = self.now.lock();
        *now = now.add_days(days);
    }

    /// Advances by seconds.
    pub fn advance_secs(&self, secs: i64) {
        let mut now = self.now.lock();
        *now = *now + secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let clock = SimClock::at_audit_start();
        let other = clock.clone();
        clock.advance_days(5);
        assert_eq!(other.now(), Timestamp::from_ymd(2025, 2, 14).unwrap());
        other.advance_secs(3_600);
        assert_eq!(clock.now().to_rfc3339(), "2025-02-14T01:00:00Z");
    }

    #[test]
    fn set_is_absolute() {
        let clock = SimClock::at_audit_start();
        let t = Timestamp::from_ymd(2025, 4, 30).unwrap();
        clock.set(t);
        assert_eq!(clock.now(), t);
        clock.set(Timestamp::from_ymd(2025, 2, 9).unwrap());
        assert_eq!(clock.now().to_rfc3339(), "2025-02-09T00:00:00Z");
    }
}
