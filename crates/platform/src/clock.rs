//! The workspace's clocks: the simulated audit calendar and the
//! monotonic clock abstraction.
//!
//! The paper's audit spans 12 calendar weeks; re-running it offline
//! requires time travel. Every platform operation takes the request
//! instant explicitly, and `SimClock` is the shared, settable source of
//! "now" for components (the HTTP service) that need an ambient clock.
//!
//! [`MonotonicClock`] serves the other kind of time: elapsed-duration
//! arithmetic for deadlines, rate limits, and backoff. Production code
//! uses [`RealClock`]; tests inject [`ManualClock`] so timeout paths run
//! without real sleeps. The `determinism` lint (`ytaudit-lint`) confines
//! ambient `Instant::now()` reads to this module, which is what makes
//! "no hidden wall-clock dependence" checkable.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ytaudit_types::Timestamp;

/// A monotonic clock for deadline and rate arithmetic.
///
/// `now()` is elapsed time since an arbitrary fixed origin (comparable
/// only against the same clock); `sleep()` blocks — or, for simulated
/// clocks, advances — by the given duration.
pub trait MonotonicClock: Send + Sync {
    /// Elapsed time since this clock's origin.
    fn now(&self) -> Duration;
    /// Blocks (or simulates blocking) for `d`.
    fn sleep(&self, d: Duration);
}

/// The process monotonic clock: `std::time::Instant` plus
/// `thread::sleep`.
pub struct RealClock {
    origin: Instant,
}

impl Default for RealClock {
    fn default() -> RealClock {
        RealClock {
            origin: Instant::now(),
        }
    }
}

impl MonotonicClock for RealClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A manually advanced clock for tests. `sleep` advances the simulated
/// time instantly, so code that "waits" on this clock makes progress
/// without wall-clock delay; clones share state.
#[derive(Clone, Default)]
pub struct ManualClock {
    now: Arc<Mutex<Duration>>,
}

impl ManualClock {
    /// A clock at its origin (elapsed = 0).
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        *self.now.lock() += d;
    }
}

impl MonotonicClock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// A shared, settable simulated clock. Clones share state.
#[derive(Clone)]
pub struct SimClock {
    now: Arc<Mutex<Timestamp>>,
}

impl SimClock {
    /// A clock starting at `start`.
    pub fn new(start: Timestamp) -> SimClock {
        SimClock {
            now: Arc::new(Mutex::new(start)),
        }
    }

    /// A clock at the audit's first collection instant (2025-02-09).
    pub fn at_audit_start() -> SimClock {
        SimClock::new(Timestamp::from_ymd_const(2025, 2, 9))
    }

    /// The current simulated instant.
    pub fn now(&self) -> Timestamp {
        *self.now.lock()
    }

    /// Jumps to an absolute instant (forward or backward — the audit
    /// replays historical schedules).
    pub fn set(&self, t: Timestamp) {
        *self.now.lock() = t;
    }

    /// Advances by whole days.
    pub fn advance_days(&self, days: i64) {
        let mut now = self.now.lock();
        *now = now.add_days(days);
    }

    /// Advances by seconds.
    pub fn advance_secs(&self, secs: i64) {
        let mut now = self.now.lock();
        *now = *now + secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let clock = SimClock::at_audit_start();
        let other = clock.clone();
        clock.advance_days(5);
        assert_eq!(other.now(), Timestamp::from_ymd(2025, 2, 14).unwrap());
        other.advance_secs(3_600);
        assert_eq!(clock.now().to_rfc3339(), "2025-02-14T01:00:00Z");
    }

    #[test]
    fn set_is_absolute() {
        let clock = SimClock::at_audit_start();
        let t = Timestamp::from_ymd(2025, 4, 30).unwrap();
        clock.set(t);
        assert_eq!(clock.now(), t);
        clock.set(Timestamp::from_ymd(2025, 2, 9).unwrap());
        assert_eq!(clock.now().to_rfc3339(), "2025-02-09T00:00:00Z");
    }

    #[test]
    fn manual_clock_sleep_advances_time() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_millis(250));
        clock.advance(Duration::from_millis(750));
        assert_eq!(clock.now(), Duration::from_secs(1));
        // Clones share the same timeline.
        let other = clock.clone();
        other.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(2));
    }

    #[test]
    fn real_clock_is_monotonic() {
        let clock = RealClock::default();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
