//! # ytaudit-platform
//!
//! The synthetic YouTube-like platform under audit: a deterministic corpus
//! of channels/videos/comments ([`corpus`]), per-topic interest densities
//! ([`density`]), the hidden search sampler the paper reverse-engineers
//! ([`search`]), a simulated clock ([`clock`]), and the [`Platform`] façade
//! that the simulated Data API (`ytaudit-api`) calls into.
//!
//! Everything is a pure function of the corpus seed and the request
//! instant: identical queries at the same simulated time return identical
//! results; queries weeks apart drift exactly the way Figures 1–3 of the
//! paper describe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod corpus;
pub mod density;
pub mod faultpoint;
pub mod hash;
pub mod search;
pub mod serp;

pub use clock::SimClock;
pub use corpus::{Corpus, CorpusConfig, TopicCorpus};
pub use density::InterestDensity;
pub use search::{SamplerConfig, SearchEngine, SearchOrder, SearchOutcome, SearchParams, SeasonalConfig};

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use ytaudit_types::time::HOUR;
use ytaudit_types::{
    Channel, ChannelId, Comment, CommentId, PlaylistId, Timestamp, Topic, Video, VideoId,
};

/// A comment thread: one top-level comment plus its (≤ 5) replies, as
/// `CommentThreads: list` returns them.
#[derive(Debug, Clone)]
pub struct CommentThread<'a> {
    /// The top-level comment.
    pub top_level: &'a Comment,
    /// Replies in posting order (the real endpoint nests at most five).
    pub replies: Vec<&'a Comment>,
}

/// The platform façade: corpus + indexes + sampler.
pub struct Platform {
    corpus: Corpus,
    engine: SearchEngine,
    video_index: HashMap<VideoId, (usize, usize)>, // (topic idx, video idx)
    channel_index: HashMap<ChannelId, usize>,
    channel_topic: HashMap<ChannelId, usize>,
    by_hour: BTreeMap<i64, Vec<(usize, usize)>>, // hour-since-epoch → refs
    by_channel: HashMap<ChannelId, Vec<(usize, usize)>>, // date-desc
    comments_by_video: HashMap<VideoId, Vec<usize>>,
    comment_index: HashMap<CommentId, usize>,
    match_fraction_cache: Mutex<HashMap<(usize, String), f64>>,
}

impl Platform {
    /// Builds the platform from a generated corpus with the calibrated
    /// default sampler.
    pub fn new(corpus: Corpus) -> Platform {
        Platform::with_sampler(corpus, SamplerConfig::default())
    }

    /// Builds the platform with an explicit sampler configuration — the
    /// hook the ablation experiments use to switch individual mechanisms
    /// off.
    pub fn with_sampler(corpus: Corpus, sampler: SamplerConfig) -> Platform {
        let engine = SearchEngine::with_config(&corpus, sampler);
        let mut video_index = HashMap::new();
        let mut by_hour: BTreeMap<i64, Vec<(usize, usize)>> = BTreeMap::new();
        let mut by_channel: HashMap<ChannelId, Vec<(usize, usize)>> = HashMap::new();
        for (ti, tc) in corpus.topics.iter().enumerate() {
            for (vi, video) in tc.videos.iter().enumerate() {
                video_index.insert(video.id.clone(), (ti, vi));
                by_hour
                    .entry(video.published_at.as_secs().div_euclid(HOUR))
                    .or_default()
                    .push((ti, vi));
                by_channel
                    .entry(video.channel_id.clone())
                    .or_default()
                    .push((ti, vi));
            }
        }
        // Channel uploads newest-first, the PlaylistItems convention.
        for refs in by_channel.values_mut() {
            refs.sort_by(|a, b| {
                let va = &corpus.topics[a.0].videos[a.1];
                let vb = &corpus.topics[b.0].videos[b.1];
                vb.published_at
                    .cmp(&va.published_at)
                    .then_with(|| va.id.cmp(&vb.id))
            });
        }
        let mut channel_index = HashMap::new();
        let mut channel_topic = HashMap::new();
        for (ci, channel) in corpus.channels.iter().enumerate() {
            channel_index.insert(channel.id.clone(), ci);
            if let Some(ti) = corpus
                .topics
                .iter()
                .position(|tc| tc.channel_range.contains(&ci))
            {
                channel_topic.insert(channel.id.clone(), ti);
            }
        }
        let mut comments_by_video: HashMap<VideoId, Vec<usize>> = HashMap::new();
        let mut comment_index = HashMap::new();
        for (ci, comment) in corpus.comments.iter().enumerate() {
            comments_by_video
                .entry(comment.video_id.clone())
                .or_default()
                .push(ci);
            comment_index.insert(comment.id.clone(), ci);
        }
        Platform {
            corpus,
            engine,
            video_index,
            channel_index,
            channel_topic,
            by_hour,
            by_channel,
            comments_by_video,
            comment_index,
            match_fraction_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Builds the platform at full audit scale with the default seed.
    pub fn with_default_corpus() -> Platform {
        Platform::new(Corpus::generate(CorpusConfig::default()))
    }

    /// Builds a reduced-scale platform (for fast tests).
    pub fn small(scale: f64) -> Platform {
        Platform::new(Corpus::generate(CorpusConfig {
            scale,
            ..CorpusConfig::default()
        }))
    }

    /// The underlying corpus (ground truth, for tests and analyses that
    /// need oracle access).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The search engine (densities and sampler internals).
    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    // --- Search ---

    /// Executes a search query at the simulated instant `now`.
    pub fn search(&self, params: &SearchParams, now: Timestamp) -> SearchOutcome {
        // Resolve topic: from tokens, else from the channel filter.
        let topic_from_tokens = SearchEngine::detect_topic(&params.tokens);
        let topic_idx = topic_from_tokens
            .and_then(|t| Topic::ALL.iter().position(|&x| x == t))
            .or_else(|| {
                params
                    .channel_id
                    .as_ref()
                    .and_then(|c| self.channel_topic.get(c))
                    .copied()
            });
        let topic = topic_idx.map(|i| Topic::ALL[i]);

        // Eligible set.
        let eligible: Vec<&Video> = match &params.channel_id {
            Some(channel) => self
                .by_channel
                .get(channel)
                .map(|refs| {
                    refs.iter()
                        .map(|&(ti, vi)| &self.corpus.topics[ti].videos[vi])
                        .filter(|v| self.eligible_for(v, params, now))
                        .collect()
                })
                .unwrap_or_default(),
            None => {
                // Range over hour buckets intersected with the query
                // bounds (bounded by the generated corpus extent).
                let lo = params
                    .published_after
                    .map(|t| t.as_secs().div_euclid(HOUR))
                    .unwrap_or(i64::MIN);
                let hi = params
                    .published_before
                    .map(|t| t.as_secs().div_euclid(HOUR) + 1)
                    .unwrap_or(i64::MAX);
                self.by_hour
                    .range(lo..hi)
                    .flat_map(|(_, refs)| refs.iter())
                    .map(|&(ti, vi)| &self.corpus.topics[ti].videos[vi])
                    .filter(|v| self.eligible_for(v, params, now))
                    .collect()
            }
        };

        let match_fraction = match topic_idx {
            Some(ti) => self.match_fraction(ti, params),
            None => 1.0,
        };

        self.engine.run(
            topic,
            params,
            &eligible,
            |v| {
                self.channel_index
                    .get(&v.channel_id)
                    .map(|&ci| self.corpus.channels[ci].clone())
            },
            match_fraction,
            now,
        )
    }

    fn eligible_for(&self, video: &Video, params: &SearchParams, now: Timestamp) -> bool {
        if !video.visible_at(now) {
            return false;
        }
        if let Some(after) = params.published_after {
            if video.published_at < after {
                return false;
            }
        }
        if let Some(before) = params.published_before {
            if video.published_at >= before {
                return false;
            }
        }
        if !params.tokens.is_empty() && !video.matches_tokens(&params.tokens) {
            return false;
        }
        true
    }

    /// Share of the topic corpus matching the query tokens (the pool-
    /// narrowing lever of §6.1). Cached per (topic, token set).
    fn match_fraction(&self, topic_idx: usize, params: &SearchParams) -> f64 {
        if params.tokens.is_empty() {
            // Channel-scoped search: the channel's catalogue is a tiny
            // slice of the topic pool.
            if let Some(channel) = &params.channel_id {
                let channel_videos = self.by_channel.get(channel).map(Vec::len).unwrap_or(0);
                let topic_videos = self.corpus.topics[topic_idx].videos.len().max(1);
                return (channel_videos as f64 / topic_videos as f64).clamp(1e-4, 1.0);
            }
            return 1.0;
        }
        let mut key_tokens: Vec<&str> = params.tokens.iter().map(String::as_str).collect();
        key_tokens.sort_unstable();
        let key = (topic_idx, key_tokens.join(" "));
        if let Some(&cached) = self.match_fraction_cache.lock().get(&key) {
            return cached;
        }
        let tc = &self.corpus.topics[topic_idx];
        let matching = tc
            .videos
            .iter()
            .filter(|v| v.matches_tokens(&params.tokens))
            .count();
        let fraction = (matching as f64 / tc.videos.len().max(1) as f64).clamp(0.0, 1.0);
        self.match_fraction_cache.lock().insert(key, fraction);
        fraction
    }

    // --- ID-based endpoints (stable, per Appendix B) ---

    /// Looks up a video by ID, honouring deletion at `now`.
    pub fn video(&self, id: &VideoId, now: Timestamp) -> Option<&Video> {
        self.video_index.get(id).and_then(|&(ti, vi)| {
            let v = &self.corpus.topics[ti].videos[vi];
            v.visible_at(now).then_some(v)
        })
    }

    /// The topic a video belongs to.
    pub fn topic_of_video(&self, id: &VideoId) -> Option<Topic> {
        self.video_index
            .get(id)
            .map(|&(ti, _)| self.corpus.topics[ti].topic)
    }

    /// Looks up a channel by ID.
    pub fn channel(&self, id: &ChannelId) -> Option<&Channel> {
        self.channel_index
            .get(id)
            .map(|&ci| &self.corpus.channels[ci])
    }

    /// A channel's uploads (newest first), as resolved through its
    /// uploads playlist — complete and stable, unlike search. `None` for
    /// unknown playlists (404 at the API layer).
    pub fn playlist_items(&self, playlist: &PlaylistId, now: Timestamp) -> Option<Vec<&Video>> {
        let channel = playlist.uploads_channel()?;
        self.channel_index.get(&channel)?;
        Some(
            self.by_channel
                .get(&channel)
                .map(|refs| {
                    refs.iter()
                        .map(|&(ti, vi)| &self.corpus.topics[ti].videos[vi])
                        .filter(|v| v.visible_at(now))
                        .collect()
                })
                .unwrap_or_default(),
        )
    }

    /// Comment threads for a video: top-level comments (oldest first) with
    /// up to five nested replies each. Empty when the video is deleted.
    pub fn comment_threads(&self, video_id: &VideoId, now: Timestamp) -> Vec<CommentThread<'_>> {
        if self.video(video_id, now).is_none() {
            return Vec::new();
        }
        let Some(indices) = self.comments_by_video.get(video_id) else {
            return Vec::new();
        };
        let mut tops: Vec<&Comment> = Vec::new();
        let mut replies: HashMap<CommentId, Vec<&Comment>> = HashMap::new();
        for &ci in indices {
            let comment = &self.corpus.comments[ci];
            if comment.published_at > now {
                continue;
            }
            match comment.id.parent() {
                Some(parent) => replies.entry(parent).or_default().push(comment),
                None => tops.push(comment),
            }
        }
        tops.sort_by(|a, b| a.published_at.cmp(&b.published_at).then_with(|| a.id.cmp(&b.id)));
        tops.into_iter()
            .map(|top| {
                let mut thread_replies = replies.remove(&top.id).unwrap_or_default();
                thread_replies.sort_by(|a, b| {
                    a.published_at
                        .cmp(&b.published_at)
                        .then_with(|| a.id.cmp(&b.id))
                });
                thread_replies.truncate(5);
                CommentThread {
                    top_level: top,
                    replies: thread_replies,
                }
            })
            .collect()
    }

    /// All replies to a top-level comment (the `Comments: list`
    /// `parentId` query).
    pub fn comments_by_parent(&self, parent: &CommentId, now: Timestamp) -> Vec<&Comment> {
        let Some(&ci) = self.comment_index.get(parent) else {
            return Vec::new();
        };
        let video_id = &self.corpus.comments[ci].video_id;
        let Some(indices) = self.comments_by_video.get(video_id) else {
            return Vec::new();
        };
        let mut out: Vec<&Comment> = indices
            .iter()
            .map(|&i| &self.corpus.comments[i])
            .filter(|c| c.published_at <= now && c.id.parent().as_ref() == Some(parent))
            .collect();
        out.sort_by(|a, b| a.published_at.cmp(&b.published_at).then_with(|| a.id.cmp(&b.id)));
        out
    }

    /// A comment by ID.
    pub fn comment(&self, id: &CommentId, now: Timestamp) -> Option<&Comment> {
        self.comment_index.get(id).and_then(|&ci| {
            let c = &self.corpus.comments[ci];
            (c.published_at <= now).then_some(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn platform() -> Platform {
        Platform::small(0.5)
    }

    fn audit_time() -> Timestamp {
        Timestamp::from_ymd(2025, 2, 9).unwrap()
    }

    fn topic_params(topic: Topic) -> SearchParams {
        let spec = topic.spec();
        SearchParams {
            tokens: spec.query_tokens(),
            published_after: Some(topic.window_start()),
            published_before: Some(topic.window_end()),
            order: SearchOrder::Date,
            channel_id: None,
        }
    }

    #[test]
    fn search_is_deterministic_at_fixed_time() {
        let p = platform();
        let params = topic_params(Topic::Brexit);
        let a = p.search(&params, audit_time());
        let b = p.search(&params, audit_time());
        assert_eq!(a.video_ids, b.video_ids);
        assert_eq!(a.total_results, b.total_results);
        assert!(!a.video_ids.is_empty());
    }

    #[test]
    fn search_returns_date_descending() {
        let p = platform();
        let outcome = p.search(&topic_params(Topic::Grammys), audit_time());
        let times: Vec<_> = outcome
            .video_ids
            .iter()
            .map(|id| p.video(id, audit_time()).unwrap().published_at)
            .collect();
        assert!(times.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn search_suppresses_part_of_the_eligible_set() {
        let p = platform();
        for topic in Topic::ALL {
            let outcome = p.search(&topic_params(topic), audit_time());
            let eligible = p.corpus().topics
                [Topic::ALL.iter().position(|&t| t == topic).unwrap()]
            .videos
            .len();
            assert!(
                outcome.video_ids.len() < eligible,
                "{topic}: returned {} of {eligible}",
                outcome.video_ids.len()
            );
            assert!(!outcome.video_ids.is_empty(), "{topic}");
        }
    }

    #[test]
    fn search_drifts_across_collection_dates() {
        let p = platform();
        let params = topic_params(Topic::Blm);
        let early: HashSet<_> = p.search(&params, audit_time()).video_ids.into_iter().collect();
        let late: HashSet<_> = p
            .search(&params, audit_time().add_days(80))
            .video_ids
            .into_iter()
            .collect();
        let j = plain_jaccard(&early, &late);
        assert!(j < 0.9, "BLM drift too small: J = {j}");
        assert!(j > 0.05, "BLM drift implausibly large: J = {j}");
    }

    #[test]
    fn higgs_is_much_more_stable_than_blm() {
        let p = platform();
        let j_of = |topic: Topic| {
            let params = topic_params(topic);
            let a: HashSet<_> = p.search(&params, audit_time()).video_ids.into_iter().collect();
            let b: HashSet<_> = p
                .search(&params, audit_time().add_days(80))
                .video_ids
                .into_iter()
                .collect();
            plain_jaccard(&a, &b)
        };
        let j_higgs = j_of(Topic::Higgs);
        let j_blm = j_of(Topic::Blm);
        assert!(j_higgs > j_blm + 0.15, "higgs {j_higgs} vs blm {j_blm}");
    }

    #[test]
    fn pool_estimates_scale_with_topic() {
        let p = platform();
        let total = |topic: Topic| p.search(&topic_params(topic), audit_time()).total_results;
        assert!(total(Topic::Higgs) < 100_000);
        assert!(total(Topic::Grammys) < 400_000);
        assert!(total(Topic::WorldCup) > 400_000);
        assert!(total(Topic::WorldCup) <= 1_000_000);
    }

    #[test]
    fn narrower_queries_return_fewer_and_smaller_pool() {
        let p = platform();
        let broad = topic_params(Topic::WorldCup);
        let mut narrow = broad.clone();
        narrow.tokens.push("messi".into());
        let b = p.search(&broad, audit_time());
        let n = p.search(&narrow, audit_time());
        assert!(n.video_ids.len() < b.video_ids.len());
        assert!(n.total_results < b.total_results);
        for id in &n.video_ids {
            assert!(p
                .video(id, audit_time())
                .unwrap()
                .terms
                .iter()
                .any(|t| t == "messi"));
        }
    }

    #[test]
    fn deleted_videos_disappear_from_everything() {
        let p = platform();
        let deleted = p
            .corpus()
            .topics
            .iter()
            .flat_map(|t| &t.videos)
            .find(|v| v.deleted_at.is_some())
            .expect("corpus contains deletions")
            .clone();
        let before = deleted.deleted_at.unwrap() + (-1);
        let after = deleted.deleted_at.unwrap() + 1;
        assert!(p.video(&deleted.id, before).is_some());
        assert!(p.video(&deleted.id, after).is_none());
        assert!(p.comment_threads(&deleted.id, after).is_empty());
        let playlist = deleted.channel_id.uploads_playlist();
        let uploads_after: Vec<_> = p
            .playlist_items(&playlist, after)
            .unwrap()
            .iter()
            .map(|v| v.id.clone())
            .collect();
        assert!(!uploads_after.contains(&deleted.id));
    }

    #[test]
    fn playlist_items_are_complete_and_stable() {
        let p = platform();
        let channel = &p.corpus().channels[0];
        let playlist = channel.id.uploads_playlist();
        let now = audit_time();
        let a: Vec<_> = p
            .playlist_items(&playlist, now)
            .unwrap()
            .iter()
            .map(|v| v.id.clone())
            .collect();
        let b: Vec<_> = p
            .playlist_items(&playlist, now.add_days(80))
            .unwrap()
            .iter()
            .map(|v| v.id.clone())
            .collect();
        // Stable across the audit period modulo deletions.
        let a_set: HashSet<_> = a.iter().collect();
        let b_set: HashSet<_> = b.iter().collect();
        assert!(b_set.is_subset(&a_set));
        let times: Vec<_> = p
            .playlist_items(&playlist, now)
            .unwrap()
            .iter()
            .map(|v| v.published_at)
            .collect();
        assert!(times.windows(2).all(|w| w[0] >= w[1]));
        assert!(p
            .playlist_items(&PlaylistId::new("UUdoesnotexist000000000"), now)
            .is_none());
    }

    #[test]
    fn comment_threads_nest_replies() {
        let p = platform();
        let now = audit_time();
        for tc in &p.corpus().topics {
            if tc.topic == Topic::Higgs {
                continue;
            }
            for v in &tc.videos {
                let threads = p.comment_threads(&v.id, now);
                for thread in &threads {
                    assert!(!thread.top_level.is_reply());
                    assert!(thread.replies.len() <= 5);
                    for reply in &thread.replies {
                        assert_eq!(reply.id.parent().unwrap(), thread.top_level.id);
                    }
                    if !thread.replies.is_empty() {
                        let listed = p.comments_by_parent(&thread.top_level.id, now);
                        assert_eq!(listed.len(), thread.replies.len());
                        return;
                    }
                }
            }
        }
        panic!("no threaded comments found");
    }

    #[test]
    fn channel_scoped_search_also_randomizes() {
        // The paper's §6.1 warning: collecting a channel's videos through
        // the *search* endpoint is unreliable; PlaylistItems is complete.
        let p = platform();
        let now = audit_time();
        // Pick the channel with the most uploads.
        let channel = p
            .corpus()
            .channels
            .iter()
            .max_by_key(|c| {
                p.by_channel
                    .get(&c.id)
                    .map(Vec::len)
                    .unwrap_or(0)
            })
            .unwrap();
        let uploads = p
            .playlist_items(&channel.id.uploads_playlist(), now)
            .unwrap()
            .len();
        let params = SearchParams {
            tokens: Vec::new(),
            channel_id: Some(channel.id.clone()),
            published_after: None,
            published_before: None,
            order: SearchOrder::Date,
        };
        let searched = p.search(&params, now).video_ids.len();
        assert!(
            searched <= uploads,
            "search returned {searched} > uploads {uploads}"
        );
    }

    #[test]
    fn unknown_ids_return_none_or_empty() {
        let p = platform();
        let now = audit_time();
        assert!(p.video(&VideoId::new("doesnotexist"), now).is_none());
        assert!(p.channel(&ChannelId::new("UCnope")).is_none());
        assert!(p.comment_threads(&VideoId::new("doesnotexist"), now).is_empty());
        assert!(p.comments_by_parent(&CommentId::new("nope"), now).is_empty());
    }

    fn plain_jaccard(a: &HashSet<VideoId>, b: &HashSet<VideoId>) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let inter = a.intersection(b).count();
        inter as f64 / (a.len() + b.len() - inter) as f64
    }
}
