//! Deterministic fault-injection points for crash-matrix testing.
//!
//! A fault point is a named site in production code — a
//! [`should_trip`] call placed exactly where a process could die — that
//! a test arms to fail on its Nth traversal. Tripping returns control to
//! the caller as an error *before* the durability step the site guards,
//! which simulates a kill at that boundary without actually ending the
//! process: everything already appended to the OS file is still there,
//! everything after the trip point never happens.
//!
//! The registry is process-global, so one test binary must serialize
//! tests that arm points (separate test binaries are separate processes
//! and cannot interfere). It is also fully deterministic — a point trips
//! on an exact traversal count, never on timing or sampling — which
//! keeps crash-matrix tests reproducible.
//!
//! Unarmed traversal (the production case) costs a single relaxed
//! atomic load.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Option<HashMap<String, u64>>> = Mutex::new(None);

/// Arms `point` to trip on its `nth` traversal from now (1 = the very
/// next one; 0 is treated as 1). Re-arming a point replaces its counter.
pub fn arm(point: &str, nth: u64) {
    let mut registry = ARMED.lock();
    registry
        .get_or_insert_with(HashMap::new)
        .insert(point.to_string(), nth.max(1));
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms every point.
pub fn reset() {
    *ARMED.lock() = None;
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// Called by instrumented code at a potential crash site. Returns `true`
/// exactly once per arming, on the armed traversal.
pub fn should_trip(point: &str) -> bool {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut registry = ARMED.lock();
    let Some(map) = registry.as_mut() else {
        return false;
    };
    let Some(count) = map.get_mut(point) else {
        return false;
    };
    *count -= 1;
    if *count > 0 {
        return false;
    }
    map.remove(point);
    if map.is_empty() {
        *registry = None;
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests serialize on it so a
    // parallel test runner cannot interleave armings.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn trips_exactly_once_on_the_nth_traversal() {
        let _guard = SERIAL.lock();
        reset();
        arm("store.commit", 3);
        assert!(!should_trip("store.commit"));
        assert!(!should_trip("store.commit"));
        assert!(should_trip("store.commit"));
        // Disarmed after tripping.
        assert!(!should_trip("store.commit"));
        reset();
    }

    #[test]
    fn unarmed_points_never_trip() {
        let _guard = SERIAL.lock();
        reset();
        assert!(!should_trip("merge.pre-rename"));
        arm("merge.pre-rename", 1);
        assert!(!should_trip("some.other.point"));
        assert!(should_trip("merge.pre-rename"));
        reset();
    }

    #[test]
    fn reset_disarms_everything() {
        let _guard = SERIAL.lock();
        arm("a", 1);
        arm("b", 5);
        reset();
        assert!(!should_trip("a"));
        assert!(!should_trip("b"));
    }
}
