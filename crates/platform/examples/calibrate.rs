//! Calibration harness: prints the Figure-1/Table-1/Table-2-shaped
//! quantities straight off the sampler so the noise constants can be tuned
//! without the full audit stack.

use std::collections::HashSet;
use ytaudit_platform::{Platform, SearchOrder, SearchParams};
use ytaudit_types::{Timestamp, Topic, VideoId};

fn main() {
    let platform = Platform::with_default_corpus();
    let start = Timestamp::from_ymd(2025, 2, 9).unwrap();
    // 16 collections: every 5 days, skipping 2025-04-05 (index 11).
    let dates: Vec<Timestamp> = (0..17)
        .filter(|&i| i != 11)
        .map(|i| start.add_days(5 * i))
        .collect();
    println!("collections: {}", dates.len());

    for topic in Topic::ALL {
        let spec = topic.spec();
        let params = SearchParams {
            tokens: spec.query_tokens(),
            published_after: Some(topic.window_start()),
            published_before: Some(topic.window_end()),
            order: SearchOrder::Date,
            channel_id: None,
        };
        // The audit's real methodology: one query per hour of the window
        // (so the 500-per-query cap never binds), unioned per collection.
        let sets: Vec<HashSet<VideoId>> = dates
            .iter()
            .map(|&d| {
                let mut set = HashSet::new();
                let start = topic.window_start();
                for h in 0..672 {
                    let mut hourly = params.clone();
                    hourly.published_after = Some(start.add_hours(h));
                    hourly.published_before = Some(start.add_hours(h + 1));
                    set.extend(platform.search(&hourly, d).video_ids);
                }
                set
            })
            .collect();
        let sizes: Vec<usize> = sets.iter().map(HashSet::len).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let j = |a: &HashSet<VideoId>, b: &HashSet<VideoId>| {
            let i = a.intersection(b).count();
            i as f64 / (a.len() + b.len() - i).max(1) as f64
        };
        let j_first: Vec<f64> = sets.iter().map(|s| j(s, &sets[0])).collect();
        let j_prev: Vec<f64> = sets.windows(2).map(|w| j(&w[1], &w[0])).collect();
        println!(
            "{:9} target {:5.0} mean {:6.1} min {:4} max {:4} | J(t,1) last {:.3} | J(t,t-1) mean {:.3}",
            topic.key(),
            spec.returned_target,
            mean,
            sizes.iter().min().unwrap(),
            sizes.iter().max().unwrap(),
            j_first.last().unwrap(),
            j_prev.iter().sum::<f64>() / j_prev.len() as f64,
        );
        print!("  J(t,1): ");
        for v in &j_first {
            print!("{v:.2} ");
        }
        println!();
    }
}
