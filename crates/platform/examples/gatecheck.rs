//! Density-gate diagnostic: how many window hours each topic's
//! relative-density gate suppresses, and how much weight mass they carry.
//! Useful when retuning `SamplerConfig::gate_fraction`.
//!
//! Run with: `cargo run --release -p ytaudit-platform --example gatecheck`

use ytaudit_platform::{InterestDensity, SamplerConfig};
use ytaudit_types::Topic;

fn main() {
    let gate = SamplerConfig::default().gate_fraction;
    println!("gate fraction = {gate} (of the topic's mean hourly density)\n");
    println!("{:<10} {:>12} {:>12} {:>14}", "topic", "gated hours", "gated mass", "share of mass");
    for topic in Topic::ALL {
        let density = InterestDensity::for_topic(&topic.spec());
        let gated = (0..density.len()).filter(|&i| density.is_gated(i, gate)).count();
        let mass: f64 = (0..density.len())
            .filter(|&i| density.is_gated(i, gate))
            .map(|i| density.weight(i))
            .sum();
        println!(
            "{:<10} {:>12} {:>12.1} {:>13.1}%",
            topic.key(),
            gated,
            mass,
            100.0 * mass / density.len() as f64
        );
    }
    println!(
        "\nGated hours return zero videos even when matching videos exist —\n\
         the paper's 'forced zero' observation (§4.2)."
    );
}
