//! Civil time for the audit: UTC timestamps, calendar conversion, RFC 3339
//! text, and ISO-8601 video durations.
//!
//! The YouTube Data API exchanges instants as RFC 3339 strings
//! (`2020-05-25T00:00:00Z`) and video lengths as ISO-8601 durations
//! (`PT4M13S`). The audit itself reasons in whole hours and days around each
//! topic's focal date. This module implements exactly that slice of civil
//! time on top of a single `i64` count of seconds since the Unix epoch,
//! using Howard Hinnant's proleptic-Gregorian date algorithms.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in one minute.
pub const MINUTE: i64 = 60;
/// Seconds in one hour.
pub const HOUR: i64 = 60 * MINUTE;
/// Seconds in one civil day.
pub const DAY: i64 = 24 * HOUR;
/// Seconds in one week.
pub const WEEK: i64 = 7 * DAY;

/// An instant in time, measured in whole seconds since the Unix epoch
/// (1970-01-01T00:00:00Z), always interpreted in UTC.
///
/// The audit never needs sub-second precision: the API's `publishedAfter` /
/// `publishedBefore` filters operate on second granularity and the
/// collection harness bins queries by hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The Unix epoch itself.
    pub const UNIX_EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from a calendar date and time-of-day (UTC).
    ///
    /// Returns an error if the date is not a valid proleptic-Gregorian date
    /// or the time-of-day is out of range.
    pub fn from_ymd_hms(y: i32, m: u32, d: u32, h: u32, min: u32, s: u32) -> Result<Timestamp> {
        let date = CivilDate::new(y, m, d)?;
        if h > 23 || min > 59 || s > 59 {
            return Err(Error::InvalidTime(format!("{h:02}:{min:02}:{s:02} out of range")));
        }
        Ok(Timestamp(
            date.days_since_epoch() * DAY + i64::from(h) * HOUR + i64::from(min) * MINUTE + i64::from(s),
        ))
    }

    /// Convenience constructor for midnight UTC of a calendar date.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Result<Timestamp> {
        Timestamp::from_ymd_hms(y, m, d, 0, 0, 0)
    }

    /// Midnight UTC of a calendar date, for literal dates known at
    /// compile time (the audit's focal dates, fixture corpora).
    ///
    /// Used in `const` position an invalid date fails the build instead
    /// of panicking at run time, which is how collection plans pin their
    /// dates without putting an `expect` on the hot path.
    #[allow(clippy::panic)]
    pub const fn from_ymd_const(y: i32, m: u32, d: u32) -> Timestamp {
        if m == 0 || m > 12 || d == 0 || d > days_in_month(y, m) {
            // ytlint: allow(panics) — const evaluation reports this at compile time
            panic!("invalid calendar date literal");
        }
        Timestamp(days_from_civil(y, m, d) * DAY)
    }

    /// Compile-time variant of [`from_ymd_hms`](Self::from_ymd_hms) for
    /// literal instants. Same `const`-position guarantee as
    /// [`from_ymd_const`](Self::from_ymd_const).
    #[allow(clippy::panic)]
    pub const fn from_ymd_hms_const(y: i32, m: u32, d: u32, h: u32, min: u32, s: u32) -> Timestamp {
        if h > 23 || min > 59 || s > 59 {
            // ytlint: allow(panics) — const evaluation reports this at compile time
            panic!("time-of-day literal out of range");
        }
        Timestamp(
            Timestamp::from_ymd_const(y, m, d).0
                + h as i64 * HOUR
                + min as i64 * MINUTE
                + s as i64,
        )
    }

    /// Parses an RFC 3339 timestamp such as `2016-06-23T00:00:00Z`.
    ///
    /// Accepts an optional fractional-second part (which the real API emits
    /// as `.000Z` on some resources) and either `Z` or a `±hh:mm` offset;
    /// offsets are normalized to UTC. Fractional seconds are truncated.
    pub fn parse_rfc3339(text: &str) -> Result<Timestamp> {
        let civil = CivilDateTime::parse_rfc3339(text)?;
        Ok(civil.to_timestamp())
    }

    /// Formats the timestamp as RFC 3339 with a trailing `Z`, e.g.
    /// `2012-07-04T09:30:00Z` — the exact shape the Data API uses.
    pub fn to_rfc3339(self) -> String {
        self.to_civil().format_rfc3339()
    }

    /// Decomposes the timestamp into calendar date and time-of-day.
    pub fn to_civil(self) -> CivilDateTime {
        let days = self.0.div_euclid(DAY);
        let secs_of_day = self.0.rem_euclid(DAY);
        let date = CivilDate::from_days_since_epoch(days);
        CivilDateTime {
            date,
            hour: (secs_of_day / HOUR) as u32,
            minute: ((secs_of_day % HOUR) / MINUTE) as u32,
            second: (secs_of_day % MINUTE) as u32,
        }
    }

    /// Raw seconds since the Unix epoch.
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Truncates to the start of the containing UTC hour.
    pub fn floor_hour(self) -> Timestamp {
        Timestamp(self.0.div_euclid(HOUR) * HOUR)
    }

    /// Truncates to midnight UTC of the containing day.
    pub fn floor_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(DAY) * DAY)
    }

    /// Adds a whole number of days (may be negative).
    pub fn add_days(self, days: i64) -> Timestamp {
        Timestamp(self.0 + days * DAY)
    }

    /// Adds a whole number of hours (may be negative).
    pub fn add_hours(self, hours: i64) -> Timestamp {
        Timestamp(self.0 + hours * HOUR)
    }

    /// Signed difference `self − other` in whole hours, truncated toward
    /// negative infinity so hour bins tile the timeline without gaps.
    pub fn hours_since(self, other: Timestamp) -> i64 {
        (self.0 - other.0).div_euclid(HOUR)
    }

    /// Signed difference `self − other` in whole days, truncated toward
    /// negative infinity.
    pub fn days_since(self, other: Timestamp) -> i64 {
        (self.0 - other.0).div_euclid(DAY)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    /// Adds raw seconds.
    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    /// Difference in raw seconds.
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_rfc3339())
    }
}

/// A proleptic-Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    year: i32,
    month: u32,
    day: u32,
}

impl CivilDate {
    /// Validates and constructs a calendar date.
    pub fn new(year: i32, month: u32, day: u32) -> Result<CivilDate> {
        if !(1..=12).contains(&month) {
            return Err(Error::InvalidTime(format!("month {month} out of range")));
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(Error::InvalidTime(format!("day {day} out of range for {year}-{month:02}")));
        }
        Ok(CivilDate { year, month, day })
    }

    /// Year component.
    pub fn year(self) -> i32 {
        self.year
    }

    /// Month component, 1–12.
    pub fn month(self) -> u32 {
        self.month
    }

    /// Day-of-month component, 1–31.
    pub fn day(self) -> u32 {
        self.day
    }

    /// Days since 1970-01-01 (negative before the epoch).
    ///
    /// Howard Hinnant's `days_from_civil` algorithm.
    pub fn days_since_epoch(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Inverse of [`days_since_epoch`](Self::days_since_epoch)
    /// (Hinnant's `civil_from_days`).
    pub fn from_days_since_epoch(days: i64) -> CivilDate {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        CivilDate {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u32,
            day: d as u32,
        }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Days since 1970-01-01 for an (assumed valid) civil date — Howard
/// Hinnant's `days_from_civil`, written with `const`-compatible
/// arithmetic so compile-time date literals can use it too.
const fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = year as i64 - if month <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Whether `year` is a leap year in the proleptic-Gregorian calendar.
pub const fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year`.
pub const fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// A calendar date plus a time-of-day, always UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDateTime {
    /// The calendar date.
    pub date: CivilDate,
    /// Hour of day, 0–23.
    pub hour: u32,
    /// Minute, 0–59.
    pub minute: u32,
    /// Second, 0–59 (leap seconds are not modelled; the Data API never
    /// emits them).
    pub second: u32,
}

impl CivilDateTime {
    /// Converts back to seconds since the Unix epoch.
    pub fn to_timestamp(self) -> Timestamp {
        Timestamp(
            self.date.days_since_epoch() * DAY
                + i64::from(self.hour) * HOUR
                + i64::from(self.minute) * MINUTE
                + i64::from(self.second),
        )
    }

    /// Formats as RFC 3339 with a `Z` suffix.
    pub fn format_rfc3339(self) -> String {
        format!(
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            self.date.year(),
            self.date.month(),
            self.date.day(),
            self.hour,
            self.minute,
            self.second
        )
    }

    /// Parses RFC 3339 text. See [`Timestamp::parse_rfc3339`] for the
    /// accepted grammar.
    pub fn parse_rfc3339(text: &str) -> Result<CivilDateTime> {
        let bytes = text.as_bytes();
        let bad = || Error::InvalidTime(format!("malformed RFC 3339 timestamp: {text:?}"));
        if bytes.len() < 20 {
            return Err(bad());
        }
        let digits = |range: std::ops::Range<usize>| -> Result<i64> {
            let slice = bytes.get(range).ok_or_else(bad)?;
            if slice.is_empty() || !slice.iter().all(u8::is_ascii_digit) {
                return Err(bad());
            }
            let mut v: i64 = 0;
            for &b in slice {
                v = v * 10 + i64::from(b - b'0');
            }
            Ok(v)
        };
        let expect = |idx: usize, ch: u8| -> Result<()> {
            // `T`/`t` and `Z`/`z` are case-insensitive per RFC 3339; the
            // separators are exact.
            let got = *bytes.get(idx).ok_or_else(bad)?;
            let ok = got == ch || (matches!(ch, b'T' | b'Z') && got == ch + 32);
            if ok {
                Ok(())
            } else {
                Err(bad())
            }
        };
        let year = digits(0..4)? as i32;
        expect(4, b'-')?;
        let month = digits(5..7)? as u32;
        expect(7, b'-')?;
        let day = digits(8..10)? as u32;
        expect(10, b'T')?;
        let hour = digits(11..13)? as u32;
        expect(13, b':')?;
        let minute = digits(14..16)? as u32;
        expect(16, b':')?;
        let second = digits(17..19)? as u32;
        // Optional fraction, then Z or ±hh:mm.
        let mut idx = 19;
        if bytes.get(idx) == Some(&b'.') {
            idx += 1;
            let start = idx;
            while bytes.get(idx).is_some_and(u8::is_ascii_digit) {
                idx += 1;
            }
            if idx == start {
                return Err(bad());
            }
        }
        let offset_secs: i64 = match bytes.get(idx) {
            Some(b'Z') | Some(b'z') => {
                if idx + 1 != bytes.len() {
                    return Err(bad());
                }
                0
            }
            Some(sign @ (b'+' | b'-')) => {
                let oh = digits(idx + 1..idx + 3)?;
                expect(idx + 3, b':')?;
                let om = digits(idx + 4..idx + 6)?;
                if idx + 6 != bytes.len() || oh > 23 || om > 59 {
                    return Err(bad());
                }
                let magnitude = oh * HOUR + om * MINUTE;
                if *sign == b'+' {
                    magnitude
                } else {
                    -magnitude
                }
            }
            _ => return Err(bad()),
        };
        if hour > 23 || minute > 59 || second > 59 {
            return Err(bad());
        }
        let date = CivilDate::new(year, month, day)?;
        let local = CivilDateTime { date, hour, minute, second };
        // Normalize to UTC by subtracting the offset.
        Ok(Timestamp(local.to_timestamp().0 - offset_secs).to_civil())
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format_rfc3339())
    }
}

/// A video length as the Data API reports it: an ISO-8601 duration limited
/// to day/hour/minute/second designators, e.g. `PT4M13S` or `P1DT2H`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IsoDuration(pub u64);

impl IsoDuration {
    /// Builds a duration from a whole number of seconds.
    pub fn from_secs(secs: u64) -> IsoDuration {
        IsoDuration(secs)
    }

    /// Total seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Parses the `P[nD]T[nH][nM][nS]` subset of ISO-8601 durations used by
    /// the Data API. Designators must appear in order and at least one must
    /// be present; `P0D` and `PT0S` both parse to zero.
    pub fn parse(text: &str) -> Result<IsoDuration> {
        let bad = || Error::InvalidTime(format!("malformed ISO-8601 duration: {text:?}"));
        let bytes = text.as_bytes();
        if bytes.first() != Some(&b'P') {
            return Err(bad());
        }
        let mut idx = 1;
        let mut total: u64 = 0;
        let mut in_time = false;
        let mut seen_any = false;
        // Designator ranks enforce ordering: D < (T) < H < M < S.
        let mut last_rank = 0u8;
        while idx < bytes.len() {
            if bytes[idx] == b'T' {
                if in_time {
                    return Err(bad());
                }
                in_time = true;
                last_rank = 1;
                idx += 1;
                continue;
            }
            let start = idx;
            while idx < bytes.len() && bytes[idx].is_ascii_digit() {
                idx += 1;
            }
            if start == idx || idx == bytes.len() {
                return Err(bad());
            }
            let value: u64 = text[start..idx].parse().map_err(|_| bad())?;
            let designator = bytes[idx];
            idx += 1;
            let (rank, mult) = match (designator, in_time) {
                (b'D', false) => (0, 86_400),
                (b'H', true) => (2, 3_600),
                (b'M', true) => (3, 60),
                (b'S', true) => (4, 1),
                _ => return Err(bad()),
            };
            if rank < last_rank {
                return Err(bad());
            }
            last_rank = rank + 1;
            total = total
                .checked_add(value.checked_mul(mult).ok_or_else(bad)?)
                .ok_or_else(bad)?;
            seen_any = true;
        }
        if !seen_any {
            return Err(bad());
        }
        Ok(IsoDuration(total))
    }

    /// Canonical Data-API-style rendering: days only when ≥ 1 day, zero
    /// renders as `PT0S`, e.g. `PT1H2M3S`.
    pub fn format(self) -> String {
        let mut s = self.0;
        let days = s / 86_400;
        s %= 86_400;
        let hours = s / 3_600;
        s %= 3_600;
        let minutes = s / 60;
        let seconds = s % 60;
        let mut out = String::from("P");
        if days > 0 {
            out.push_str(&format!("{days}D"));
        }
        if hours > 0 || minutes > 0 || seconds > 0 || days == 0 {
            out.push('T');
            if hours > 0 {
                out.push_str(&format!("{hours}H"));
            }
            if minutes > 0 {
                out.push_str(&format!("{minutes}M"));
            }
            if seconds > 0 || (hours == 0 && minutes == 0) {
                out.push_str(&format!("{seconds}S"));
            }
        }
        out
    }
}

impl fmt::Display for IsoDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(CivilDate::new(1970, 1, 1).unwrap().days_since_epoch(), 0);
        assert_eq!(CivilDate::from_days_since_epoch(0), CivilDate::new(1970, 1, 1).unwrap());
    }

    #[test]
    fn known_dates_round_trip() {
        // Focal dates from the paper's Appendix A.
        for (y, m, d, text) in [
            (2020, 5, 25, "2020-05-25T00:00:00Z"),
            (2016, 6, 23, "2016-06-23T00:00:00Z"),
            (2021, 1, 6, "2021-01-06T00:00:00Z"),
            (2024, 2, 4, "2024-02-04T00:00:00Z"),
            (2012, 7, 4, "2012-07-04T00:00:00Z"),
            (2014, 6, 12, "2014-06-12T00:00:00Z"),
        ] {
            let ts = Timestamp::from_ymd(y, m, d).unwrap();
            assert_eq!(ts.to_rfc3339(), text);
            assert_eq!(Timestamp::parse_rfc3339(text).unwrap(), ts);
        }
    }

    #[test]
    fn const_constructors_match_runtime() {
        const FOCAL: Timestamp = Timestamp::from_ymd_const(2021, 1, 6);
        assert_eq!(FOCAL, Timestamp::from_ymd(2021, 1, 6).unwrap());
        const NOON: Timestamp = Timestamp::from_ymd_hms_const(2012, 7, 4, 9, 30, 0);
        assert_eq!(NOON, Timestamp::from_ymd_hms(2012, 7, 4, 9, 30, 0).unwrap());
        // Leap day round-trips through the const path too.
        assert_eq!(
            Timestamp::from_ymd_const(2024, 2, 29),
            Timestamp::from_ymd(2024, 2, 29).unwrap()
        );
    }

    #[test]
    fn leap_year_handling() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2025));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2025, 2), 28);
        assert!(Timestamp::from_ymd(2024, 2, 29).is_ok());
        assert!(Timestamp::from_ymd(2025, 2, 29).is_err());
    }

    #[test]
    fn rejects_invalid_components() {
        assert!(Timestamp::from_ymd(2020, 13, 1).is_err());
        assert!(Timestamp::from_ymd(2020, 0, 1).is_err());
        assert!(Timestamp::from_ymd(2020, 4, 31).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 24, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 0, 60, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 0, 0, 60).is_err());
    }

    #[test]
    fn parses_fraction_and_offsets() {
        let base = Timestamp::from_ymd_hms(2021, 1, 6, 12, 0, 0).unwrap();
        assert_eq!(Timestamp::parse_rfc3339("2021-01-06T12:00:00.000Z").unwrap(), base);
        assert_eq!(Timestamp::parse_rfc3339("2021-01-06T12:00:00.123456Z").unwrap(), base);
        // +02:00 means the UTC instant is two hours earlier.
        assert_eq!(
            Timestamp::parse_rfc3339("2021-01-06T14:00:00+02:00").unwrap(),
            base
        );
        assert_eq!(
            Timestamp::parse_rfc3339("2021-01-06T07:30:00-04:30").unwrap(),
            base
        );
        assert_eq!(Timestamp::parse_rfc3339("2021-01-06t12:00:00z").unwrap(), base);
    }

    #[test]
    fn rejects_malformed_rfc3339() {
        for text in [
            "",
            "2021-01-06",
            "2021-01-06T12:00:00",
            "2021-01-06T12:00:00ZZ",
            "2021-01-06T12:00:00+0200",
            "2021-01-06T12:00:00.Z",
            "2021-13-06T12:00:00Z",
            "2021-01-32T12:00:00Z",
            "2021-01-06T25:00:00Z",
            "not a date at all!!",
            "2021-01-06X12:00:00Z",
        ] {
            assert!(Timestamp::parse_rfc3339(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn hour_and_day_arithmetic() {
        let focal = Timestamp::from_ymd(2016, 6, 23).unwrap();
        let start = focal.add_days(-14);
        assert_eq!(start.to_rfc3339(), "2016-06-09T00:00:00Z");
        let end = focal.add_days(14);
        assert_eq!(end.days_since(start), 28);
        assert_eq!(end.hours_since(start), 28 * 24);
        let mid = start.add_hours(13) + 59;
        assert_eq!(mid.floor_hour(), start.add_hours(13));
        assert_eq!(mid.floor_day(), start);
        // Negative differences truncate toward −∞ so bins tile correctly.
        assert_eq!((start + (-1)).hours_since(start), -1);
    }

    #[test]
    fn pre_epoch_dates_work() {
        let ts = Timestamp::from_ymd(1969, 12, 31).unwrap();
        assert_eq!(ts.as_secs(), -DAY);
        assert_eq!(ts.to_rfc3339(), "1969-12-31T00:00:00Z");
        let civil = (ts + (-1)).to_civil();
        assert_eq!(civil.format_rfc3339(), "1969-12-30T23:59:59Z");
    }

    #[test]
    fn duration_parse_and_format() {
        for (text, secs) in [
            ("PT4M13S", 4 * 60 + 13),
            ("PT1H2M3S", 3_723),
            ("PT45S", 45),
            ("PT2H", 7_200),
            ("P1DT2H", 93_600),
            ("P2D", 172_800),
            ("PT0S", 0),
        ] {
            let d = IsoDuration::parse(text).unwrap();
            assert_eq!(d.as_secs(), secs, "parsing {text}");
            // Round trip through the canonical form.
            assert_eq!(IsoDuration::parse(&d.format()).unwrap(), d);
        }
        assert_eq!(IsoDuration::from_secs(0).format(), "PT0S");
        assert_eq!(IsoDuration::from_secs(3_723).format(), "PT1H2M3S");
        assert_eq!(IsoDuration::from_secs(93_600).format(), "P1DT2H");
    }

    #[test]
    fn duration_rejects_malformed() {
        for text in ["", "P", "PT", "4M", "PT4X", "PTM", "PT4M13", "PT13S4M", "P1H", "QT4M", "PT999999999999999999999S"] {
            assert!(IsoDuration::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn duration_designator_order_enforced() {
        assert!(IsoDuration::parse("PT3S2M").is_err());
        assert!(IsoDuration::parse("P1DT1D").is_err());
        assert!(IsoDuration::parse("PT1H1H").is_err());
        assert!(IsoDuration::parse("T1H").is_err());
    }

    #[test]
    fn display_impls() {
        let ts = Timestamp::from_ymd_hms(2014, 6, 12, 17, 0, 0).unwrap();
        assert_eq!(ts.to_string(), "2014-06-12T17:00:00Z");
        assert_eq!(IsoDuration::from_secs(61).to_string(), "PT1M1S");
        assert_eq!(CivilDate::new(2014, 6, 12).unwrap().to_string(), "2014-06-12");
    }
}
