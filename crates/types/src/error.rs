//! The workspace-wide error type.
//!
//! The Data API reports failures as an HTTP status plus a JSON error
//! envelope whose `reason` field drives client behaviour (`quotaExceeded`
//! must back off until midnight Pacific; `invalidSearchFilter` means the
//! request itself is wrong). [`ApiErrorReason`] enumerates the reasons the
//! simulated API emits, and [`Error`] is the umbrella error every crate in
//! the workspace returns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Machine-readable error reasons, mirroring the real Data API's
/// `error.errors[].reason` values that matter for the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiErrorReason {
    /// The daily quota is exhausted (HTTP 403). The paper's quota-economy
    /// analysis hinges on this: one search costs 100 units of a default
    /// 10 000-unit daily budget.
    #[serde(rename = "quotaExceeded")]
    QuotaExceeded,
    /// A request parameter failed validation (HTTP 400).
    #[serde(rename = "invalidParameter")]
    InvalidParameter,
    /// A filter combination the endpoint rejects (HTTP 400).
    #[serde(rename = "invalidSearchFilter")]
    InvalidSearchFilter,
    /// The page token is malformed or expired (HTTP 400).
    #[serde(rename = "invalidPageToken")]
    InvalidPageToken,
    /// The API key is missing or unknown (HTTP 403).
    #[serde(rename = "forbidden")]
    Forbidden,
    /// The referenced resource does not exist (HTTP 404). Note that the
    /// list endpoints usually *omit* unknown IDs instead of failing.
    #[serde(rename = "notFound")]
    NotFound,
    /// Catch-all server-side failure (HTTP 500); the client retries these.
    #[serde(rename = "backendError")]
    BackendError,
    /// The server shed the request under load (HTTP 429). Carried with a
    /// `Retry-After` header on the wire; the client retries after backing
    /// off. Distinct from [`ApiErrorReason::QuotaExceeded`]: the daily
    /// budget is intact, the request merely arrived faster than the
    /// server-side admission rate allows.
    #[serde(rename = "rateLimitExceeded")]
    RateLimited,
}

impl ApiErrorReason {
    /// The HTTP status the real API pairs with this reason.
    pub fn http_status(self) -> u16 {
        match self {
            ApiErrorReason::QuotaExceeded | ApiErrorReason::Forbidden => 403,
            ApiErrorReason::InvalidParameter
            | ApiErrorReason::InvalidSearchFilter
            | ApiErrorReason::InvalidPageToken => 400,
            ApiErrorReason::NotFound => 404,
            ApiErrorReason::BackendError => 500,
            ApiErrorReason::RateLimited => 429,
        }
    }

    /// The wire name (`camelCase`) of this reason.
    pub fn as_str(self) -> &'static str {
        match self {
            ApiErrorReason::QuotaExceeded => "quotaExceeded",
            ApiErrorReason::InvalidParameter => "invalidParameter",
            ApiErrorReason::InvalidSearchFilter => "invalidSearchFilter",
            ApiErrorReason::InvalidPageToken => "invalidPageToken",
            ApiErrorReason::Forbidden => "forbidden",
            ApiErrorReason::NotFound => "notFound",
            ApiErrorReason::BackendError => "backendError",
            ApiErrorReason::RateLimited => "rateLimitExceeded",
        }
    }

    /// Parses a wire name back into a reason.
    pub fn from_str_opt(name: &str) -> Option<ApiErrorReason> {
        Some(match name {
            "quotaExceeded" => ApiErrorReason::QuotaExceeded,
            "invalidParameter" => ApiErrorReason::InvalidParameter,
            "invalidSearchFilter" => ApiErrorReason::InvalidSearchFilter,
            "invalidPageToken" => ApiErrorReason::InvalidPageToken,
            "forbidden" => ApiErrorReason::Forbidden,
            "notFound" => ApiErrorReason::NotFound,
            "backendError" => ApiErrorReason::BackendError,
            "rateLimitExceeded" => ApiErrorReason::RateLimited,
            _ => return None,
        })
    }

    /// Whether a client should retry a request that failed for this reason.
    /// Transient backend failures and load shedding are retryable; quota
    /// exhaustion and validation errors are not.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ApiErrorReason::BackendError | ApiErrorReason::RateLimited
        )
    }
}

impl fmt::Display for ApiErrorReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The umbrella error for the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A Data API error envelope: reason plus human-readable message.
    Api {
        /// Machine-readable reason.
        reason: ApiErrorReason,
        /// Human-readable message as it would appear on the wire.
        message: String,
        /// The server's `Retry-After` hint in seconds, when the envelope
        /// carried one (load shedding and rate limits advertise how long
        /// the client should wait before retrying).
        retry_after: Option<u64>,
    },
    /// Malformed civil time, RFC 3339 text, or ISO-8601 duration.
    InvalidTime(String),
    /// Malformed URL, query string, or HTTP message.
    Protocol(String),
    /// An I/O failure (socket closed, timeout, …), carried as text so the
    /// error stays `Clone`/`Eq` for test assertions.
    Io(String),
    /// A JSON body that failed to parse or had the wrong shape.
    Decode(String),
    /// Numerical routine failure (singular matrix, non-convergence, …).
    Numeric(String),
    /// Misuse of a library API (e.g. mismatched vector lengths).
    InvalidInput(String),
}

impl Error {
    /// Builds an API error with the given reason and message.
    pub fn api(reason: ApiErrorReason, message: impl Into<String>) -> Error {
        Error::Api {
            reason,
            message: message.into(),
            retry_after: None,
        }
    }

    /// Builds an API error carrying a `Retry-After` hint in seconds.
    pub fn api_with_retry_after(
        reason: ApiErrorReason,
        message: impl Into<String>,
        retry_after_secs: u64,
    ) -> Error {
        Error::Api {
            reason,
            message: message.into(),
            retry_after: Some(retry_after_secs),
        }
    }

    /// The server's `Retry-After` hint in seconds, when one was carried.
    pub fn retry_after_secs(&self) -> Option<u64> {
        match self {
            Error::Api { retry_after, .. } => *retry_after,
            _ => None,
        }
    }

    /// The API reason if this is an API error.
    pub fn api_reason(&self) -> Option<ApiErrorReason> {
        match self {
            Error::Api { reason, .. } => Some(*reason),
            _ => None,
        }
    }

    /// Whether a client may retry the failed operation.
    pub fn is_retryable(&self) -> bool {
        match self {
            Error::Api { reason, .. } => reason.is_retryable(),
            Error::Io(_) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Api {
                reason, message, ..
            } => write!(f, "API error ({reason}): {message}"),
            Error::InvalidTime(msg) => write!(f, "invalid time: {msg}"),
            Error::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
            Error::Numeric(msg) => write!(f, "numeric error: {msg}"),
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Error {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_round_trip_wire_names() {
        for reason in [
            ApiErrorReason::QuotaExceeded,
            ApiErrorReason::InvalidParameter,
            ApiErrorReason::InvalidSearchFilter,
            ApiErrorReason::InvalidPageToken,
            ApiErrorReason::Forbidden,
            ApiErrorReason::NotFound,
            ApiErrorReason::BackendError,
            ApiErrorReason::RateLimited,
        ] {
            assert_eq!(ApiErrorReason::from_str_opt(reason.as_str()), Some(reason));
        }
        assert_eq!(ApiErrorReason::from_str_opt("nonsense"), None);
    }

    #[test]
    fn statuses_match_real_api() {
        assert_eq!(ApiErrorReason::QuotaExceeded.http_status(), 403);
        assert_eq!(ApiErrorReason::InvalidParameter.http_status(), 400);
        assert_eq!(ApiErrorReason::NotFound.http_status(), 404);
        assert_eq!(ApiErrorReason::BackendError.http_status(), 500);
        assert_eq!(ApiErrorReason::RateLimited.http_status(), 429);
    }

    #[test]
    fn retryability() {
        assert!(ApiErrorReason::BackendError.is_retryable());
        assert!(ApiErrorReason::RateLimited.is_retryable());
        assert!(!ApiErrorReason::QuotaExceeded.is_retryable());
        assert!(Error::Io("reset".into()).is_retryable());
        assert!(!Error::Decode("bad json".into()).is_retryable());
        assert!(Error::api(ApiErrorReason::BackendError, "oops").is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let err = Error::api(ApiErrorReason::QuotaExceeded, "daily limit reached");
        let text = err.to_string();
        assert!(text.contains("quotaExceeded"));
        assert!(text.contains("daily limit reached"));
    }

    #[test]
    fn retry_after_hint_travels_on_api_errors_only() {
        let hinted = Error::api_with_retry_after(ApiErrorReason::RateLimited, "slow down", 7);
        assert_eq!(hinted.retry_after_secs(), Some(7));
        assert!(hinted.is_retryable());
        assert_eq!(
            Error::api(ApiErrorReason::RateLimited, "x").retry_after_secs(),
            None
        );
        assert_eq!(Error::Io("reset".into()).retry_after_secs(), None);
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::TimedOut, "read timeout");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(ref msg) if msg.contains("read timeout")));
    }
}
