//! Platform-side records: what the simulated YouTube "knows" about each
//! video, channel, and comment.
//!
//! These are the *ground-truth* rows the corpus generator produces. The
//! simulated Data API (`ytaudit-api`) projects them into wire resources
//! (`snippet` / `statistics` / `contentDetails` parts), applies the search
//! sampler, and hides anything deleted at the request's simulated time.

use crate::id::{ChannelId, CommentId, VideoId};
use crate::time::{IsoDuration, Timestamp};
use serde::{Deserialize, Serialize};

/// Video definition as the Data API reports it (`contentDetails.definition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Definition {
    /// High definition (`hd`). The reference category in the paper's
    /// regressions.
    #[serde(rename = "hd")]
    Hd,
    /// Standard definition (`sd`).
    #[serde(rename = "sd")]
    Sd,
}

impl Definition {
    /// The lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Definition::Hd => "hd",
            Definition::Sd => "sd",
        }
    }
}

/// Engagement counters for a video (`statistics` part).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VideoStats {
    /// Lifetime view count.
    pub views: u64,
    /// Lifetime like count. The paper finds likes are the strongest
    /// popularity predictor of return frequency (r ≈ 0.92 with views).
    pub likes: u64,
    /// Lifetime comment count.
    pub comments: u64,
}

/// A ground-truth video row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    /// The video's identifier.
    pub id: VideoId,
    /// The uploading channel.
    pub channel_id: ChannelId,
    /// Video title (synthetic but query-relevant).
    pub title: String,
    /// Video description.
    pub description: String,
    /// Lowercased searchable terms. A keyword query matches a video iff
    /// every query token appears in this set (AND semantics) — this is the
    /// hook for the paper's §6.1 "split your topics, not your time frames"
    /// strategy experiment.
    pub terms: Vec<String>,
    /// Upload instant (UTC). Immutable, which is why the paper orders
    /// search results by date when auditing consistency.
    pub published_at: Timestamp,
    /// Video length.
    pub duration: IsoDuration,
    /// `hd` or `sd`.
    pub definition: Definition,
    /// Engagement counters.
    pub stats: VideoStats,
    /// If set, the instant the video was removed from the platform.
    /// Queries at a simulated time ≥ this instant no longer see the video
    /// through any endpoint.
    pub deleted_at: Option<Timestamp>,
}

impl Video {
    /// Whether the video is visible at simulated instant `now`.
    pub fn visible_at(&self, now: Timestamp) -> bool {
        match self.deleted_at {
            Some(deleted) => now < deleted,
            None => true,
        }
    }

    /// Whether the video matches a tokenized keyword query (AND semantics
    /// over [`Video::terms`]).
    pub fn matches_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> bool {
        tokens
            .iter()
            .all(|t| self.terms.iter().any(|term| term == t.as_ref()))
    }
}

/// Channel-level counters (`statistics` part of `Channels: list`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Total views across the channel's catalogue.
    pub views: u64,
    /// Subscriber count (r ≈ 0.97 with channel views on the real platform;
    /// the corpus generator reproduces that collinearity).
    pub subscribers: u64,
    /// Number of public uploads.
    pub video_count: u64,
}

/// A ground-truth channel row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// The channel's identifier (`UC…`).
    pub id: ChannelId,
    /// Channel title.
    pub title: String,
    /// Channel creation instant — "channel age" in the paper's regressions.
    pub published_at: Timestamp,
    /// Channel counters.
    pub stats: ChannelStats,
}

/// A ground-truth comment row; both top-level comments and replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comment {
    /// The comment's identifier; replies are `parent.child`.
    pub id: CommentId,
    /// The video the comment was posted on.
    pub video_id: VideoId,
    /// The commenting channel.
    pub author_channel_id: ChannelId,
    /// Comment text (synthetic).
    pub text: String,
    /// Posting instant.
    pub published_at: Timestamp,
    /// Like count on the comment.
    pub like_count: u64,
}

impl Comment {
    /// Whether this is a reply (nested comment).
    pub fn is_reply(&self) -> bool {
        self.id.is_reply()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_video() -> Video {
        Video {
            id: VideoId::mint(1, 0),
            channel_id: ChannelId::mint(1, 0),
            title: "Brexit referendum results explained".into(),
            description: "What the vote means".into(),
            terms: vec!["brexit".into(), "referendum".into(), "results".into()],
            published_at: Timestamp::from_ymd(2016, 6, 24).unwrap(),
            duration: IsoDuration::from_secs(424),
            definition: Definition::Hd,
            stats: VideoStats {
                views: 120_000,
                likes: 4_000,
                comments: 900,
            },
            deleted_at: None,
        }
    }

    #[test]
    fn visibility_respects_deletion() {
        let mut video = sample_video();
        let t0 = Timestamp::from_ymd(2025, 2, 9).unwrap();
        assert!(video.visible_at(t0));
        video.deleted_at = Some(t0);
        assert!(!video.visible_at(t0));
        assert!(video.visible_at(t0 + (-1)));
        assert!(!video.visible_at(t0 + 1));
    }

    #[test]
    fn token_matching_is_conjunctive() {
        let video = sample_video();
        assert!(video.matches_tokens(&["brexit"]));
        assert!(video.matches_tokens(&["brexit", "referendum"]));
        assert!(!video.matches_tokens(&["brexit", "farage"]));
        assert!(video.matches_tokens::<&str>(&[]));
    }

    #[test]
    fn definition_wire_names() {
        assert_eq!(Definition::Hd.as_str(), "hd");
        assert_eq!(Definition::Sd.as_str(), "sd");
        assert_eq!(serde_json::to_string(&Definition::Sd).unwrap(), "\"sd\"");
    }

    #[test]
    fn comment_reply_detection() {
        let top = Comment {
            id: CommentId::mint_top_level(3, 0),
            video_id: VideoId::mint(1, 0),
            author_channel_id: ChannelId::mint(1, 5),
            text: "first".into(),
            published_at: Timestamp::from_ymd(2016, 6, 25).unwrap(),
            like_count: 2,
        };
        assert!(!top.is_reply());
        let reply = Comment {
            id: top.id.mint_reply(0),
            ..top.clone()
        };
        assert!(reply.is_reply());
    }

    #[test]
    fn video_round_trips_through_json() {
        let video = sample_video();
        let json = serde_json::to_string(&video).unwrap();
        let back: Video = serde_json::from_str(&json).unwrap();
        assert_eq!(back, video);
    }
}
