//! # ytaudit-types
//!
//! Domain model shared by every crate in the `ytaudit` workspace, the
//! reproduction of *"I'm Sorry Dave, I'm Afraid I Can't Return That: On
//! YouTube Search API Use in Research"* (IMC 2025).
//!
//! The crate is deliberately dependency-light: it defines
//!
//! * [`id`] — opaque, validated identifiers for videos, channels, playlists
//!   and comments, shaped like the real YouTube identifiers;
//! * [`time`] — a small civil-time implementation ([`Timestamp`],
//!   [`CivilDateTime`]) with RFC 3339 parsing/formatting and ISO-8601 video
//!   durations ([`IsoDuration`]), so the workspace does not need `chrono`;
//! * [`resources`] — the platform-side records ([`Video`], [`Channel`],
//!   [`Comment`]) that the simulated Data API serves;
//! * [`topic`] — the six audit topics from the paper's Appendix A with their
//!   focal dates and query strings;
//! * [`error`] — the shared error type mirroring the Data API's error
//!   envelope (reasons such as `quotaExceeded`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod id;
pub mod platform;
pub mod resources;
pub mod time;
pub mod topic;

pub use error::{ApiErrorReason, Error, Result};
pub use id::{ChannelId, CommentId, PlaylistId, VideoId};
pub use platform::PlatformKind;
pub use resources::{Channel, ChannelStats, Comment, Definition, Video, VideoStats};
pub use time::{CivilDate, CivilDateTime, IsoDuration, Timestamp};
pub use topic::{Topic, TopicSpec};
