//! Opaque identifiers shaped like the real YouTube identifiers.
//!
//! The simulated platform mints identifiers deterministically from integer
//! indices so the whole corpus is reproducible from a seed:
//!
//! * video IDs — 11 characters of the URL-safe base-64 alphabet
//!   (`dQw4w9WgXcQ`);
//! * channel IDs — `UC` + 22 characters (`UC38IQsAvIsxxjztdMZQtwHA`);
//! * uploads-playlist IDs — the channel ID with `UU` substituted for `UC`,
//!   exactly the convention the real Data API uses;
//! * comment IDs — 26 characters, with replies rendered as
//!   `parent.child` the way `CommentThreads: list` nests them.
//!
//! Identifiers are compared and hashed as plain strings; the typed wrappers
//! exist so a channel ID can never be passed where a video ID is expected —
//! the paper shows endpoint/parameter confusion is a real source of
//! irreproducibility in published work.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The URL-safe base-64 alphabet YouTube identifiers draw from.
const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// SplitMix64 — a tiny, high-quality bijective mixer. Used to turn corpus
/// indices into identifier bits so consecutive indices yield uncorrelated,
/// realistic-looking IDs.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Encodes `count` base-64 characters from a stream seeded with `seed`.
fn encode_base64ish(seed: u64, count: usize) -> String {
    let mut out = String::with_capacity(count);
    let mut state = seed;
    let mut bits: u64 = 0;
    let mut available = 0u32;
    for _ in 0..count {
        if available < 6 {
            state = splitmix64(state);
            bits = state;
            available = 64;
        }
        out.push(ALPHABET[(bits & 0x3F) as usize] as char);
        bits >>= 6;
        available -= 6;
    }
    out
}

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(String);

        impl $name {
            /// Wraps a raw identifier string without validation. The
            /// simulated API, like the real one, treats unknown IDs as
            /// "no such resource" rather than as parse errors.
            pub fn new(raw: impl Into<String>) -> Self {
                Self(raw.into())
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Consumes the wrapper, returning the raw string.
            pub fn into_string(self) -> String {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(raw: &str) -> Self {
                Self::new(raw)
            }
        }

        impl From<String> for $name {
            fn from(raw: String) -> Self {
                Self(raw)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_id!(
    /// An 11-character video identifier, e.g. `dQw4w9WgXcQ`.
    VideoId
);
string_id!(
    /// A 24-character channel identifier starting with `UC`.
    ChannelId
);
string_id!(
    /// A playlist identifier; uploads playlists start with `UU`.
    PlaylistId
);
string_id!(
    /// A comment identifier; replies are `parentId.childSuffix`.
    CommentId
);

impl VideoId {
    /// Mints the video ID for corpus index `index` under `seed`.
    pub fn mint(seed: u64, index: u64) -> VideoId {
        VideoId(encode_base64ish(
            splitmix64(seed ^ 0x5649_4445_4f00_0000).wrapping_add(index),
            11,
        ))
    }
}

impl ChannelId {
    /// Mints the channel ID for corpus index `index` under `seed`.
    pub fn mint(seed: u64, index: u64) -> ChannelId {
        let tail = encode_base64ish(
            splitmix64(seed ^ 0x4348_414e_4e45_4c00).wrapping_add(index),
            22,
        );
        ChannelId(format!("UC{tail}"))
    }

    /// The channel's uploads playlist, derived the way the real API does:
    /// replace the `UC` prefix with `UU`.
    pub fn uploads_playlist(&self) -> PlaylistId {
        if let Some(tail) = self.0.strip_prefix("UC") {
            PlaylistId(format!("UU{tail}"))
        } else {
            // Defensive: non-standard channel IDs still get a unique
            // playlist handle. `~` is outside the base-64 ID alphabet, so
            // this can never collide with a real `UU…` uploads playlist.
            PlaylistId(format!("UU~{}", self.0))
        }
    }
}

impl PlaylistId {
    /// Recovers the owning channel from an uploads-playlist ID, if this is
    /// one (`UU` prefix).
    pub fn uploads_channel(&self) -> Option<ChannelId> {
        self.0.strip_prefix("UU").map(|tail| {
            if let Some(raw) = tail.strip_prefix('~') {
                ChannelId::new(raw)
            } else {
                ChannelId(format!("UC{tail}"))
            }
        })
    }
}

impl CommentId {
    /// Mints a top-level comment ID for corpus index `index` under `seed`.
    pub fn mint_top_level(seed: u64, index: u64) -> CommentId {
        CommentId(encode_base64ish(
            splitmix64(seed ^ 0x434f_4d4d_454e_5400).wrapping_add(index),
            26,
        ))
    }

    /// Mints the `reply_index`-th reply under `parent`, rendered as
    /// `parent.suffix` the way the real API nests reply IDs.
    pub fn mint_reply(&self, reply_index: u64) -> CommentId {
        let suffix = encode_base64ish(
            splitmix64(0x5245_504c_5900_0000 ^ reply_index).wrapping_add(
                self.0.bytes().fold(0u64, |acc, b| {
                    acc.wrapping_mul(131).wrapping_add(u64::from(b))
                }),
            ),
            22,
        );
        CommentId(format!("{}.{}", self.0, suffix))
    }

    /// For a reply ID, the parent top-level comment ID; `None` for
    /// top-level comments.
    pub fn parent(&self) -> Option<CommentId> {
        self.0
            .split_once('.')
            .map(|(parent, _)| CommentId(parent.to_string()))
    }

    /// Whether this is a reply (nested) comment ID.
    pub fn is_reply(&self) -> bool {
        self.0.contains('.')
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn video_ids_have_youtube_shape() {
        let id = VideoId::mint(42, 0);
        assert_eq!(id.as_str().len(), 11);
        assert!(id
            .as_str()
            .bytes()
            .all(|b| ALPHABET.contains(&b)));
    }

    #[test]
    fn channel_ids_have_youtube_shape() {
        let id = ChannelId::mint(42, 7);
        assert_eq!(id.as_str().len(), 24);
        assert!(id.as_str().starts_with("UC"));
    }

    #[test]
    fn minting_is_deterministic_and_distinct() {
        let a = VideoId::mint(1, 10);
        let b = VideoId::mint(1, 10);
        let c = VideoId::mint(1, 11);
        let d = VideoId::mint(2, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn no_collisions_in_a_large_batch() {
        let ids: HashSet<_> = (0..50_000).map(|i| VideoId::mint(99, i)).collect();
        assert_eq!(ids.len(), 50_000);
    }

    #[test]
    fn uploads_playlist_round_trips() {
        let channel = ChannelId::mint(5, 3);
        let playlist = channel.uploads_playlist();
        assert!(playlist.as_str().starts_with("UU"));
        assert_eq!(playlist.uploads_channel().unwrap(), channel);
    }

    #[test]
    fn non_standard_channel_still_gets_playlist() {
        let odd = ChannelId::new("weird");
        let playlist = odd.uploads_playlist();
        assert_eq!(playlist.uploads_channel().unwrap(), odd);
    }

    #[test]
    fn reply_ids_nest_under_parents() {
        let parent = CommentId::mint_top_level(7, 0);
        assert!(!parent.is_reply());
        assert_eq!(parent.parent(), None);
        let reply = parent.mint_reply(2);
        assert!(reply.is_reply());
        assert_eq!(reply.parent().unwrap(), parent);
        assert_ne!(parent.mint_reply(0), parent.mint_reply(1));
    }

    #[test]
    fn ids_serialize_as_plain_strings() {
        let id = VideoId::new("dQw4w9WgXcQ");
        // serde(transparent): the wrapper is invisible on the wire.
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"dQw4w9WgXcQ\"");
        let back: VideoId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
