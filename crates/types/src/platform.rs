//! Platform identity: which simulated backend a collection ran against.
//!
//! The audit methodology is platform-generic — schedule construction,
//! hour-binning, and the consistency/attrition/pool-size analyses never
//! look at backend-specific wire shapes — but a *store* is not: folding
//! a TikTok shard into a YouTube collection would silently mix two
//! different sampling regimes. Every store therefore records its
//! [`PlatformKind`] in the Begin manifest, and resume/merge/analyze
//! validate it with a typed error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The simulated backend a collection targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlatformKind {
    /// The YouTube Data API v3 simulator (`ytaudit-api`): per-endpoint
    /// unit costs (search = 100), page tokens, hour-binnable search.
    #[default]
    #[serde(rename = "youtube")]
    Youtube,
    /// The TikTok Research API simulator (`ytaudit-tiktok-sim`): daily
    /// request budget (1 unit per request), date-windowed video query
    /// with cursor pagination.
    #[serde(rename = "tiktok")]
    Tiktok,
}

impl PlatformKind {
    /// Every kind, in wire-code order.
    pub const ALL: [PlatformKind; 2] = [PlatformKind::Youtube, PlatformKind::Tiktok];

    /// The CLI / manifest name of this platform.
    pub fn as_str(self) -> &'static str {
        match self {
            PlatformKind::Youtube => "youtube",
            PlatformKind::Tiktok => "tiktok",
        }
    }

    /// Parses a CLI / manifest name back into a kind.
    pub fn from_str_opt(name: &str) -> Option<PlatformKind> {
        Some(match name {
            "youtube" => PlatformKind::Youtube,
            "tiktok" => PlatformKind::Tiktok,
            _ => return None,
        })
    }

    /// The single-byte code the store Begin manifest records.
    pub fn code(self) -> u8 {
        match self {
            PlatformKind::Youtube => 0,
            PlatformKind::Tiktok => 1,
        }
    }

    /// Decodes a manifest byte back into a kind.
    pub fn from_code(code: u8) -> Option<PlatformKind> {
        Some(match code {
            0 => PlatformKind::Youtube,
            1 => PlatformKind::Tiktok,
            _ => return None,
        })
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_codes_round_trip() {
        for kind in PlatformKind::ALL {
            assert_eq!(PlatformKind::from_str_opt(kind.as_str()), Some(kind));
            assert_eq!(PlatformKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(PlatformKind::from_str_opt("myspace"), None);
        assert_eq!(PlatformKind::from_code(0xFF), None);
    }

    #[test]
    fn default_is_youtube() {
        // Stores written before the platform field existed decode as
        // YouTube; the default must never drift.
        assert_eq!(PlatformKind::default(), PlatformKind::Youtube);
        assert_eq!(PlatformKind::Youtube.code(), 0);
    }

    #[test]
    fn serde_uses_the_cli_names() {
        let json = serde_json::to_string(&PlatformKind::Tiktok).unwrap();
        assert_eq!(json, "\"tiktok\"");
        let back: PlatformKind = serde_json::from_str("\"youtube\"").unwrap();
        assert_eq!(back, PlatformKind::Youtube);
    }
}
